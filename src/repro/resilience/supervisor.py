"""Supervised component estimators with graceful degradation.

The master's contract with its component estimators (Figure 2(b) of
the paper) is a synchronous call: prepare the state/input exchange,
invoke the ISS or the gate-level simulator, read back cycles and
energy.  This module hardens that call:

* a **watchdog** bounds its wall-clock time (a hung estimator becomes
  a :class:`WatchdogTimeout` instead of a hung run);
* a **validator** rejects corrupted results (NaN, negative, absurdly
  large energy) as :class:`CorruptedEstimate`;
* a bounded **retry** loop absorbs transient failures;
* on persistent failure, a **graceful-degradation ladder** answers the
  estimate anyway, walking the paper's own accuracy hierarchy:

  1. ``exact`` — the low-level simulation itself;
  2. ``cached`` — the Section 4.2 energy cache's converged path mean
     (a shadow cache fed by every successful exact run);
  3. ``macromodel`` — the Section 4.1 pre-characterized macro-model;
  4. ``degraded`` — a last-resort analytical estimate (one controller
     state per macro-operation at the processor's pipeline-fill
     energy), so a run *always* completes with a number and a
     provenance tag rather than aborting.

Every estimate the ladder produces is tagged with its provenance, and
all supervision events (faults, retries, timeouts, fallbacks) count
into the run's telemetry metrics registry.
"""

from __future__ import annotations

import math
import threading
import time as _time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.estimation import Estimate, EstimationJob
from repro.obs.context import emit_event
from repro.obs.names import (
    EVENT_ESTIMATOR_FAILURE,
    EVENT_ESTIMATOR_FALLBACK,
    EVENT_ESTIMATOR_SHORT_CIRCUIT,
    EVENT_ESTIMATOR_TIMEOUT,
)
from repro.resilience.faults import FaultInjector, FaultPlan, FaultSpec

__all__ = [
    "PROVENANCE_LEVELS",
    "WatchdogTimeout",
    "CorruptedEstimate",
    "EstimatorUnavailable",
    "ResilienceConfig",
    "ResilientEstimator",
    "call_with_watchdog",
    "retry_backoff_s",
]

#: The degradation ladder, most to least accurate.
PROVENANCE_LEVELS = ("exact", "cached", "macromodel", "degraded")


class WatchdogTimeout(ReproError):
    """A supervised call exceeded its wall-clock budget."""


class CorruptedEstimate(ReproError):
    """A component estimator returned a non-physical result."""


class EstimatorUnavailable(ReproError):
    """A component estimator failed persistently (retries exhausted)."""


def retry_backoff_s(site: str, attempt: int, base_s: float,
                    cap_s: float) -> float:
    """Exponential backoff with deterministic per-site jitter.

    ``base_s * 2**(attempt-1)`` scaled by an equal-jitter factor in
    ``[0.5, 1.0)`` derived from ``crc32(site:attempt)`` — NOT from the
    :mod:`random` module, whose streams are seeded per job and must
    produce byte-identical results whether or not a retry slept.  The
    jitter decorrelates concurrent retries against one struggling
    estimator (or cluster worker) while staying fully reproducible:
    same site and attempt, same delay, every run.
    """
    if base_s <= 0 or attempt < 1:
        return 0.0
    raw = base_s * (2.0 ** (attempt - 1))
    unit = zlib.crc32(("%s:%d" % (site, attempt)).encode("utf-8")) / 2**32
    return min(cap_s, raw * (0.5 + unit / 2.0))


def call_with_watchdog(fn: Callable, timeout_s: float):
    """Run ``fn()`` with a wall-clock budget; returns its result.

    The call runs on a daemon worker thread; if it does not finish
    within ``timeout_s`` a :class:`WatchdogTimeout` is raised and the
    thread is *abandoned* (Python offers no safe preemption) — callers
    must treat the supervised object as suspect afterwards, which is
    exactly what the degradation ladder does.  Exceptions raised by
    ``fn`` are re-raised in the caller.
    """
    if timeout_s is None:
        return fn()
    outcome: Dict[str, object] = {}
    done = threading.Event()

    def runner() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as exc:  # re-raised in the caller
            outcome["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not done.wait(timeout_s):
        raise WatchdogTimeout(
            "supervised call exceeded its %.3fs watchdog budget" % timeout_s
        )
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome.get("value")


@dataclass(frozen=True)
class ResilienceConfig:
    """User parameters of the resilience layer (plain, picklable data).

    Attributes:
        fault_plan: optional fault-injection plan (testing/chaos runs).
        watchdog_s: wall-clock budget per component invocation; ``None``
            disables the watchdog (and its per-call thread).
        max_retries: transient-failure retries per invocation before
            the invocation is declared persistently failed.
        degradation: when True (default), persistent failures fall down
            the cached → macromodel → degraded ladder instead of
            aborting the run.
        max_energy_j: sanity bound of the result validator — a single
            transition above this is treated as corrupted (component
            energies in this framework are nano- to micro-joules).
        backoff_base_s: first-retry backoff delay.  Retries against a
            struggling estimator sleep ``retry_backoff_s(site, attempt,
            base, cap)`` between attempts — exponential with
            deterministic per-site jitter, so the retry storm a
            transient fault can trigger is spread out without touching
            the seeded RNG streams (results stay byte-identical; only
            wall-clock changes).  0 disables backoff.
        backoff_cap_s: upper bound of one backoff sleep.
        breaker_registry: optional circuit-breaker lookup with a
            ``get(site) -> breaker`` method (see
            :mod:`repro.service.breaker`).  Breakers remember persistent
            failures *across* runs: an open breaker short-circuits the
            supervised call straight onto the degradation ladder instead
            of re-attempting a site known to be down.  Process-local
            live state — excluded from equality and never serialized
            (field is dropped when the config is pickled to workers).
    """

    fault_plan: Optional[FaultPlan] = None
    watchdog_s: Optional[float] = None
    max_retries: int = 1
    degradation: bool = True
    max_energy_j: float = 1e-3
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 0.25
    breaker_registry: Optional[object] = field(
        default=None, compare=False, repr=False
    )

    def __getstate__(self):
        # Breakers hold locks and service-wide live state; a pickled
        # config (process-pool payloads) travels without them.
        state = {f: getattr(self, f) for f in self.__dataclass_fields__}
        state["breaker_registry"] = None
        return state

    def __setstate__(self, state):
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.watchdog_s is not None and self.watchdog_s <= 0:
            raise ValueError("watchdog_s must be positive (or None)")
        if self.max_energy_j <= 0:
            raise ValueError("max_energy_j must be positive")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_cap_s < 0:
            raise ValueError("backoff_cap_s must be non-negative")


@dataclass
class _ShadowStats:
    """Running mean of exact results for one path (Welford, mean only)."""

    count: int = 0
    mean_energy: float = 0.0
    mean_cycles: float = 0.0

    def update(self, energy: float, cycles: int) -> None:
        self.count += 1
        self.mean_energy += (energy - self.mean_energy) / self.count
        self.mean_cycles += (cycles - self.mean_cycles) / self.count


class ResilientEstimator:
    """Per-run supervision state: injector, shadow cache, fallbacks.

    One instance belongs to one :class:`~repro.master.master.
    SimulationMaster`; the master wraps every ``run_low_level`` closure
    with :meth:`supervise` and routes persistent failures through
    :meth:`fallback`.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        power_model,
        library=None,
        telemetry=None,
        macromodel_factory: Optional[Callable[[], object]] = None,
    ) -> None:
        from repro.telemetry import NULL_TELEMETRY

        self.config = config
        self.power_model = power_model
        self.library = library
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.injector: Optional[FaultInjector] = (
            FaultInjector(config.fault_plan, telemetry=self.telemetry)
            if config.fault_plan is not None
            else None
        )
        self._macromodel_factory = macromodel_factory
        self._macromodel = None
        self._macromodel_failed = False
        self._shadow_by_path: Dict[Tuple, _ShadowStats] = {}
        self._shadow_by_transition: Dict[Tuple, _ShadowStats] = {}
        self.retries = 0
        self.backoff_seconds = 0.0
        self.watchdog_timeouts = 0
        self.corrupted = 0
        self.failures = 0
        self.failures_by_site: Dict[str, int] = {}
        self.short_circuits: Dict[str, int] = {}
        self.fallbacks: Dict[str, int] = {}
        self.bypasses: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Supervision of the low-level estimator call
    # ------------------------------------------------------------------

    def supervise(
        self,
        site: str,
        component: str,
        fn: Callable[[], Estimate],
        path_key: Optional[Tuple] = None,
        sim_time_ns: Optional[float] = None,
    ) -> Callable[[], Estimate]:
        """Wrap one ``run_low_level`` closure with the full treatment.

        The wrapper injects faults (when a plan is armed), enforces the
        watchdog, validates the result, feeds the shadow cache, and
        retries transient failures; after ``max_retries`` consecutive
        failures it raises :class:`EstimatorUnavailable` for the master
        to route down the degradation ladder.

        With a circuit breaker armed for ``site`` (see
        ``ResilienceConfig.breaker_registry``), an open breaker
        short-circuits the call — no low-level attempt at all — and
        every persistent outcome (success / exhausted retries) is
        reported back so the breaker learns across runs.
        """

        def attempt() -> Estimate:
            spec: Optional[FaultSpec] = (
                self.injector.draw(site) if self.injector is not None else None
            )

            def inner() -> Estimate:
                if spec is not None:
                    if spec.kind == "exception":
                        raise self.injector.make_fault(
                            spec, component=component, sim_time_ns=sim_time_ns
                        )
                    if spec.kind == "hang":
                        _time.sleep(spec.hang_s)
                estimate = fn()
                if spec is not None and spec.kind == "corrupt":
                    estimate.energy = spec.corrupt_energy(estimate.energy)
                return estimate

            estimate = call_with_watchdog(inner, self.config.watchdog_s)
            self._validate(estimate, component, sim_time_ns)
            return estimate

        def supervised() -> Estimate:
            breaker = self._breaker(site)
            if breaker is not None and not breaker.allow():
                self.short_circuits[site] = self.short_circuits.get(site, 0) + 1
                self._count("resilience.breaker.short_circuit")
                emit_event(
                    EVENT_ESTIMATOR_SHORT_CIRCUIT, site=site, component=component
                )
                raise EstimatorUnavailable(
                    "circuit breaker for %s is open — short-circuiting to "
                    "the degradation ladder" % site,
                    component=component,
                    path_id=path_key,
                    sim_time_ns=sim_time_ns,
                )
            attempts = 0
            while True:
                try:
                    estimate = attempt()
                except EstimatorUnavailable:
                    raise
                except WatchdogTimeout as exc:
                    self.watchdog_timeouts += 1
                    emit_event(
                        EVENT_ESTIMATOR_TIMEOUT, site=site, component=component
                    )
                    failure = exc
                except Exception as exc:
                    failure = exc
                else:
                    if breaker is not None:
                        breaker.record_success()
                    if path_key is not None:
                        self._record_exact(path_key, estimate)
                    return estimate
                attempts += 1
                if attempts > self.config.max_retries:
                    self.failures += 1
                    self.failures_by_site[site] = (
                        self.failures_by_site.get(site, 0) + 1
                    )
                    self._count("resilience.persistent_failures")
                    emit_event(
                        EVENT_ESTIMATOR_FAILURE,
                        site=site,
                        component=component,
                        attempts=attempts,
                        error=str(failure),
                    )
                    if breaker is not None:
                        breaker.record_failure()
                    raise EstimatorUnavailable(
                        "%s estimator failed persistently after %d attempt(s): %s"
                        % (site, attempts, failure),
                        component=component,
                        path_id=path_key,
                        sim_time_ns=sim_time_ns,
                    ) from failure
                self.retries += 1
                self._count("resilience.retries")
                # Back off before the next attempt: exponential with
                # deterministic per-site jitter, outside the watchdog
                # and outside the seeded RNG streams, so only wall
                # clock changes — never the estimate.
                delay = retry_backoff_s(
                    site, attempts,
                    self.config.backoff_base_s, self.config.backoff_cap_s,
                )
                if delay > 0:
                    self.backoff_seconds += delay
                    self._count("resilience.backoff_sleeps")
                    _time.sleep(delay)

        return supervised

    def _breaker(self, site: str):
        registry = self.config.breaker_registry
        if registry is None:
            return None
        return registry.get(site)

    def _validate(
        self, estimate: Estimate, component: str, sim_time_ns: Optional[float]
    ) -> None:
        energy = estimate.energy
        cycles = estimate.cycles
        reason = None
        if not math.isfinite(energy):
            reason = "non-finite energy %r" % energy
        elif energy < 0:
            reason = "negative energy %r" % energy
        elif energy > self.config.max_energy_j:
            reason = "energy %r above the %r J sanity bound" % (
                energy, self.config.max_energy_j,
            )
        elif not math.isfinite(cycles) or cycles < 0:
            reason = "invalid cycle count %r" % cycles
        if reason is not None:
            self.corrupted += 1
            self._count("resilience.corrupted_estimates")
            raise CorruptedEstimate(
                "corrupted estimate from %s: %s" % (component, reason),
                component=component,
                sim_time_ns=sim_time_ns,
            )

    def _record_exact(self, path_key: Tuple, estimate: Estimate) -> None:
        stats = self._shadow_by_path.get(path_key)
        if stats is None:
            stats = self._shadow_by_path[path_key] = _ShadowStats()
        stats.update(estimate.energy, estimate.cycles)
        transition_key = path_key[:2]
        stats = self._shadow_by_transition.get(transition_key)
        if stats is None:
            stats = self._shadow_by_transition[transition_key] = _ShadowStats()
        stats.update(estimate.energy, estimate.cycles)

    # ------------------------------------------------------------------
    # The degradation ladder
    # ------------------------------------------------------------------

    def fallback(self, job: EstimationJob) -> Estimate:
        """Answer ``job`` without its (failed) low-level estimator.

        Walks cached → macromodel → degraded; always returns an
        estimate, tagged with the level that produced it.
        """
        stats = self._shadow_by_path.get(job.path_key)
        if stats is None:
            stats = self._shadow_by_transition.get(
                (job.cfsm.name, job.transition.name)
            )
        if stats is not None and stats.count > 0:
            self._count_fallback("cached")
            return Estimate(
                cycles=int(round(stats.mean_cycles)),
                energy=stats.mean_energy,
                ran_low_level=False,
                provenance="cached",
            )
        macromodel = self._macromodel_strategy()
        if macromodel is not None:
            try:
                estimate = macromodel.estimate(job)
            except Exception:
                # Per-job failure only; the rung stays armed for other
                # jobs (a failed *build* disables it permanently).
                pass
            else:
                self._count_fallback("macromodel")
                estimate.provenance = "macromodel"
                return estimate
        self._count_fallback("degraded")
        return self._analytical(job)

    def _macromodel_strategy(self):
        """The lazily built Section 4.1 fallback (None if unavailable)."""
        if self._macromodel_failed:
            return None
        if self._macromodel is None:
            try:
                if self._macromodel_factory is not None:
                    self._macromodel = self._macromodel_factory()
                else:
                    # Imported lazily: repro.core imports the master
                    # package, which imports this module.
                    from repro.core.macromodel import (
                        MacroModelCharacterizer,
                        MacromodelStrategy,
                    )

                    parameter_file = MacroModelCharacterizer(
                        self.power_model
                    ).characterize()
                    self._macromodel = MacromodelStrategy(parameter_file)
            except Exception:
                self._macromodel_failed = True
                return None
        return self._macromodel

    def _analytical(self, job: EstimationJob) -> Estimate:
        """Last resort: one state per macro-operation at fill energy.

        Deliberately crude — it exists so a run always terminates with
        a tagged number; the accuracy contract lives in the provenance
        counts, not in this estimate.
        """
        cycles = 2 + len(job.op_names)
        energy = self.power_model.fill_energy(cycles)
        return Estimate(
            cycles=cycles,
            energy=min(energy, self.config.max_energy_j),
            ran_low_level=False,
            provenance="degraded",
        )

    # ------------------------------------------------------------------
    # Cache / bus boundary guards
    # ------------------------------------------------------------------

    def component_ok(self, site: str) -> bool:
        """Draw the fault schedule of a non-estimator boundary.

        Cache and bus contributions are additive side effects, so their
        degradation mode is *bypass*: a faulted invocation simply
        contributes no stall cycles / bus timing (counted, so reports
        show how much accounting was lost).  Hang faults are treated as
        unavailability too — sleeping would stall the whole master.
        """
        if self.injector is None:
            return True
        spec = self.injector.draw(site)
        if spec is None:
            return True
        self.bypasses[site] = self.bypasses.get(site, 0) + 1
        self._count("resilience.bypass.%s" % site)
        return False

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _count(self, name: str) -> None:
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.metrics.counter(name).inc()

    def _count_fallback(self, level: str) -> None:
        self.fallbacks[level] = self.fallbacks.get(level, 0) + 1
        self._count("resilience.fallback.%s" % level)
        self._count("resilience.fallbacks")
        emit_event(EVENT_ESTIMATOR_FALLBACK, level=level)

    def statistics(self) -> Dict[str, float]:
        """Flat counters for :class:`~repro.core.report.EnergyReport`."""
        stats: Dict[str, float] = {
            "retries": float(self.retries),
            "backoff_seconds": round(self.backoff_seconds, 6),
            "watchdog_timeouts": float(self.watchdog_timeouts),
            "corrupted_estimates": float(self.corrupted),
            "persistent_failures": float(self.failures),
            "fallbacks": float(sum(self.fallbacks.values())),
        }
        for level, count in sorted(self.fallbacks.items()):
            stats["fallback.%s" % level] = float(count)
        for site, count in sorted(self.failures_by_site.items()):
            stats["failures.%s" % site] = float(count)
        for site, count in sorted(self.short_circuits.items()):
            stats["breaker_short_circuit.%s" % site] = float(count)
        for site, count in sorted(self.bypasses.items()):
            stats["bypass.%s" % site] = float(count)
        if self.injector is not None:
            for name, value in self.injector.counters.snapshot().items():
                stats["fault.%s" % name] = value
        return stats

    def publish_metrics(self) -> None:
        """End-of-run gauges (the live counters accrue during the run).

        Gauges live under ``resilience.stats.`` — the registry refuses
        to reuse a live counter's name (``resilience.retries`` etc.) as
        a gauge.
        """
        metrics = self.telemetry.metrics
        for name, value in self.statistics().items():
            metrics.gauge("resilience.stats.%s" % name).set(value)

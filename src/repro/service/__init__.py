"""The co-estimation service layer (``repro serve``).

A long-running server that turns the one-shot estimator into a shared
facility with the robustness contract of a production serving stack:

* :mod:`repro.service.queue` — bounded admission queue: explicit 429
  backpressure with ``Retry-After``, priority load shedding, never
  unbounded memory;
* :mod:`repro.service.breaker` — per-component-estimator circuit
  breakers (closed → open → half-open) that short-circuit persistently
  failing sites onto the degradation ladder instead of erroring;
* :mod:`repro.service.dedup` — idempotent in-flight coalescing keyed by
  the structural request fingerprint;
* :mod:`repro.service.api` — JSON request validation and the
  fingerprint itself;
* :mod:`repro.service.lifecycle` — SIGTERM-driven graceful drain with
  checkpointing of unstarted requests;
* :mod:`repro.service.server` — the service core, the stdlib HTTP
  front end, and the ``repro serve`` runner.

See ``docs/service.md`` for the API, breaker semantics, the drain
sequence, and capacity tuning.
"""

from repro.service.api import (
    PRIORITIES,
    BadRequest,
    EstimateRequest,
    parse_request,
    request_fingerprint,
    workload_signature,
)
from repro.service.breaker import (
    BREAKER_STATES,
    BreakerRegistry,
    CircuitBreaker,
    ScopedBreakers,
)
from repro.service.dedup import InflightTable
from repro.service.lifecycle import (
    DrainController,
    install_drain_signals,
    load_drain_checkpoint,
    raise_on_signals,
    service_checkpoint_signature,
    write_drain_checkpoint,
)
from repro.service.queue import AdmissionQueue, QueueClosed, QueueFull
from repro.service.server import (
    CoEstimationService,
    DrainReport,
    PendingResult,
    ServiceConfig,
    ServiceHTTPServer,
    ServiceRejected,
    run_server,
)

__all__ = [
    "PRIORITIES",
    "BREAKER_STATES",
    "AdmissionQueue",
    "BadRequest",
    "BreakerRegistry",
    "CircuitBreaker",
    "CoEstimationService",
    "DrainController",
    "DrainReport",
    "EstimateRequest",
    "InflightTable",
    "PendingResult",
    "QueueClosed",
    "QueueFull",
    "ScopedBreakers",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceRejected",
    "install_drain_signals",
    "load_drain_checkpoint",
    "parse_request",
    "raise_on_signals",
    "request_fingerprint",
    "run_server",
    "service_checkpoint_signature",
    "workload_signature",
    "write_drain_checkpoint",
]

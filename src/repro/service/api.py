"""Request/response model of the co-estimation service.

The wire format is deliberately tiny — JSON in, JSON out — but the
request model does two jobs beyond parsing:

* **Validation with named errors.**  A long-lived server cannot afford
  Python tracebacks as its error channel; every malformed field becomes
  a :class:`BadRequest` with a message the client can act on.
* **Value identity.**  :func:`request_fingerprint` folds the PR-2
  structural CFSM fingerprints together with a workload signature
  (stimuli, strategy, fault plan, shared-memory image) into one digest.
  Two requests with equal fingerprints ask for the *same computation*,
  which is what makes request deduplication idempotent rather than
  merely name-based: a rebuilt-but-identical system coalesces, a
  system that changed under the same name does not.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cfsm.events import Event
from repro.cfsm.fingerprint import cfsm_signature
from repro.errors import ReproError
from repro.resilience.faults import FaultPlan
from repro.systems.bundle import SystemBundle

__all__ = [
    "PRIORITIES",
    "PRIORITY_NAMES",
    "BadRequest",
    "EstimateRequest",
    "parse_request",
    "workload_signature",
    "request_fingerprint",
]

#: Admission priorities, lowest to highest.  Load shedding removes the
#: numerically lowest queued priority first.
PRIORITIES = {"low": 0, "normal": 1, "high": 2}
PRIORITY_NAMES = {value: name for name, value in PRIORITIES.items()}

_STRATEGIES = ("full", "caching", "macromodel", "sampling")
_FAULT_SITES = ("hw", "iss", "cache", "bus")
_FAULT_KINDS = ("exception", "hang", "corrupt")

_request_counter = itertools.count(1)


class BadRequest(ReproError):
    """A client request failed validation (HTTP 400)."""


@dataclass
class EstimateRequest:
    """One admitted co-estimation request.

    Attributes:
        system: bundled system name (see ``repro.systems.BUILDERS``).
        strategy: estimation strategy name.
        priority: admission priority (0=low, 1=normal, 2=high).
        deadline_s: end-to-end budget (queue wait + run).  Propagated
            into the run's resilience watchdog so a slow gate-level
            call degrades instead of pinning a worker.
        fault_plan: optional fault-injection plan (chaos requests).
        fault_retries: supervised retries per faulted invocation.
        request_id: client-supplied or generated identifier (logs,
            checkpoints); *not* part of the fingerprint.
    """

    system: str
    strategy: str = "caching"
    priority: int = PRIORITIES["normal"]
    deadline_s: float = 30.0
    fault_plan: Optional[FaultPlan] = None
    fault_retries: int = 1
    request_id: str = field(default="")

    def __post_init__(self) -> None:
        if not self.request_id:
            self.request_id = "req-%d" % next(_request_counter)

    @property
    def priority_name(self) -> str:
        return PRIORITY_NAMES.get(self.priority, str(self.priority))

    def to_payload(self) -> Dict[str, Any]:
        """JSON-able snapshot for the drain checkpoint."""
        payload: Dict[str, Any] = {
            "system": self.system,
            "strategy": self.strategy,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "request_id": self.request_id,
            "fault_retries": self.fault_retries,
        }
        if self.fault_plan is not None:
            # Requests can only carry uniform plans (see parse_request),
            # so rate/sites/kind round-trip losslessly through the
            # payload.
            specs = self.fault_plan.specs
            payload["fault"] = {
                "rate": specs[0].probability if specs else 0.0,
                "sites": sorted({spec.site for spec in specs}),
                "seed": self.fault_plan.seed,
                "retries": self.fault_retries,
                "kind": specs[0].kind if specs else "exception",
                "hang_s": specs[0].hang_s if specs else 0.05,
            }
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any],
                     known_systems: Optional[List[str]] = None
                     ) -> "EstimateRequest":
        """Rebuild a request from its checkpoint payload (validated)."""
        return parse_request(payload, known_systems=known_systems)


def parse_request(body: Any,
                  known_systems: Optional[List[str]] = None,
                  default_deadline_s: float = 30.0) -> EstimateRequest:
    """Validate a decoded JSON body into an :class:`EstimateRequest`.

    Raises :class:`BadRequest` naming the offending field; never lets a
    malformed value reach the workers.
    """
    if not isinstance(body, dict):
        raise BadRequest("request body must be a JSON object")
    system = body.get("system")
    if not isinstance(system, str) or not system:
        raise BadRequest("'system' is required and must be a string")
    if known_systems is not None and system not in known_systems:
        raise BadRequest(
            "unknown system %r (choose from %s)"
            % (system, ", ".join(sorted(known_systems)))
        )
    strategy = body.get("strategy", "caching")
    if strategy not in _STRATEGIES:
        raise BadRequest(
            "unknown strategy %r (choose from %s)"
            % (strategy, ", ".join(_STRATEGIES))
        )
    priority = body.get("priority", "normal")
    if isinstance(priority, str):
        if priority not in PRIORITIES:
            raise BadRequest(
                "unknown priority %r (choose from %s)"
                % (priority, ", ".join(PRIORITIES))
            )
        priority = PRIORITIES[priority]
    elif isinstance(priority, bool) or not isinstance(priority, int):
        raise BadRequest("'priority' must be low/normal/high or an integer")
    deadline_s = body.get("deadline_s", default_deadline_s)
    if isinstance(deadline_s, bool) or not isinstance(deadline_s, (int, float)):
        raise BadRequest("'deadline_s' must be a number")
    if not deadline_s > 0:
        raise BadRequest("'deadline_s' must be positive")
    fault_plan = None
    fault_retries = 1
    fault = body.get("fault")
    if fault is not None:
        if not isinstance(fault, dict):
            raise BadRequest("'fault' must be an object")
        rate = fault.get("rate", 0.0)
        if isinstance(rate, bool) or not isinstance(rate, (int, float)):
            raise BadRequest("'fault.rate' must be a number")
        if not 0.0 <= rate <= 1.0:
            raise BadRequest("'fault.rate' must be in [0, 1]")
        sites = fault.get("sites", list(_FAULT_SITES))
        if (not isinstance(sites, list)
                or not all(isinstance(s, str) for s in sites)):
            raise BadRequest("'fault.sites' must be a list of site names")
        unknown = sorted(set(sites) - set(_FAULT_SITES))
        if unknown:
            raise BadRequest(
                "unknown fault sites %s (choose from %s)"
                % (unknown, ", ".join(_FAULT_SITES))
            )
        seed = fault.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise BadRequest("'fault.seed' must be an integer")
        retries = fault.get("retries", 1)
        if isinstance(retries, bool) or not isinstance(retries, int) \
                or retries < 0:
            raise BadRequest("'fault.retries' must be a non-negative integer")
        kind = fault.get("kind", "exception")
        if kind not in _FAULT_KINDS:
            raise BadRequest(
                "unknown fault kind %r (choose from %s)"
                % (kind, ", ".join(_FAULT_KINDS))
            )
        hang_s = fault.get("hang_s", 0.05)
        if isinstance(hang_s, bool) \
                or not isinstance(hang_s, (int, float)) or hang_s < 0:
            raise BadRequest("'fault.hang_s' must be a non-negative number")
        if rate > 0 and sites:
            fault_plan = FaultPlan.uniform(sites, float(rate), seed=seed,
                                           kind=kind, hang_s=float(hang_s))
            fault_retries = retries
    request_id = body.get("request_id", "")
    if not isinstance(request_id, str):
        raise BadRequest("'request_id' must be a string")
    return EstimateRequest(
        system=system,
        strategy=strategy,
        priority=priority,
        deadline_s=float(deadline_s),
        fault_plan=fault_plan,
        fault_retries=fault_retries,
        request_id=request_id,
    )


def workload_signature(stimuli: List[Event]) -> str:
    """Digest of a stimulus list (the workload half of the fingerprint)."""
    payload = tuple(
        (event.name, event.value, event.time, event.source)
        for event in stimuli
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def request_fingerprint(bundle: SystemBundle,
                        request: EstimateRequest) -> str:
    """Idempotency key: same fingerprint ⇒ same computation.

    Built from the structural :func:`~repro.cfsm.fingerprint.
    cfsm_signature` of every CFSM in the network (value identity — two
    builds of the same design match, a changed design does not), the
    workload signature of the stimuli, the strategy, the shared-memory
    image, and the fault plan (a chaos request must never coalesce with
    a clean one).  Priority, deadline and request id are deliberately
    excluded: they change *scheduling*, not the computed answer.
    """
    network = bundle.network
    cfsms = tuple(
        cfsm_signature(network.cfsms[name]) for name in sorted(network.cfsms)
    )
    implementations = tuple(
        (name, str(network.implementation(name)))
        for name in sorted(network.cfsms)
    )
    memory = tuple(sorted((bundle.shared_memory_image or {}).items()))
    fault = None
    if request.fault_plan is not None:
        fault = (
            tuple(
                (spec.site, spec.kind, spec.probability, spec.hang_s)
                for spec in request.fault_plan.specs
            ),
            request.fault_plan.seed,
            request.fault_retries,
        )
    payload = (
        request.system,
        request.strategy,
        cfsms,
        implementations,
        memory,
        workload_signature(bundle.stimuli()),
        fault,
    )
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()

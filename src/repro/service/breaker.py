"""Per-component-estimator circuit breakers.

A long-lived co-estimation service keeps calling the same component
estimators (the ISS, the gate-level simulator) across thousands of
requests.  When one of those sites fails *persistently* — a broken
netlist, a corrupted library, an injected 100%-fault-rate chaos plan —
retrying it on every transition of every request burns the per-request
deadline on work that is known to fail.  The PR-3 supervision layer
already degrades a failed call down the cached → macromodel →
analytical ladder; the breaker adds the *cross-request* memory:

* ``closed`` — normal operation, calls flow through;
* ``open`` — after ``failure_threshold`` consecutive persistent
  failures, the site is short-circuited: supervised calls skip the
  doomed low-level invocation and answer directly from the degradation
  ladder (tagged ``cached``/``macromodel``/``degraded`` provenance);
* ``half-open`` — after ``recovery_s`` the next call is admitted as a
  single probe; success closes the breaker, failure re-opens it.

The breaker object implements the minimal protocol the resilience
supervisor consumes (``allow`` / ``record_success`` /
``record_failure``), so :class:`~repro.resilience.supervisor.
ResilientEstimator` stays decoupled from this module: any object with
those three methods can ride on ``ResilienceConfig.breaker_registry``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "BreakerRegistry",
    "ScopedBreakers",
]

#: Breaker states, in increasing order of distrust.
BREAKER_STATES = ("closed", "half_open", "open")


class CircuitBreaker:
    """One breaker guarding one component-estimator site.

    Thread-safe: a service worker pool consults the same breaker from
    many threads.  ``clock`` is injectable so tests never sleep.
    """

    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        recovery_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_s < 0:
            raise ValueError("recovery_s must be non-negative")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False
        # Lifetime accounting (exposed by /stats).
        self.opens = 0
        self.short_circuits = 0
        self.probes = 0

    def _set_state(self, new_state: str) -> Optional[Tuple[str, str]]:
        """Change state under the lock; returns the (old, new) edge.

        Returns None when nothing changed.  The caller is responsible
        for reporting the edge to ``on_transition`` *after* releasing
        the lock — observers log and touch metrics, and holding a hot
        breaker lock across foreign code invites deadlocks.
        """
        old_state = self._state
        if old_state == new_state:
            return None
        self._state = new_state
        return old_state, new_state

    def _notify(self, edge: Optional[Tuple[str, str]]) -> None:
        if edge is not None and self._on_transition is not None:
            self._on_transition(self.name, edge[0], edge[1])

    # -- protocol consumed by ResilientEstimator -----------------------

    def allow(self) -> bool:
        """May a supervised call run its low-level estimator now?

        Open breakers admit a single probe once ``recovery_s`` has
        elapsed (transitioning to half-open); every other caller is
        short-circuited until the probe reports back.
        """
        edge: Optional[Tuple[str, str]] = None
        try:
            with self._lock:
                if self._state == "closed":
                    return True
                if self._state == "open":
                    if self._clock() - self._opened_at >= self.recovery_s:
                        edge = self._set_state("half_open")
                        self._probe_in_flight = True
                        self.probes += 1
                        return True
                    self.short_circuits += 1
                    return False
                # half-open: exactly one probe at a time.
                if self._probe_in_flight:
                    self.short_circuits += 1
                    return False
                self._probe_in_flight = True
                self.probes += 1
                return True
        finally:
            self._notify(edge)

    def record_success(self) -> None:
        """A supervised exact call completed: close (or stay closed)."""
        with self._lock:
            edge = self._set_state("closed")
            self._consecutive_failures = 0
            self._probe_in_flight = False
        self._notify(edge)

    def record_failure(self) -> None:
        """A supervised call failed persistently (retries exhausted)."""
        edge: Optional[Tuple[str, str]] = None
        with self._lock:
            if self._state == "half_open":
                # The probe failed: straight back to open.
                edge = self._trip()
            else:
                self._consecutive_failures += 1
                if (
                    self._state == "closed"
                    and self._consecutive_failures >= self.failure_threshold
                ):
                    edge = self._trip()
        self._notify(edge)

    def _trip(self) -> Optional[Tuple[str, str]]:
        edge = self._set_state("open")
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self.opens += 1
        return edge

    # -- introspection --------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self.opens,
                "short_circuits": self.short_circuits,
                "probes": self.probes,
            }


class BreakerRegistry:
    """Lazily created breakers, keyed by site name, shared service-wide.

    Keys are free-form strings; the service uses ``"<system>:<site>"``
    so a broken gate-level simulator for one system never trips the
    breaker of another.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self._clock = clock
        #: Called as ``(site, old_state, new_state)`` on every breaker
        #: state change, outside the breaker's lock.  Assignable after
        #: construction (the service wires its observability bundle in).
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    def _dispatch_transition(self, site: str, old: str, new: str) -> None:
        callback = self.on_transition
        if callback is not None:
            callback(site, old, new)

    def get(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = CircuitBreaker(
                    name,
                    failure_threshold=self.failure_threshold,
                    recovery_s=self.recovery_s,
                    clock=self._clock,
                    on_transition=self._dispatch_transition,
                )
            return breaker

    def states(self) -> Dict[str, str]:
        """Current state of every known breaker, keyed by site."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.state for name, breaker in sorted(breakers.items())}

    def peek(self, name: str) -> Optional[CircuitBreaker]:
        """The breaker for ``name`` if it exists (no creation)."""
        with self._lock:
            return self._breakers.get(name)

    def scoped(self, prefix: str) -> "ScopedBreakers":
        """A per-system view usable as ``ResilienceConfig.breaker_registry``."""
        return ScopedBreakers(self, prefix)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot() for name, breaker in sorted(breakers.items())}

    def open_count(self) -> int:
        with self._lock:
            breakers = list(self._breakers.values())
        return sum(1 for breaker in breakers if breaker.state == "open")


class ScopedBreakers:
    """Registry view that prepends ``"<prefix>:"`` to every site name.

    :class:`~repro.resilience.supervisor.ResilientEstimator` asks its
    ``breaker_registry`` for plain site names (``hw``, ``iss``); the
    service needs those partitioned per system.  This adapter is what a
    request's :class:`~repro.resilience.supervisor.ResilienceConfig`
    actually carries.
    """

    def __init__(self, registry: BreakerRegistry, prefix: str) -> None:
        self._registry = registry
        self.prefix = prefix

    def get(self, site: str) -> CircuitBreaker:
        return self._registry.get("%s:%s" % (self.prefix, site))

"""Idempotent request deduplication (in-flight coalescing).

Power co-estimation is a pure function of (design, workload, strategy,
fault plan) — exactly what :func:`repro.service.api.request_fingerprint`
digests.  When two clients submit that same computation concurrently
(retry storms, fan-in dashboards, duplicated CI jobs), running it twice
buys nothing, and under load it costs a queue slot someone else needed.

The table tracks every fingerprint from admission to completion.  The
first submission is the **primary** — it owns a queue slot and a worker.
Every later identical submission while the primary is queued or running
becomes a **follower**: it is handed the primary's pending result and
occupies *no* queue slot.  When the primary finishes (success, failure,
shed, deadline — any terminal outcome), all followers observe the same
outcome, and the fingerprint is released so the next identical request
computes afresh.

This is coalescing, not a response cache: nothing is remembered after
completion.  (Cross-run result reuse is the job of the §4.2 energy
caches, which the workers already share process-wide.)
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = ["InflightTable"]


class InflightTable:
    """Fingerprint → in-flight primary entry, with follower counting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Any] = {}
        self._followers: Dict[str, int] = {}
        # Lifetime accounting (read by /stats).
        self.coalesced = 0
        self.primaries = 0

    def admit(self, fingerprint: str, entry: Any) -> Any:
        """Register ``entry`` unless an identical request is in flight.

        Returns ``entry`` itself when it became the primary, or the
        already-in-flight primary to attach to (the caller must then
        *not* enqueue anything).
        """
        with self._lock:
            primary = self._inflight.get(fingerprint)
            if primary is not None:
                self.coalesced += 1
                self._followers[fingerprint] = (
                    self._followers.get(fingerprint, 0) + 1
                )
                return primary
            self._inflight[fingerprint] = entry
            self.primaries += 1
            return entry

    def complete(self, fingerprint: str) -> int:
        """Release ``fingerprint``; returns how many followers rode along.

        Must be called on *every* terminal outcome of the primary —
        completion, failure, shed, expiry — or the fingerprint would
        coalesce forever onto a corpse.
        """
        with self._lock:
            self._inflight.pop(fingerprint, None)
            return self._followers.pop(fingerprint, 0)

    def get(self, fingerprint: str) -> Optional[Any]:
        with self._lock:
            return self._inflight.get(fingerprint)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._inflight)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "primaries": self.primaries,
                "coalesced": self.coalesced,
            }

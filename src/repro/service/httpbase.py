"""Shared stdlib-HTTP plumbing for the service and cluster front ends.

Both the single-node service (:mod:`repro.service.server`) and the
cluster coordinator/worker (:mod:`repro.cluster`) speak the same tiny
dialect: JSON bodies, explicit Content-Length, a pooled path label for
the HTTP metrics (so probing garbage paths cannot explode label
cardinality), and tolerance for clients that hang up mid-response.
This module holds that plumbing once.

:class:`JsonRequestHandler` is deliberately free of service knowledge —
subclasses provide routing (``do_GET``/``do_POST``) and override
:meth:`record_http` to point at their own observability bundle.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

__all__ = ["JsonRequestHandler", "QuietHTTPServer"]


class QuietHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer with daemon threads and a ``quiet`` flag."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], handler_class: Any,
                 quiet: bool = True) -> None:
        self.quiet = quiet
        super().__init__(address, handler_class)


class JsonRequestHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP request handler base (stdlib only).

    Subclasses set :attr:`KNOWN_PATHS` (paths counted under their own
    metric label; everything else pools as ``"other"``) and override
    :meth:`record_http` to feed their metrics.
    """

    server_version = "repro-coestimation/1.0"
    protocol_version = "HTTP/1.1"

    #: Paths counted under their own label; everything else is pooled
    #: as "other" so probing garbage paths cannot explode cardinality.
    KNOWN_PATHS: Tuple[str, ...] = ()

    def log_message(self, fmt: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", True):
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    # -- hooks ----------------------------------------------------------

    def record_http(self, label: str, status: int) -> None:
        """Observability hook: one call per response sent."""

    # -- request body ---------------------------------------------------

    def read_json_body(self) -> Optional[Any]:
        """Parse the request body as JSON; answers 400 and returns
        ``None`` on any malformation (missing length, bad encoding)."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.respond_json(400, {"status": "error",
                                    "reason": "bad Content-Length"})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            self.respond_json(400, {"status": "error",
                                    "reason": "body is not valid JSON"})
            return None

    # -- responses ------------------------------------------------------

    def http_label(self) -> str:
        path = self.path.split("?", 1)[0]
        for known in self.KNOWN_PATHS:
            if path == known or path.startswith(known + "/"):
                return known
        return "other"

    def respond_json(self, status: int, body: Dict[str, Any],
                     headers: Optional[Dict[str, str]] = None) -> None:
        payload = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_payload(status, payload, "application/json", headers)

    def respond_text(self, status: int, text: str) -> None:
        self.send_payload(
            status, text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8", None,
        )

    def send_payload(self, status: int, payload: bytes,
                     content_type: str,
                     headers: Optional[Dict[str, str]]) -> None:
        self.record_http(self.http_label(), status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client gave up; the server-side result still counted

"""Graceful-drain lifecycle: signals, drain state, drain checkpoints.

The drain sequence a SIGTERM (or SIGINT) triggers is the standard
serving-stack contract:

1. **Stop admitting** — ``/readyz`` flips to 503 and new submissions
   are refused, so load balancers and retrying clients move on.
2. **Finish what's running** — workers keep consuming the queue until
   it is empty or the drain timeout expires.
3. **Checkpoint what's left** — queued-but-unstarted requests are
   written through the PR-3 :class:`~repro.resilience.checkpoint.
   CheckpointWriter` (atomic replace + directory fsync), so a restart
   with ``--resume`` re-enqueues them instead of losing them.
4. **Exit 0** — a drained shutdown is a *successful* shutdown; only a
   failure to drain is an error.

Signal handling is deliberately thin: the handler only records the
request and wakes the waiter — all real work happens on a normal
thread, because almost nothing is async-signal-safe.
"""

from __future__ import annotations

import signal
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.resilience.checkpoint import (
    CheckpointWriter,
    load_checkpoint,
    sweep_signature,
)

__all__ = [
    "DrainController",
    "install_drain_signals",
    "raise_on_signals",
    "service_checkpoint_signature",
    "write_drain_checkpoint",
    "load_drain_checkpoint",
]


class DrainController:
    """Single source of truth for the service's admission state."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self.reason: Optional[str] = None
        self._hooks: List[Callable[[str], None]] = []
        self._requested = False

    @property
    def draining(self) -> bool:
        return self._event.is_set()

    def add_hook(self, hook: Callable[[str], None]) -> None:
        """Register a callback fired once when the drain is requested.

        Hooks run *before* the drain event wakes the waiters, in
        registration order, on the requesting thread — the HA
        coordinator uses this to resign leadership (journal the tip,
        release the lease) while the server is still answering, so a
        successor can elect immediately instead of waiting out the
        lease TTL.  A hook that raises is swallowed: a broken hand-off
        must never block the shutdown itself.
        """
        with self._lock:
            self._hooks.append(hook)

    def request_drain(self, reason: str = "requested") -> bool:
        """Flip to draining; returns False if already draining."""
        with self._lock:
            if self._requested:
                return False
            self._requested = True
            self.reason = reason
            hooks = list(self._hooks)
        for hook in hooks:
            try:
                hook(reason)
            except Exception:  # noqa: BLE001 - shutdown must proceed
                pass
        with self._lock:
            self._event.set()
            return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a drain is requested."""
        return self._event.wait(timeout)


def install_drain_signals(
    controller: DrainController,
    signals: Sequence[int] = (signal.SIGTERM, signal.SIGINT),
) -> Callable[[], None]:
    """Route ``signals`` into ``controller.request_drain``.

    Returns a restore function that reinstates the previous handlers
    (tests install and uninstall around a server's lifetime).  Only the
    main thread may install signal handlers; callers on other threads
    should skip installation and drive the controller directly.
    """

    def handler(signum: int, frame: Any) -> None:  # noqa: ARG001
        controller.request_drain("signal %d" % signum)

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)

    def restore() -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)

    return restore


def raise_on_signals(
    signals: Sequence[int] = (signal.SIGTERM,),
    exception_factory: Optional[Callable[[int], BaseException]] = None,
) -> Callable[[], None]:
    """Convert ``signals`` into an in-band exception in the main thread.

    Used by batch commands (``repro explore``): a SIGTERM becomes a
    ``SystemExit`` raised at the next bytecode boundary, which unwinds
    through the pool's ``finally`` (terminating every worker process)
    and past the checkpoint writer (already flushed per-point) — a kill
    mid-sweep leaves a loadable checkpoint and no orphans.  Returns the
    restore function.
    """
    if exception_factory is None:
        def default_factory(signum: int) -> BaseException:
            return SystemExit(128 + signum)

        factory = default_factory
    else:
        factory = exception_factory

    def handler(signum: int, frame: Any) -> None:  # noqa: ARG001
        raise factory(signum)

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)

    def restore() -> None:
        for signum, old in previous.items():
            signal.signal(signum, old)

    return restore


#: Bump when the drain-checkpoint payload shape changes.
_SERVICE_CHECKPOINT_VERSION = 1


def service_checkpoint_signature() -> str:
    """The sweep-signature under which drain checkpoints are written.

    Deliberately free of tuning knobs (workers, queue depth, port):
    a restart with a different capacity configuration must still be
    able to pick the pending requests up.  Request payloads carry their
    own meaning (system, strategy, fault plan), validated on re-parse.
    """
    return sweep_signature(
        kind="repro-service-drain",
        version=_SERVICE_CHECKPOINT_VERSION,
    )


def write_drain_checkpoint(
    path: str,
    pending_payloads: List[Dict[str, Any]],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Atomically persist the requests a drain could not finish."""
    writer = CheckpointWriter(path, service_checkpoint_signature())
    for index, payload in enumerate(pending_payloads):
        label = payload.get("request_id") or "pending-%d" % index
        writer.record(str(label), payload)
    writer.flush(meta=dict(meta or {}, pending=len(pending_payloads)))


def load_drain_checkpoint(path: str) -> List[Dict[str, Any]]:
    """Pending request payloads of a drain checkpoint, admission order."""
    completed = load_checkpoint(path, service_checkpoint_signature())
    return [completed[label] for label in sorted(completed)]

"""Bounded admission queue with backpressure and load shedding.

The service's memory ceiling lives here: the queue holds at most
``max_depth`` waiting requests, ever.  When it is full, the queue
answers with *explicit* backpressure instead of growing:

* an incoming request at a priority **no higher** than everything
  queued is refused (:class:`QueueFull` → HTTP 429 + ``Retry-After``);
* an incoming request at a **higher** priority than the lowest queued
  one *sheds* that victim — the victim's submitter gets an immediate
  503 instead of a slot, and the newcomer takes its place.  Under
  sustained overload the queue therefore converges to serving the
  highest-priority traffic, which is the standard load-shedding
  contract of a serving stack.

Ordering is priority-major, FIFO within a priority.  The structure is a
plain list scanned under a lock: ``max_depth`` is tens-to-hundreds, so
O(depth) take/shed is simpler and *provably* correct against the
"heap with arbitrary removal" alternative, and the lock hold times are
nanoseconds next to a co-estimation run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["QueueFull", "QueueClosed", "AdmissionQueue"]

#: How many (timestamp, depth) points the depth history retains.
DEPTH_HISTORY_LEN = 64


class QueueFull(ReproError):
    """The admission queue is at capacity and the request lost (429)."""


class QueueClosed(ReproError):
    """The queue no longer admits work (drain in progress, 503)."""


class AdmissionQueue:
    """Bounded, priority-ordered, thread-safe admission queue."""

    def __init__(
        self,
        max_depth: int,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._clock = clock
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # (priority, seq, static cost units, item)
        self._items: List[Tuple[int, int, float, Any]] = []
        self._seq = 0
        self._closed = False
        # Lifetime accounting (read by /stats).
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.peak_depth = 0
        # Static-cost accounting: the queue tracks the summed admission
        # weight (repro.lint.cost units) of everything waiting, so the
        # service can quote Retry-After from the *work* queued instead
        # of the request count.
        self._queued_cost = 0.0
        self.admitted_cost = 0.0
        # Recent (timestamp, depth) points, one per depth change —
        # the /stats sparkline that shows *how* the queue filled, not
        # just where it stands now.  Bounded; O(1) per transition.
        self._depth_history: Deque[Tuple[float, int]] = deque(
            maxlen=DEPTH_HISTORY_LEN
        )

    def _record_depth_locked(self) -> None:
        self._depth_history.append((self._clock(), len(self._items)))

    # -- producer side --------------------------------------------------

    def submit(self, item: Any, priority: int,
               cost: float = 1.0) -> Optional[Any]:
        """Admit ``item``; returns the shed victim, if admission cost one.

        ``cost`` is the request's static admission weight
        (:attr:`repro.lint.cost.CostReport.cost_units`); the queue sums
        it into :attr:`queued_cost` for cost-aware backpressure quotes.
        Raises :class:`QueueFull` when the queue is at capacity and no
        queued entry has a strictly lower priority, :class:`QueueClosed`
        after :meth:`close`.
        """
        with self._not_empty:
            if self._closed:
                raise QueueClosed("admission queue is closed (draining)")
            victim = None
            if len(self._items) >= self.max_depth:
                index = self._lowest_priority_index()
                if self._items[index][0] >= priority:
                    self.rejected += 1
                    raise QueueFull(
                        "admission queue full (%d queued at priority >= %d)"
                        % (len(self._items), priority)
                    )
                _, _, victim_cost, victim = self._items.pop(index)
                self._queued_cost -= victim_cost
                self.shed += 1
            self._seq += 1
            self._items.append((priority, self._seq, cost, item))
            self.admitted += 1
            self._queued_cost += cost
            self.admitted_cost += cost
            if len(self._items) > self.peak_depth:
                self.peak_depth = len(self._items)
            self._record_depth_locked()
            self._not_empty.notify()
            return victim

    def _lowest_priority_index(self) -> int:
        """Index of the shed victim: lowest priority, newest arrival."""
        best = 0
        for index in range(1, len(self._items)):
            priority, seq, _, _ = self._items[index]
            if (priority, -seq) < (self._items[best][0], -self._items[best][1]):
                best = index
        return best

    # -- consumer side --------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the best entry (highest priority, oldest within it).

        Blocks up to ``timeout`` (forever if ``None``); returns ``None``
        on timeout or when the queue is closed *and* empty — the worker
        shutdown signal.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return None
                self._not_empty.wait(remaining)
            best = 0
            for index in range(1, len(self._items)):
                priority, seq, _, _ = self._items[index]
                if (-priority, seq) < (-self._items[best][0],
                                       self._items[best][1]):
                    best = index
            _, _, cost, item = self._items.pop(best)
            self._queued_cost -= cost
            self._record_depth_locked()
            return item

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake every blocked :meth:`take`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def drain_remaining(self) -> List[Any]:
        """Remove and return everything still queued (drain checkpoint)."""
        with self._not_empty:
            items = [item for _, _, _, item in sorted(
                self._items, key=lambda entry: (-entry[0], entry[1])
            )]
            self._items.clear()
            self._queued_cost = 0.0
            self._record_depth_locked()
            return items

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def queued_cost(self) -> float:
        """Summed static cost units of everything currently waiting."""
        with self._lock:
            return self._queued_cost

    def depth_history(self) -> List[Tuple[float, int]]:
        """Recent ``(timestamp, depth)`` points, oldest first."""
        with self._lock:
            return list(self._depth_history)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._items),
                "max_depth": self.max_depth,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "shed": self.shed,
                "queued_cost": round(self._queued_cost, 4),
                "admitted_cost": round(self.admitted_cost, 4),
                "closed": self._closed,
                "depth_history": [
                    [round(ts, 6), depth]
                    for ts, depth in self._depth_history
                ],
            }

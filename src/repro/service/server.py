"""The long-running co-estimation server.

``repro serve`` turns the one-shot estimator into a shared facility: a
stdlib :class:`~http.server.ThreadingHTTPServer` front end (JSON API,
no new dependencies) over a bounded admission queue and a pool of
worker threads that run the same supervised master the CLI runs.

The request path, end to end::

    POST /estimate ─▶ parse ─▶ fingerprint ─▶ dedup ─▶ admission queue
                                  │                        │
                     (identical in-flight request:         │ full: 429 + Retry-After
                      coalesce, no queue slot)             │ higher-priority arrival:
                                                           │ shed lowest, 503 to victim
                                                  worker thread
                                                           │ deadline left? (504 if not)
                                               supervised co-estimation
                                        (per-request watchdog, circuit breakers,
                                         degradation ladder, provenance tags)
                                                           │
                                               200 + report  /  504  /  500

Robustness properties, each tested:

* bounded memory — the queue never exceeds ``queue_depth`` entries and
  every refusal is an explicit 429/503, never an unbounded buffer;
* deadline isolation — a request's remaining budget becomes the run's
  resilience watchdog, so one slow gate-level simulation degrades (with
  a provenance tag) instead of pinning a worker past the deadline;
* failure isolation — persistent per-site failures trip a circuit
  breaker keyed ``<system>:<site>``; an open breaker short-circuits
  straight onto the §4.2-cache / §4.1-macromodel rungs, answering
  degraded-but-tagged instead of erroring, and half-open probes find
  recovery on their own;
* graceful drain — SIGTERM stops admission, finishes what it can
  within the drain timeout, checkpoints the rest through the PR-3
  :class:`~repro.resilience.checkpoint.CheckpointWriter`, and exits 0.

Workers are *threads*, not processes: co-estimation runs are seconds
long and the service optimizes robustness and cache sharing (the
process-wide compile/synthesis/ISS caches and the warm-start energy
cache are shared by every request for free).  Throughput under the GIL
scales with the low-level simulators' time spent outside Python — for
CPU-bound saturation the front end is meant to be replicated, which is
why drain + checkpoint + idempotent dedup exist.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.obs import Observability
from repro.obs.context import RequestContext, use_context, use_event_sink
from repro.obs.logging import JsonLogger, NULL_LOGGER
from repro.obs.names import (
    EVENT_ADMITTED,
    EVENT_COALESCED,
    EVENT_COMPLETED,
    EVENT_DEADLINE_EXPIRED,
    EVENT_DISPATCHED,
    EVENT_DRAIN_STEP,
    EVENT_FAILED,
    EVENT_REJECTED,
    EVENT_SHED,
    METRIC_ADMISSION_STATIC_COST_IN_FLIGHT,
    METRIC_ADMISSION_STATIC_COST_QUEUED,
    METRIC_ADMISSION_STATIC_COST_SECONDS_PER_UNIT,
)
from repro.obs.slo import SLOConfig
from repro.parallel.jobs import JobSpec, job_seed
from repro.resilience.supervisor import (
    ResilienceConfig,
    WatchdogTimeout,
    call_with_watchdog,
)
from repro.service.api import (
    BadRequest,
    EstimateRequest,
    parse_request,
    request_fingerprint,
)
from repro.service.breaker import BreakerRegistry
from repro.service.dedup import InflightTable
from repro.service.httpbase import JsonRequestHandler
from repro.service.lifecycle import (
    DrainController,
    install_drain_signals,
    load_drain_checkpoint,
    write_drain_checkpoint,
)
from repro.service.queue import AdmissionQueue, QueueClosed, QueueFull
from repro.systems import build_bundle, builder_spec, system_names
from repro.telemetry import Telemetry

__all__ = [
    "ServiceConfig",
    "ServiceRejected",
    "PendingResult",
    "DrainReport",
    "CoEstimationService",
    "ServiceHTTPServer",
    "run_server",
]


#: Seconds-per-cost-unit rate used for Retry-After quotes before any
#: run has completed; replaced by the online EWMA after the first one.
DEFAULT_SECONDS_PER_COST_UNIT = 0.05


class ServiceRejected(ReproError):
    """A submission was refused (backpressure, drain, shed)."""

    def __init__(self, message: str, status: int, reason: str,
                 retry_after_s: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.retry_after_s = retry_after_s


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance (see docs/service.md)."""

    workers: int = 2
    queue_depth: int = 8
    default_deadline_s: float = 30.0
    drain_timeout_s: float = 10.0
    breaker_threshold: int = 3
    breaker_recovery_s: float = 30.0
    #: Optional per-low-level-call watchdog; the effective watchdog is
    #: ``min(call_watchdog_s, request's remaining deadline)``.
    call_watchdog_s: Optional[float] = None
    checkpoint_path: Optional[str] = None
    #: Latency/availability objectives tracked by the obs layer.
    slo: SLOConfig = field(default_factory=SLOConfig)
    #: When True, one JSON log line per request lifecycle event
    #: (admission, dispatch, completion, breaker transitions, drain).
    log_json: bool = False
    #: Flight-recorder ring size (recent events kept for postmortems).
    flight_recorder_capacity: int = 256
    #: Directory for flight-recorder dumps on 5xx/drain; None disables
    #: dumping (the in-memory ring and /debug endpoint still work).
    flight_dump_dir: Optional[str] = None
    #: Newest dumps kept on disk (older ones are pruned).
    flight_dump_keep: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")
        if self.flight_recorder_capacity < 1:
            raise ValueError("flight_recorder_capacity must be >= 1")


class PendingResult:
    """Completion handle shared by a primary and its coalesced followers."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.status: int = 0
        self.body: Dict[str, Any] = {}
        self.headers: Dict[str, str] = {}
        #: Correlation id of the request tree this result belongs to
        #: (set at admission; the HTTP layer echoes it as X-Trace-Id).
        self.trace_id: str = ""

    def resolve(self, status: int, body: Dict[str, Any],
                headers: Optional[Dict[str, str]] = None) -> None:
        if self._event.is_set():
            return  # first terminal outcome wins
        self.status = status
        self.body = body
        self.headers = dict(headers or {})
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    @property
    def done(self) -> bool:
        return self._event.is_set()


@dataclass
class _Entry:
    """One admitted request riding through queue and worker."""

    request: EstimateRequest
    fingerprint: str
    pending: PendingResult
    admitted_at: float
    context: Optional[RequestContext] = None
    #: Static admission weight of the request
    #: (:attr:`repro.lint.cost.CostReport.cost_units`).
    cost: float = 1.0


@dataclass
class DrainReport:
    """Outcome of one graceful drain."""

    reason: str = ""
    drained_clean: bool = True
    completed: int = 0
    checkpointed: int = 0
    abandoned_in_flight: int = 0
    checkpoint_path: Optional[str] = None

    def summary(self) -> str:
        parts = [
            "drain (%s): %s" % (self.reason or "requested",
                                "clean" if self.drained_clean else "timed out"),
            "%d request(s) completed" % self.completed,
        ]
        if self.checkpointed:
            parts.append("%d checkpointed to %s"
                         % (self.checkpointed, self.checkpoint_path))
        if self.abandoned_in_flight:
            parts.append("%d abandoned in flight" % self.abandoned_in_flight)
        return ", ".join(parts)


class CoEstimationService:
    """Queue + workers + breakers + dedup + drain, HTTP-agnostic.

    The HTTP layer is a thin adapter over this class, so tests (and
    embedders) can drive admission, execution and drain directly.
    """

    def __init__(self, config: Optional[ServiceConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 clock: Callable[[], float] = time.monotonic,
                 logger: Optional[JsonLogger] = None) -> None:
        self.config = config or ServiceConfig()
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.clock = clock
        if logger is None:
            logger = JsonLogger() if self.config.log_json else NULL_LOGGER
        self.obs = Observability(
            metrics=self.telemetry.metrics,
            logger=logger,
            slo=self.config.slo,
            flight_capacity=self.config.flight_recorder_capacity,
            flight_dump_dir=self.config.flight_dump_dir,
            flight_keep=self.config.flight_dump_keep,
        )
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.breakers = BreakerRegistry(
            failure_threshold=self.config.breaker_threshold,
            recovery_s=self.config.breaker_recovery_s,
            clock=clock,
            on_transition=self.obs.breaker_transition,
        )
        self.dedup = InflightTable()
        # Last few requests' worker-side span records, keyed by
        # trace_id — the /debug/trace/<id> postmortem view.  Bounded:
        # oldest evicted first.
        self._recent_traces: "OrderedDict[str, List[Tuple]]" = OrderedDict()
        self._recent_traces_cap = 32
        self.drain_controller = DrainController()
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._in_flight = 0
        self._in_flight_cost = 0.0
        self._avg_run_s = 0.0
        # Online seconds-per-cost-unit estimate (EWMA over completed
        # runs); 0.0 means "nothing learned yet" and _retry_after_s
        # falls back to DEFAULT_SECONDS_PER_COST_UNIT.
        self._seconds_per_cost_unit = 0.0
        # Per-system static admission weights, computed once — the
        # bundled systems are immutable, so their CostReports are too.
        self._static_costs: Dict[str, float] = {}
        self._completed = 0
        self._failed = 0
        self._expired = 0
        self._shed = 0
        self._provenance: Dict[str, int] = {}
        self._degraded_responses = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name="coest-worker-%d" % index,
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    @property
    def ready(self) -> bool:
        return (self._started and not self._stopped
                and not self.drain_controller.draining)

    def resume_from_checkpoint(self, path: str) -> int:
        """Re-enqueue the pending requests of a drain checkpoint.

        Resumed requests have no waiting client; they run for their
        side effects (warming the process-wide caches and the service's
        shadow statistics) and to honor the work-loss contract: a
        drained request is *deferred*, not dropped.
        """
        resumed = 0
        for payload in load_drain_checkpoint(path):
            try:
                request = EstimateRequest.from_payload(
                    payload, known_systems=system_names()
                )
                self.submit(request)
            except (BadRequest, ServiceRejected):
                continue
            resumed += 1
        return resumed

    # -- admission ------------------------------------------------------

    def submit(self, request: EstimateRequest) -> Tuple[PendingResult, bool]:
        """Admit one request; returns ``(pending, coalesced)``.

        Raises :class:`ServiceRejected` with the HTTP status to answer
        (503 draining, 429 queue full + Retry-After).
        """
        if not self._started:
            raise ServiceRejected("service not started", 503, "not_started")
        if self.drain_controller.draining or self._stopped:
            self._count("service.rejected.draining")
            raise ServiceRejected("service is draining", 503, "draining")
        context = RequestContext.new(request.request_id)
        bundle = build_bundle(request.system)
        fingerprint = request_fingerprint(bundle, request)
        cost = self._static_cost(request.system, bundle)
        entry = _Entry(
            request=request,
            fingerprint=fingerprint,
            pending=PendingResult(),
            admitted_at=self.clock(),
            context=context,
            cost=cost,
        )
        entry.pending.trace_id = context.trace_id
        with use_context(context):
            primary = self.dedup.admit(fingerprint, entry)
            if primary is not entry:
                self._count("service.coalesced")
                self.obs.event(
                    EVENT_COALESCED,
                    fingerprint=fingerprint,
                    primary_trace_id=(
                        primary.context.trace_id if primary.context else ""
                    ),
                )
                return primary.pending, True
            try:
                victim = self.queue.submit(entry, request.priority,
                                           cost=cost)
            except QueueFull:
                self.dedup.complete(fingerprint)
                self._count("service.rejected.queue_full")
                self.obs.event(
                    EVENT_REJECTED, reason="queue_full",
                    system=request.system, depth=self.queue.depth,
                    static_cost=round(cost, 4),
                )
                raise ServiceRejected(
                    "admission queue full", 429, "queue_full",
                    retry_after_s=self._retry_after_s(cost),
                ) from None
            except QueueClosed:
                self.dedup.complete(fingerprint)
                self._count("service.rejected.draining")
                self.obs.event(EVENT_REJECTED, reason="draining",
                               system=request.system)
                raise ServiceRejected(
                    "service is draining", 503, "draining"
                ) from None
            self._count("service.admitted")
            self._gauge("service.queue_depth", self.queue.depth)
            self.obs.event(
                EVENT_ADMITTED,
                system=request.system,
                strategy=request.strategy,
                priority=request.priority,
                depth=self.queue.depth,
                static_cost=round(cost, 4),
            )
            if victim is not None:
                self._finish_shed(victim)
        return entry.pending, False

    def _static_cost(self, system: str, bundle: Any) -> float:
        """Static admission weight of one request, cached per system.

        The weight is :attr:`repro.lint.cost.CostReport.cost_units` —
        a pure function of the design, so it is computed once.  Falls
        back to the neutral weight 1.0 when the analysis fails:
        admission *pricing* must never refuse work the estimator could
        still run.
        """
        with self._lock:
            cached = self._static_costs.get(system)
        if cached is not None:
            return cached
        try:
            from repro.lint.cost import compute_cost_report

            cost = compute_cost_report(bundle.network).cost_units
        except Exception:
            cost = 1.0
        with self._lock:
            self._static_costs[system] = cost
        return cost

    def _retry_after_s(self, incoming_cost: float = 0.0) -> int:
        """Retry-After quote from the *statically priced* backlog.

        The backlog is summed in cost units (queued + in flight + the
        refused request's own weight) and converted to seconds by the
        learned per-unit rate, divided across the workers — so a
        heavyweight design is quoted a longer back-off than a light
        one against the same queue.
        """
        with self._lock:
            rate = (self._seconds_per_cost_unit
                    or DEFAULT_SECONDS_PER_COST_UNIT)
            in_flight_cost = self._in_flight_cost
        backlog = self.queue.queued_cost + in_flight_cost + incoming_cost
        estimate = backlog * rate / max(1, self.config.workers)
        return max(1, int(estimate + 0.999))

    def _finish_shed(self, victim: _Entry) -> None:
        with self._lock:
            self._shed += 1
        self._count("service.shed")
        self.dedup.complete(victim.fingerprint)
        self._resolve(
            victim,
            503,
            {
                "status": "rejected",
                "reason": "load_shed",
                "request_id": victim.request.request_id,
                "detail": "shed for a higher-priority request under "
                          "queue pressure",
            },
            headers={"Retry-After": str(self._retry_after_s(victim.cost))},
            event=EVENT_SHED,
        )

    def _resolve(self, entry: _Entry, status: int, body: Dict[str, Any],
                 headers: Optional[Dict[str, str]] = None,
                 event: Optional[str] = None, **event_fields: Any) -> None:
        """Terminal-outcome funnel: every response goes through here.

        One call site per outcome keeps the observability contract
        honest — the trace id lands on the response, the SLO tracker
        and latency histogram see every terminal status, the lifecycle
        event is recorded under the request's context, and any
        server-side failure (5xx) triggers a flight-recorder dump.
        """
        headers = dict(headers or {})
        if entry.context is not None:
            headers.setdefault("X-Trace-Id", entry.context.trace_id)
        entry.pending.resolve(status, body, headers)
        latency_s = self.clock() - entry.admitted_at
        self.obs.record_outcome(status, latency_s)
        with use_context(entry.context):
            if event is not None:
                self.obs.event(
                    event, status=status,
                    latency_s=round(latency_s, 6), **event_fields
                )
            # 503 is routine backpressure (shed / draining) — not a
            # postmortem; the drain path writes its own single dump.
            if status >= 500 and status != 503:
                self.obs.dump_flight(str(body.get("reason") or status))

    # -- execution ------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            entry = self.queue.take(timeout=0.1)
            if entry is None:
                if self.queue.closed or self._stopped:
                    return
                continue
            with self._lock:
                self._in_flight += 1
                self._in_flight_cost += entry.cost
            try:
                self._execute(entry)
            finally:
                self.dedup.complete(entry.fingerprint)
                with self._lock:
                    self._in_flight -= 1
                    self._in_flight_cost -= entry.cost
                self._gauge("service.queue_depth", self.queue.depth)

    def _execute(self, entry: _Entry) -> None:
        # The whole execution runs under the request's trace context and
        # with the obs bundle as the event sink, so spans, log lines and
        # supervisor events (fallbacks, breaker trips) all correlate.
        with use_context(entry.context), use_event_sink(self.obs.sink):
            self._execute_in_context(entry)

    def _execute_in_context(self, entry: _Entry) -> None:
        request = entry.request
        queue_wait = self.clock() - entry.admitted_at
        self._observe("service.queue_wait_seconds", queue_wait)
        remaining = request.deadline_s - queue_wait
        if remaining <= 0:
            with self._lock:
                self._expired += 1
            self._count("service.deadline_expired")
            self._resolve(
                entry,
                504,
                {
                    "status": "error",
                    "reason": "deadline_exceeded",
                    "request_id": request.request_id,
                    "detail": "deadline of %.3fs expired after %.3fs in "
                              "the queue" % (request.deadline_s, queue_wait),
                },
                event=EVENT_DEADLINE_EXPIRED,
                queue_seconds=round(queue_wait, 6),
            )
            return
        watchdog_s = remaining
        if self.config.call_watchdog_s is not None:
            watchdog_s = min(watchdog_s, self.config.call_watchdog_s)
        resilience = ResilienceConfig(
            fault_plan=request.fault_plan,
            watchdog_s=watchdog_s,
            max_retries=request.fault_retries,
            breaker_registry=self.breakers.scoped(request.system),
        )
        builder, builder_kwargs = builder_spec(request.system)
        spec = JobSpec(
            fn="repro.parallel.runners:run_estimate",
            payload={
                "builder": builder,
                "builder_kwargs": dict(builder_kwargs),
                "strategy": request.strategy,
                "label": "%s/%s" % (request.system, request.strategy),
                "resilience": resilience,
            },
            label=request.request_id,
            seed=job_seed(0, request.system),
            collect_telemetry=self.telemetry.enabled,
            trace=(
                entry.context.to_payload()
                if entry.context is not None else None
            ),
        )
        from repro.parallel.pool import execute_spec

        self.obs.event(
            EVENT_DISPATCHED,
            system=request.system,
            strategy=request.strategy,
            queue_seconds=round(queue_wait, 6),
            deadline_remaining_s=round(remaining, 6),
        )
        started = self.clock()
        run_span = self.telemetry.tracer.span(
            "service.execute",
            track="service",
            args=dict(
                entry.context.trace_args() if entry.context else {},
                system=request.system,
            ),
        )
        try:
            # Outer backstop only: the in-run watchdog already bounds
            # every low-level call at `watchdog_s` and degrades instead
            # of hanging, so this fires only if the master itself wedges.
            report, run_seconds, _, job_spans = call_with_watchdog(
                lambda: execute_spec(spec), remaining + 1.0
            )
        except WatchdogTimeout:
            with self._lock:
                self._expired += 1
            self._count("service.deadline_expired")
            self._resolve(
                entry,
                504,
                {
                    "status": "error",
                    "reason": "deadline_exceeded",
                    "request_id": request.request_id,
                    "detail": "run exceeded the %.3fs remaining deadline"
                              % remaining,
                },
                event=EVENT_DEADLINE_EXPIRED,
                detail="watchdog",
            )
            return
        except Exception as exc:
            with self._lock:
                self._failed += 1
            self._count("service.failed")
            self._resolve(
                entry,
                500,
                {
                    "status": "error",
                    "reason": "estimation_failed",
                    "request_id": request.request_id,
                    "detail": "%s: %s" % (type(exc).__name__, exc),
                },
                event=EVENT_FAILED,
                error="%s: %s" % (type(exc).__name__, exc),
            )
            return
        finally:
            run_span.close()
        if entry.context is not None and job_spans:
            self._remember_trace(entry.context.trace_id, job_spans)
        self._finish_ok(entry, report, queue_wait,
                        self.clock() - started, run_seconds)

    def _remember_trace(self, trace_id: str, spans: List[Tuple]) -> None:
        with self._lock:
            self._recent_traces[trace_id] = list(spans)
            while len(self._recent_traces) > self._recent_traces_cap:
                self._recent_traces.popitem(last=False)

    def trace_spans(self, trace_id: str) -> Optional[List[Tuple]]:
        """Worker-side span records of a recent request (None if gone)."""
        with self._lock:
            spans = self._recent_traces.get(trace_id)
            return list(spans) if spans is not None else None

    def _finish_ok(self, entry: _Entry, report: Any, queue_wait: float,
                   wall_s: float, run_seconds: float) -> None:
        import dataclasses

        degraded = any(
            count > 0
            for level, count in report.provenance.items()
            if level != "exact"
        )
        with self._lock:
            self._completed += 1
            self._avg_run_s = (
                wall_s if self._avg_run_s == 0.0
                else 0.8 * self._avg_run_s + 0.2 * wall_s
            )
            rate = wall_s / max(entry.cost, 1e-9)
            self._seconds_per_cost_unit = (
                rate if self._seconds_per_cost_unit == 0.0
                else 0.8 * self._seconds_per_cost_unit + 0.2 * rate
            )
            for level, count in report.provenance.items():
                self._provenance[level] = (
                    self._provenance.get(level, 0) + count
                )
            if degraded:
                self._degraded_responses += 1
        self._count("service.completed")
        if degraded:
            self._count("service.degraded_responses")
        self._observe("service.run_seconds", wall_s)
        for level, count in sorted(report.provenance.items()):
            if count > 0:
                self.obs.record_answer(entry.request.system, level, count)
        self._resolve(
            entry,
            200,
            {
                "status": "ok",
                "request_id": entry.request.request_id,
                "system": entry.request.system,
                "strategy": entry.request.strategy,
                "fingerprint": entry.fingerprint,
                "total_energy_j": report.total_energy_j,
                "provenance": dict(report.provenance),
                "by_provenance": dict(report.by_provenance),
                "degraded": degraded,
                "breakers": {
                    name: snap["state"]
                    for name, snap in self.breakers.snapshot().items()
                    if name.startswith(entry.request.system + ":")
                },
                "queue_seconds": queue_wait,
                "run_seconds": run_seconds,
                "report": dataclasses.asdict(report),
            },
            event=EVENT_COMPLETED,
            system=entry.request.system,
            degraded=degraded,
            run_seconds=round(run_seconds, 6),
        )

    # -- drain ----------------------------------------------------------

    def drain(self, reason: str = "requested",
              timeout_s: Optional[float] = None) -> DrainReport:
        """Stop admitting, finish or checkpoint the backlog, stop workers.

        Idempotent with respect to the admission state; returns the
        :class:`DrainReport` the CLI prints before exiting 0.
        """
        self.drain_controller.request_drain(reason)
        self.obs.event(EVENT_DRAIN_STEP, step="requested", reason=reason)
        timeout = (self.config.drain_timeout_s
                   if timeout_s is None else timeout_s)
        deadline = self.clock() + timeout
        while self.clock() < deadline:
            with self._lock:
                busy = self._in_flight
            if self.queue.depth == 0 and busy == 0:
                break
            time.sleep(0.02)
        self.queue.close()
        self.obs.event(EVENT_DRAIN_STEP, step="queue_closed",
                       depth=self.queue.depth)
        leftovers: List[_Entry] = self.queue.drain_remaining()
        join_deadline = max(0.0, deadline - self.clock()) + 1.0
        for thread in self._threads:
            thread.join(join_deadline)
        self._stopped = True
        with self._lock:
            abandoned = self._in_flight
            completed = self._completed
        report = DrainReport(
            reason=self.drain_controller.reason or reason,
            drained_clean=(not leftovers and abandoned == 0),
            completed=completed,
            checkpointed=len(leftovers),
            abandoned_in_flight=abandoned,
            checkpoint_path=self.config.checkpoint_path,
        )
        if self.config.checkpoint_path is not None:
            write_drain_checkpoint(
                self.config.checkpoint_path,
                [entry.request.to_payload() for entry in leftovers],
                meta={
                    "reason": report.reason,
                    "completed": completed,
                    "abandoned_in_flight": abandoned,
                },
            )
        for entry in leftovers:
            self.dedup.complete(entry.fingerprint)
            self._resolve(
                entry,
                503,
                {
                    "status": "rejected",
                    "reason": "draining",
                    "request_id": entry.request.request_id,
                    "checkpointed": self.config.checkpoint_path is not None,
                },
                headers={"Retry-After": "30"},
                event=EVENT_REJECTED,
                reason="draining",
            )
        self._gauge("service.queue_depth", 0)
        self.obs.event(
            EVENT_DRAIN_STEP,
            step="finished",
            clean=report.drained_clean,
            completed=report.completed,
            checkpointed=report.checkpointed,
            abandoned=report.abandoned_in_flight,
        )
        self.obs.dump_flight("drain")
        return report

    # -- observability --------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Any]:
        """The /stats document (also the programmatic dashboard view)."""
        with self._lock:
            service = {
                "state": ("draining" if self.drain_controller.draining
                          else "ready" if self.ready else "stopped"),
                "workers": self.config.workers,
                "in_flight": self._in_flight,
                "completed": self._completed,
                "failed": self._failed,
                "deadline_expired": self._expired,
                "shed": self._shed,
                "degraded_responses": self._degraded_responses,
                "avg_run_seconds": self._avg_run_s,
            }
            admission = {
                "in_flight_cost": round(self._in_flight_cost, 4),
                "seconds_per_cost_unit": self._seconds_per_cost_unit,
                "static_costs": {
                    name: round(cost, 4)
                    for name, cost in sorted(self._static_costs.items())
                },
            }
            provenance = dict(self._provenance)
        admission["queued_cost"] = round(self.queue.queued_cost, 4)
        self._refresh_admission_gauges()
        self._gauge("service.queue_depth", self.queue.depth)
        self._gauge("service.breakers_open", self.breakers.open_count())
        self.obs.sync_breaker_states(self.breakers.states())
        self.obs.publish()
        recorder = self.obs.recorder
        return {
            "service": service,
            "admission": admission,
            "queue": self.queue.snapshot(),
            "dedup": self.dedup.snapshot(),
            "breakers": self.breakers.snapshot(),
            "breaker_states": self.breakers.states(),
            "provenance": provenance,
            "slo": self.obs.slo.snapshot(),
            "flight_recorder": {
                "capacity": recorder.capacity,
                "recorded": recorder.recorded,
                "dropped": recorder.dropped,
                "dumps": recorder.dumps,
                "dump_dir": self.config.flight_dump_dir,
            },
            "metrics": self.telemetry.metrics.snapshot(),
        }

    def metrics_exposition(self) -> str:
        """The Prometheus ``/metrics`` body (refreshes derived gauges)."""
        self._gauge("service.queue_depth", self.queue.depth)
        self._gauge("service.breakers_open", self.breakers.open_count())
        self._refresh_admission_gauges()
        self.obs.sync_breaker_states(self.breakers.states())
        return self.obs.render_metrics()

    def _refresh_admission_gauges(self) -> None:
        with self._lock:
            in_flight_cost = self._in_flight_cost
            rate = self._seconds_per_cost_unit
        self._gauge(METRIC_ADMISSION_STATIC_COST_QUEUED,
                    self.queue.queued_cost)
        self._gauge(METRIC_ADMISSION_STATIC_COST_IN_FLIGHT, in_flight_cost)
        self._gauge(METRIC_ADMISSION_STATIC_COST_SECONDS_PER_UNIT, rate)

    def _count(self, name: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(name).inc()

    def _gauge(self, name: str, value: float) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.gauge(name).set(value)

    def _observe(self, name: str, value: float) -> None:
        if self.telemetry.enabled:
            self.telemetry.metrics.histogram(name).observe(value)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that carries the service reference."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 service: CoEstimationService,
                 quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(JsonRequestHandler):
    #: Grace added to a request's deadline while the handler waits for
    #: its pending result; drain always resolves earlier.
    WAIT_GRACE_S = 5.0

    KNOWN_PATHS = (
        "/estimate", "/healthz", "/readyz", "/stats", "/metrics",
        "/debug/flightrecorder", "/debug/trace",
    )

    @property
    def service(self) -> CoEstimationService:
        return self.server.service  # type: ignore[attr-defined]

    def record_http(self, label: str, status: int) -> None:
        self.service.obs.record_http(label, status)

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self.respond_json(200, {
                "status": "alive",
                "draining": self.service.drain_controller.draining,
            })
        elif self.path == "/readyz":
            if self.service.ready:
                self.respond_json(200, {"status": "ready"})
            else:
                reason = ("draining" if self.service.drain_controller.draining
                          else "not_started")
                self.respond_json(503, {"status": reason})
        elif self.path == "/stats":
            self.respond_json(200, self.service.stats_snapshot())
        elif self.path == "/metrics":
            self.respond_text(200, self.service.metrics_exposition())
        elif self.path == "/debug/flightrecorder":
            self.respond_json(200, self.service.obs.recorder.snapshot())
        elif self.path.startswith("/debug/trace/"):
            trace_id = self.path[len("/debug/trace/"):]
            spans = self.service.trace_spans(trace_id)
            if spans is None:
                self.respond_json(404, {
                    "status": "error",
                    "reason": "no recent trace %s" % trace_id,
                })
            else:
                self.respond_json(200, {
                    "trace_id": trace_id,
                    "spans": [list(span) for span in spans],
                })
        else:
            self.respond_json(404, {"status": "error",
                                "reason": "unknown path %s" % self.path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path != "/estimate":
            self.respond_json(404, {"status": "error",
                                "reason": "unknown path %s" % self.path})
            return
        body = self.read_json_body()
        if body is None:
            return
        try:
            request = parse_request(
                body,
                known_systems=system_names(),
                default_deadline_s=self.service.config.default_deadline_s,
            )
        except BadRequest as exc:
            self.respond_json(400, {"status": "error", "reason": str(exc)})
            return
        try:
            pending, coalesced = self.service.submit(request)
        except ServiceRejected as exc:
            headers = {}
            if exc.retry_after_s is not None:
                headers["Retry-After"] = str(exc.retry_after_s)
            self.respond_json(exc.status, {
                "status": "rejected",
                "reason": exc.reason,
                "request_id": request.request_id,
            }, headers)
            return
        if not pending.wait(request.deadline_s + self.WAIT_GRACE_S):
            self.respond_json(504, {
                "status": "error",
                "reason": "deadline_exceeded",
                "request_id": request.request_id,
            })
            return
        body = dict(pending.body)
        if coalesced:
            body["coalesced"] = True
        self.respond_json(pending.status, body, pending.headers)


def run_server(
    host: str,
    port: int,
    config: Optional[ServiceConfig] = None,
    resume_path: Optional[str] = None,
    install_signals: bool = True,
    quiet: bool = False,
    ready_callback: Optional[
        Callable[["CoEstimationService", "ServiceHTTPServer"], None]
    ] = None,
) -> int:
    """Run the service until a drain is requested; returns the exit code.

    This is the body of ``repro serve``: start workers, optionally
    resume a drain checkpoint, serve HTTP, block until SIGTERM/SIGINT
    (or a programmatic ``drain_controller.request_drain``), then drain
    gracefully and exit 0.
    """
    service = CoEstimationService(config)
    service.start()
    if resume_path is not None:
        import os

        if os.path.exists(resume_path):
            resumed = service.resume_from_checkpoint(resume_path)
            if not quiet and resumed:
                print("resumed %d checkpointed request(s) from %s"
                      % (resumed, resume_path))
    httpd = ServiceHTTPServer((host, port), service, quiet=True)
    restore = None
    if install_signals:
        restore = install_drain_signals(service.drain_controller)
    serve_thread = threading.Thread(
        target=httpd.serve_forever, name="coest-http", daemon=True
    )
    serve_thread.start()
    if not quiet:
        print("co-estimation service listening on http://%s:%d "
              "(workers=%d queue=%d) — SIGTERM drains gracefully"
              % (host, httpd.server_address[1], service.config.workers,
                 service.config.queue_depth), flush=True)
    if ready_callback is not None:
        ready_callback(service, httpd)
    try:
        # Short-timeout polling keeps the main thread responsive to
        # signal handlers on every platform.
        while not service.drain_controller.wait(0.2):
            pass
    finally:
        # Drain BEFORE shutting the HTTP layer down: the drain resolves
        # every pending request (finished, checkpointed, or shed) and
        # the handler threads need a live server to deliver those final
        # responses to their clients.  New submissions are already
        # refused with 503 the instant the drain flag is set.
        report = service.drain()
        httpd.shutdown()
        httpd.server_close()
        if restore is not None:
            restore()
        if not quiet:
            print(report.summary(), flush=True)
    return 0

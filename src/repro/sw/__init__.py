"""Embedded-software substrate: the SPARCsim role.

This package implements everything the paper's software power
estimation path needs, from scratch:

* a SPARC-flavoured RISC instruction set (:mod:`repro.sw.isa`),
* a code generator that compiles CFSM transition s-graphs into
  instruction sequences, one entry point per transition
  (:mod:`repro.sw.codegen`),
* an instruction set simulator with a pipeline timing model —
  load-use interlocks, delayed branches, multi-cycle multiply/divide,
  pipeline fill — (:mod:`repro.sw.iss`), and
* a measurement-style instruction-level power model in the spirit of
  Tiwari et al. (:mod:`repro.sw.power_model`).

Like the paper's enhanced ISS, :class:`repro.sw.iss.Iss` reports both
clock-cycle and energy statistics each time the simulation master
invokes it for one CFSM transition, and it assumes 100% cache hits
(cache behaviour is modeled separately by :mod:`repro.cache`, fed
directly by the master).
"""

from repro.sw.isa import Instruction, InstructionClass, Opcode
from repro.sw.program import Program, ProgramBuilder
from repro.sw.power_model import InstructionPowerModel
from repro.sw.codegen import CodeGenerator, MemoryMap, compile_cfsm
from repro.sw.iss import Iss, IssResult

__all__ = [
    "Opcode",
    "Instruction",
    "InstructionClass",
    "Program",
    "ProgramBuilder",
    "InstructionPowerModel",
    "CodeGenerator",
    "MemoryMap",
    "compile_cfsm",
    "Iss",
    "IssResult",
]

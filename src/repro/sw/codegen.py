"""Compile CFSM transition s-graphs into instruction sequences.

This is the "SW synthesis + target compiler" stage of the paper's
Figure 2(a): each software-mapped CFSM becomes an object-code segment
with one entry point per transition.  The generated code mirrors what a
straightforward C compiler produces from POLIS output: every variable
lives in memory and is loaded/stored around each statement, tests use
compare-and-branch with NOP-filled delay slots, and counted loops keep
the trip counter in a dedicated register.

The simulation master writes the values of the triggering events into
per-event *mailbox* words before invoking the ISS, and event emissions
are stores to per-event memory-mapped doorbell/value words — the same
state/input-value/command exchange shown in Figure 2(b).

Register conventions:

* ``r8``–``r19``: expression temporaries (stack discipline),
* ``r20``–``r23``: loop trip counters, by nesting depth,
* ``r24``: doorbell scratch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional
from repro.errors import ReproError

from repro.cfsm.expr import BinaryOp, Const, EventValue, Expression, UnaryOp, Var
from repro.cfsm.model import Cfsm, Transition
from repro.cfsm.sgraph import (
    Assign,
    Emit,
    If,
    Loop,
    SGraph,
    SharedRead,
    SharedWrite,
    Statement,
)
from repro.sw.isa import Opcode
from repro.sw.program import Program, ProgramBuilder

TEMP_REGS = tuple(range(8, 20))
LOOP_REGS = (20, 21, 22, 23)
DOORBELL_REG = 24

#: Word address where the system's shared memory is mapped into the
#: embedded processor's address space.
SHARED_MEMORY_BASE = 0x8000

#: Inverted conditional branch per comparison operator: the branch is
#: taken when the comparison is FALSE (we branch around the then-block).
_INVERTED_BRANCH = {
    "EQ": Opcode.BNE,
    "NE": Opcode.BE,
    "LT": Opcode.BGE,
    "LE": Opcode.BG,
    "GT": Opcode.BLE,
    "GE": Opcode.BL,
}

#: Direct conditional branch per comparison operator.
_DIRECT_BRANCH = {
    "EQ": Opcode.BE,
    "NE": Opcode.BNE,
    "LT": Opcode.BL,
    "LE": Opcode.BLE,
    "GT": Opcode.BG,
    "GE": Opcode.BGE,
}


class CodegenError(ReproError):
    """Raised when an s-graph cannot be compiled (e.g. too deep)."""


@dataclass
class MemoryMap:
    """Data-segment layout for one software CFSM.

    Word addresses are assigned in a deterministic order: variables
    first (sorted), then input-event mailboxes, then output-event value
    and doorbell words.
    """

    base: int = 0
    variables: Dict[str, int] = field(default_factory=dict)
    event_mailboxes: Dict[str, int] = field(default_factory=dict)
    emit_values: Dict[str, int] = field(default_factory=dict)
    emit_doorbells: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def for_cfsm(cls, cfsm: Cfsm, base: int = 0) -> "MemoryMap":
        """Lay out the data segment of ``cfsm`` starting at ``base``."""
        layout = cls(base=base)
        address = base
        for name in sorted(cfsm.variables):
            layout.variables[name] = address
            address += 1
        for name in sorted(cfsm.inputs):
            layout.event_mailboxes[name] = address
            address += 1
        for name in sorted(cfsm.outputs):
            layout.emit_values[name] = address
            address += 1
            layout.emit_doorbells[name] = address
            address += 1
        return layout

    @property
    def size_words(self) -> int:
        """Total data-segment size in words."""
        return (
            len(self.variables)
            + len(self.event_mailboxes)
            + len(self.emit_values)
            + len(self.emit_doorbells)
        )

    def variable_address(self, name: str) -> int:
        if name not in self.variables:
            raise KeyError("variable %r has no address" % name)
        return self.variables[name]

    def mailbox_address(self, event: str) -> int:
        if event not in self.event_mailboxes:
            raise KeyError("input event %r has no mailbox" % event)
        return self.event_mailboxes[event]


def transition_label(cfsm_name: str, transition_name: str) -> str:
    """Entry-point label for one transition."""
    return "%s__%s" % (cfsm_name, transition_name)


@dataclass
class CompiledCfsm:
    """Object code plus layout for one software CFSM."""

    cfsm: Cfsm
    program: Program
    memory_map: MemoryMap

    def entry_for(self, transition: Transition) -> int:
        """Instruction index of ``transition``'s entry point."""
        return self.program.entry(transition_label(self.cfsm.name, transition.name))


class CodeGenerator:
    """Compiles one CFSM into a :class:`CompiledCfsm`."""

    def __init__(self, cfsm: Cfsm, memory_base: int = 0) -> None:
        self.cfsm = cfsm
        self.memory_map = MemoryMap.for_cfsm(cfsm, base=memory_base)
        self._builder = ProgramBuilder()
        self._free_temps: List[int] = []
        self._loop_depth = 0
        # Variables pre-loaded into pinned registers for the duration
        # of one rooted expression (redundant-load elimination).
        self._pinned_vars: Dict[str, int] = {}

    def compile(self) -> CompiledCfsm:
        """Generate code for every transition."""
        for transition in self.cfsm.transitions:
            self._builder.label(transition_label(self.cfsm.name, transition.name))
            self._free_temps = list(TEMP_REGS)
            self._loop_depth = 0
            self._compile_block(transition.body.statements)
            self._builder.ret()
        return CompiledCfsm(self.cfsm, self._builder.build(), self.memory_map)

    # -- statement compilation ---------------------------------------------

    def _compile_block(self, statements: List[Statement]) -> None:
        for statement in statements:
            self._compile_statement(statement)

    def _compile_statement(self, statement: Statement) -> None:
        if isinstance(statement, Assign):
            reg = self._compile_rooted(statement.value)
            self._builder.store(reg, 0, self.memory_map.variable_address(statement.target))
            self._free(reg)
        elif isinstance(statement, Emit):
            if statement.value is not None:
                reg = self._compile_rooted(statement.value)
            else:
                reg = 0
            self._builder.store(reg, 0, self.memory_map.emit_values[statement.event])
            if reg:
                self._free(reg)
            self._builder.seti(DOORBELL_REG, 1)
            self._builder.store(
                DOORBELL_REG, 0, self.memory_map.emit_doorbells[statement.event]
            )
        elif isinstance(statement, If):
            self._compile_if(statement)
        elif isinstance(statement, Loop):
            self._compile_loop(statement)
        elif isinstance(statement, SharedRead):
            address = self._compile_rooted(statement.address)
            value = self._alloc()
            self._builder.load(value, address, SHARED_MEMORY_BASE)
            self._builder.store(
                value, 0, self.memory_map.variable_address(statement.target)
            )
            self._free(value)
            self._free(address)
        elif isinstance(statement, SharedWrite):
            address = self._compile_rooted(statement.address)
            value = self._compile_rooted(statement.value)
            self._builder.store(value, address, SHARED_MEMORY_BASE)
            self._free(value)
            self._free(address)
        else:
            raise CodegenError("cannot compile statement %r" % statement)

    def _compile_if(self, statement: If) -> None:
        else_label = self._builder.fresh_label("else")
        end_label = self._builder.fresh_label("endif")
        self._compile_condition_branch(statement.cond, branch_to=else_label, on_false=True)
        self._compile_block(statement.then)
        if statement.els:
            self._builder.branch(Opcode.BA, end_label)
            self._builder.label(else_label)
            self._compile_block(statement.els)
            self._builder.label(end_label)
        else:
            self._builder.label(else_label)

    def _compile_loop(self, statement: Loop) -> None:
        if self._loop_depth >= len(LOOP_REGS):
            raise CodegenError("loop nesting exceeds %d levels" % len(LOOP_REGS))
        counter = LOOP_REGS[self._loop_depth]
        self._loop_depth += 1
        reg = self._compile_rooted(statement.count)
        self._builder.mov(counter, reg)
        self._free(reg)
        top_label = self._builder.fresh_label("loop")
        exit_label = self._builder.fresh_label("loopend")
        self._builder.label(top_label)
        self._builder.cmp(counter, imm=0)
        self._builder.branch(Opcode.BLE, exit_label)
        self._compile_block(statement.body)
        self._builder.alu(Opcode.SUB, counter, counter, imm=1)
        self._builder.branch(Opcode.BA, top_label)
        self._builder.label(exit_label)
        self._loop_depth -= 1

    def _compile_condition_branch(
        self, cond: Expression, branch_to: str, on_false: bool
    ) -> None:
        """Branch to ``branch_to`` based on ``cond``.

        Comparisons compile directly to CMP + conditional branch; other
        expressions are materialized and compared against zero.
        """
        pinned_here = []
        counts = {}
        for name in cond.variables():
            counts[name] = counts.get(name, 0) + 1
        for name, count in counts.items():
            if count >= 2 and name not in self._pinned_vars:
                register = self._alloc()
                self._builder.load(
                    register, 0, self.memory_map.variable_address(name)
                )
                self._pinned_vars[name] = register
                pinned_here.append(name)
        if isinstance(cond, BinaryOp) and cond.op in _INVERTED_BRANCH:
            left = self._compile_expr(cond.left)
            right = self._compile_expr(cond.right)
            self._builder.cmp(left, rs2=right)
            self._free(right)
            self._free(left)
            table = _INVERTED_BRANCH if on_false else _DIRECT_BRANCH
            self._builder.branch(table[cond.op], branch_to)
        else:
            reg = self._compile_expr(cond)
            self._builder.cmp(reg, imm=0)
            self._free(reg)
            self._builder.branch(Opcode.BE if on_false else Opcode.BNE, branch_to)
        for name in pinned_here:
            register = self._pinned_vars.pop(name)
            self._free(register)

    # -- expression compilation ---------------------------------------------

    def _alloc(self) -> int:
        if not self._free_temps:
            raise CodegenError(
                "expression too deep for the temporary register pool"
            )
        return self._free_temps.pop()

    def _free(self, reg: int) -> None:
        if reg in self._pinned_vars.values():
            return
        if reg in TEMP_REGS and reg not in self._free_temps:
            self._free_temps.append(reg)

    def _compile_rooted(self, expression: Expression) -> int:
        """Compile a statement-level expression with load reuse.

        Variables read more than once inside one rooted expression are
        loaded into a pinned register up front and shared by every
        read, the way even a mildly optimizing compiler would.  Pins
        last only for this expression: any later statement may have
        stored to the variable, so the pin cannot safely outlive it.
        """
        pinned_here: List[str] = []
        counts: Dict[str, int] = {}
        for name in expression.variables():
            counts[name] = counts.get(name, 0) + 1
        for name, count in counts.items():
            if count >= 2 and name not in self._pinned_vars:
                register = self._alloc()
                self._builder.load(
                    register, 0, self.memory_map.variable_address(name)
                )
                self._pinned_vars[name] = register
                pinned_here.append(name)
        result = self._compile_expr(expression)
        for name in pinned_here:
            register = self._pinned_vars.pop(name)
            self._free(register)
        return result

    def _compile_expr(self, expression: Expression) -> int:
        """Compile ``expression``; returns the register holding it."""
        if isinstance(expression, Const):
            reg = self._alloc()
            self._builder.seti(reg, expression.value)
            return reg
        if isinstance(expression, Var):
            pinned = self._pinned_vars.get(expression.name)
            if pinned is not None:
                return pinned
            reg = self._alloc()
            address = self.memory_map.variable_address(expression.name)
            self._builder.load(reg, 0, address)
            return reg
        if isinstance(expression, EventValue):
            reg = self._alloc()
            address = self.memory_map.mailbox_address(expression.event)
            self._builder.load(reg, 0, address)
            return reg
        if isinstance(expression, UnaryOp):
            return self._compile_unary(expression)
        if isinstance(expression, BinaryOp):
            return self._compile_binary(expression)
        raise CodegenError("cannot compile expression %r" % expression)

    def _compile_unary(self, expression: UnaryOp) -> int:
        operand = self._compile_expr(expression.operand)
        result = self._alloc()
        if expression.op == "NEG":
            self._builder.alu(Opcode.SUB, result, 0, rs2=operand)
        elif expression.op == "BNOT":
            self._builder.alu(Opcode.XOR, result, operand, imm=-1)
        elif expression.op == "NOT":
            self._materialize_comparison(Opcode.BE, operand, None, 0, result)
        else:
            raise CodegenError("cannot compile unary op %r" % expression.op)
        self._free(operand)
        return result

    _SIMPLE_ALU = {
        "ADD": Opcode.ADD,
        "SUB": Opcode.SUB,
        "AND": Opcode.AND,
        "OR": Opcode.OR,
        "XOR": Opcode.XOR,
        "SHL": Opcode.SLL,
        "SHR": Opcode.SRL,
        "MUL": Opcode.SMUL,
        "DIV": Opcode.SDIV,
    }

    def _compile_binary(self, expression: BinaryOp) -> int:
        left = self._compile_expr(expression.left)
        right = self._compile_expr(expression.right)
        result = self._alloc()
        op = expression.op
        if op in self._SIMPLE_ALU:
            self._builder.alu(self._SIMPLE_ALU[op], result, left, rs2=right)
        elif op == "MOD":
            # a - trunc(a / b) * b, sharing SDIV's divide-by-zero rule.
            self._builder.alu(Opcode.SDIV, result, left, rs2=right)
            self._builder.alu(Opcode.SMUL, result, result, rs2=right)
            self._builder.alu(Opcode.SUB, result, left, rs2=result)
        elif op in _DIRECT_BRANCH:
            self._materialize_comparison(_DIRECT_BRANCH[op], left, right, None, result)
        elif op in ("LAND", "LOR"):
            left_bool = self._alloc()
            right_bool = self._alloc()
            self._materialize_comparison(Opcode.BNE, left, None, 0, left_bool)
            self._materialize_comparison(Opcode.BNE, right, None, 0, right_bool)
            machine_op = Opcode.AND if op == "LAND" else Opcode.OR
            self._builder.alu(machine_op, result, left_bool, rs2=right_bool)
            self._free(right_bool)
            self._free(left_bool)
        else:
            raise CodegenError("cannot compile binary op %r" % op)
        self._free(right)
        self._free(left)
        return result

    def _materialize_comparison(
        self,
        branch_op: str,
        rs1: int,
        rs2: Optional[int],
        imm: Optional[int],
        result: int,
    ) -> None:
        """Set ``result`` to 1 when the comparison branch is taken."""
        true_label = self._builder.fresh_label("cmpt")
        end_label = self._builder.fresh_label("cmpe")
        self._builder.cmp(rs1, rs2=rs2, imm=imm)
        self._builder.branch(branch_op, true_label)
        self._builder.seti(result, 0)
        self._builder.branch(Opcode.BA, end_label)
        self._builder.label(true_label)
        self._builder.seti(result, 1)
        self._builder.label(end_label)


def compile_cfsm(cfsm: Cfsm, memory_base: int = 0) -> CompiledCfsm:
    """Compile ``cfsm`` into object code with a data-segment layout."""
    return CodeGenerator(cfsm, memory_base=memory_base).compile()


#: Compilation results keyed by (CFSM structure, memory base) digest.
#: Code generation is a pure function of both, and the simulation
#: master compiles every software process afresh for every design
#: point; the compiled program and memory map are immutable, so they
#: are shared across masters (run-time state — registers, data memory —
#: lives in each Iss / master).
_CODEGEN_CACHE: "OrderedDict[str, CompiledCfsm]" = OrderedDict()

_CODEGEN_CACHE_CAPACITY = 128


class CodegenCacheStats:
    """Process-wide hit/miss accounting for the codegen cache."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


CODEGEN_CACHE_STATS = CodegenCacheStats()


def clear_codegen_cache() -> None:
    """Drop all cached compilation results (tests and benchmarks)."""
    _CODEGEN_CACHE.clear()
    CODEGEN_CACHE_STATS.reset()


def compile_cfsm_cached(cfsm: Cfsm, memory_base: int = 0) -> CompiledCfsm:
    """Like :func:`compile_cfsm`, via the process-wide cache."""
    from repro.cfsm.fingerprint import cfsm_digest

    key = cfsm_digest(cfsm, memory_base)
    compiled = _CODEGEN_CACHE.get(key)
    if compiled is not None:
        _CODEGEN_CACHE.move_to_end(key)
        CODEGEN_CACHE_STATS.hits += 1
        return compiled
    CODEGEN_CACHE_STATS.misses += 1
    compiled = compile_cfsm(cfsm, memory_base=memory_base)
    _CODEGEN_CACHE[key] = compiled
    if len(_CODEGEN_CACHE) > _CODEGEN_CACHE_CAPACITY:
        _CODEGEN_CACHE.popitem(last=False)
        CODEGEN_CACHE_STATS.evictions += 1
    return compiled

"""A SPARC-flavoured RISC instruction set.

The ISA is deliberately close to the integer subset of SPARC (the
paper's target was a SPARClite): 32 general-purpose registers with
``r0`` hardwired to zero, three-operand ALU instructions with either a
register or an immediate second operand, load/store with base+offset
addressing, compare-and-branch through condition codes, and *delayed*
branches (the instruction in the delay slot executes before control
transfers).

Deviations from real SPARC, documented for reviewers:

* no register windows — CALL/RET use a simulator-internal return stack
  (the generated code is leaf-heavy, so windows would add nothing),
* SETI synthesizes a full-width immediate in one instruction (standing
  in for the usual ``sethi``/``or`` pair; its timing cost is 1 cycle,
  matching the common case of small immediates),
* CALL/RET have no delay slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: Number of architectural registers; ``r0`` always reads as zero.
NUM_REGISTERS = 32


class Opcode:
    """Instruction mnemonics."""

    NOP = "NOP"
    SETI = "SETI"  # rd := imm
    MOV = "MOV"  # rd := rs1
    ADD = "ADD"
    SUB = "SUB"
    AND = "AND"
    OR = "OR"
    XOR = "XOR"
    SLL = "SLL"
    SRL = "SRL"
    SMUL = "SMUL"
    SDIV = "SDIV"
    CMP = "CMP"  # set condition codes from rs1 - rs2/imm
    BA = "BA"  # branch always
    BE = "BE"  # branch if equal
    BNE = "BNE"
    BL = "BL"  # branch if less (signed)
    BLE = "BLE"
    BG = "BG"
    BGE = "BGE"
    LD = "LD"  # rd := mem[rs1 + imm]
    ST = "ST"  # mem[rs1 + imm] := rd
    CALL = "CALL"
    RET = "RET"

    ALL = (
        NOP, SETI, MOV, ADD, SUB, AND, OR, XOR, SLL, SRL, SMUL, SDIV,
        CMP, BA, BE, BNE, BL, BLE, BG, BGE, LD, ST, CALL, RET,
    )

    BRANCHES = (BA, BE, BNE, BL, BLE, BG, BGE)
    ALU = (SETI, MOV, ADD, SUB, AND, OR, XOR, SLL, SRL, CMP)


class InstructionClass:
    """Instruction classes used by the power model and compaction.

    The Tiwari-style instruction-level power model assigns a base cost
    per class and an inter-instruction overhead per class pair; the
    statistical-sampling compactor preserves class unigram and bigram
    statistics.
    """

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    MUL = "mul"
    DIV = "div"
    CALL = "call"
    NOP = "nop"

    ALL = (ALU, LOAD, STORE, BRANCH, MUL, DIV, CALL, NOP)


_CLASS_OF: Dict[str, str] = {}
for _op in Opcode.ALU:
    _CLASS_OF[_op] = InstructionClass.ALU
for _op in Opcode.BRANCHES:
    _CLASS_OF[_op] = InstructionClass.BRANCH
_CLASS_OF[Opcode.LD] = InstructionClass.LOAD
_CLASS_OF[Opcode.ST] = InstructionClass.STORE
_CLASS_OF[Opcode.SMUL] = InstructionClass.MUL
_CLASS_OF[Opcode.SDIV] = InstructionClass.DIV
_CLASS_OF[Opcode.CALL] = InstructionClass.CALL
_CLASS_OF[Opcode.RET] = InstructionClass.CALL
_CLASS_OF[Opcode.NOP] = InstructionClass.NOP


def class_of(opcode: str) -> str:
    """Instruction class of ``opcode``."""
    return _CLASS_OF[opcode]


#: Base execution cycles per opcode (load-use stalls and branch delay
#: slots are charged separately by the ISS).
BASE_CYCLES: Dict[str, int] = {}
for _op in Opcode.ALL:
    BASE_CYCLES[_op] = 1
BASE_CYCLES[Opcode.SMUL] = 4
BASE_CYCLES[Opcode.SDIV] = 12
BASE_CYCLES[Opcode.CALL] = 2
BASE_CYCLES[Opcode.RET] = 1


@dataclass(frozen=True)
class Instruction:
    """One machine instruction.

    Exactly one of ``rs2`` / ``imm`` is meaningful for three-operand
    forms; ``target`` names the label of branch/call destinations.
    ``LD``/``ST`` use ``rs1 + imm`` addressing with ``rd`` as the data
    register.
    """

    op: str
    rd: int = 0
    rs1: int = 0
    rs2: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in Opcode.ALL:
            raise ValueError("unknown opcode %r" % self.op)
        for reg in (self.rd, self.rs1):
            if not 0 <= reg < NUM_REGISTERS:
                raise ValueError("register out of range: r%d" % reg)
        if self.rs2 is not None and not 0 <= self.rs2 < NUM_REGISTERS:
            raise ValueError("register out of range: r%d" % self.rs2)
        if self.op in Opcode.BRANCHES or self.op == Opcode.CALL:
            if self.target is None:
                raise ValueError("%s requires a target label" % self.op)

    @property
    def instruction_class(self) -> str:
        """Power-model class of this instruction."""
        return class_of(self.op)

    @property
    def is_branch(self) -> bool:
        return self.op in Opcode.BRANCHES

    def reads(self) -> Tuple[int, ...]:
        """Registers this instruction reads (excluding r0)."""
        regs = []
        if self.op in (Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.AND,
                       Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
                       Opcode.SMUL, Opcode.SDIV, Opcode.CMP, Opcode.LD):
            regs.append(self.rs1)
            if self.rs2 is not None:
                regs.append(self.rs2)
        elif self.op == Opcode.ST:
            regs.append(self.rd)
            regs.append(self.rs1)
        return tuple(reg for reg in regs if reg != 0)

    def writes(self) -> Optional[int]:
        """Destination register, or ``None``."""
        if self.op in (Opcode.SETI, Opcode.MOV, Opcode.ADD, Opcode.SUB,
                       Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL,
                       Opcode.SRL, Opcode.SMUL, Opcode.SDIV, Opcode.LD):
            return self.rd if self.rd != 0 else None
        return None

    def __repr__(self) -> str:
        if self.op == Opcode.NOP:
            return "nop"
        if self.op == Opcode.SETI:
            return "seti r%d, %d" % (self.rd, self.imm or 0)
        if self.op == Opcode.MOV:
            return "mov r%d, r%d" % (self.rd, self.rs1)
        if self.op in Opcode.BRANCHES:
            return "%s %s" % (self.op.lower(), self.target)
        if self.op == Opcode.CALL:
            return "call %s" % self.target
        if self.op == Opcode.RET:
            return "ret"
        if self.op == Opcode.LD:
            return "ld r%d, [r%d + %d]" % (self.rd, self.rs1, self.imm or 0)
        if self.op == Opcode.ST:
            return "st r%d, [r%d + %d]" % (self.rd, self.rs1, self.imm or 0)
        if self.op == Opcode.CMP:
            if self.rs2 is not None:
                return "cmp r%d, r%d" % (self.rs1, self.rs2)
            return "cmp r%d, %d" % (self.rs1, self.imm or 0)
        second = "r%d" % self.rs2 if self.rs2 is not None else str(self.imm or 0)
        return "%s r%d, r%d, %s" % (self.op.lower(), self.rd, self.rs1, second)

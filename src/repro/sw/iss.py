"""Instruction set simulator with cycle and energy reporting.

The ISS plays the role of the paper's enhanced SPARCsim: it executes
object code produced by :mod:`repro.sw.codegen` and reports, for every
invocation, the clock cycles consumed and the energy drawn according to
an :class:`repro.sw.power_model.InstructionPowerModel`.

The timing model covers the effects the paper lists for SPARCsim:
register interlocks (a load immediately followed by a use of the loaded
register stalls one cycle), delayed branches (the delay-slot instruction
executes before control transfers), multi-cycle multiply/divide, and
pipeline fill at the start of every invocation.  Cache behaviour is
*not* modeled here — as in the paper, the ISS assumes 100% cache hits
and the cache simulator is attached directly to the simulation master.

The pipeline-fill cost is the mechanism behind the conservatism of
software macro-modeling measured in Table 2: macro-operation templates
are characterized standalone (each one pays the fill), while a real
path pays it only once, so the additive macro-model over-estimates.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, MutableMapping, Optional, Set, Tuple
from repro.errors import ReproError

from repro.cfsm.expr import _BINOP_FUNCS
from repro.sw.isa import BASE_CYCLES, Instruction, NUM_REGISTERS, Opcode, class_of
from repro.sw.power_model import InstructionPowerModel
from repro.sw.program import Program
from repro.telemetry import NULL_TELEMETRY, Telemetry

#: Cycles to refill the pipeline at every invocation entry.
PIPELINE_FILL_CYCLES = 1

#: Safety bound per invocation.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000

_ALU_SEMANTICS = {
    Opcode.ADD: _BINOP_FUNCS["ADD"],
    Opcode.SUB: _BINOP_FUNCS["SUB"],
    Opcode.AND: _BINOP_FUNCS["AND"],
    Opcode.OR: _BINOP_FUNCS["OR"],
    Opcode.XOR: _BINOP_FUNCS["XOR"],
    Opcode.SLL: _BINOP_FUNCS["SHL"],
    Opcode.SRL: _BINOP_FUNCS["SHR"],
    Opcode.SMUL: _BINOP_FUNCS["MUL"],
    Opcode.SDIV: _BINOP_FUNCS["DIV"],
}


# -- decode/dispatch cache ---------------------------------------------------
#
# The inner interpreter loop used to re-derive, for every retired
# instruction, its register read set, power-model class, base cycle
# count and opcode dispatch (a long if/elif chain).  All of that is a
# pure function of the instruction word, so it is decoded once per
# *program* and reused for every invocation — and, because design-space
# exploration recompiles identical CFSMs into structurally identical
# programs (one master per design point), decode tables are shared
# across Program instances through a process-wide table keyed by the
# instruction tuple (Instruction is a frozen, hashable dataclass).

_EXECUTE_ATTR = "_iss_decode_table"

_DECODE_CACHE: "OrderedDict[Tuple[Instruction, ...], List[tuple]]" = OrderedDict()

#: Bound on distinct programs kept decoded (LRU eviction).
_DECODE_CACHE_CAPACITY = 128


class DecodeCacheStats:
    """Process-wide hit/miss accounting for the ISS decode cache."""

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


DECODE_CACHE_STATS = DecodeCacheStats()


def clear_decode_cache() -> None:
    """Drop all shared decode tables (tests and benchmarks)."""
    _DECODE_CACHE.clear()
    DECODE_CACHE_STATS.reset()


def _exec_nop(iss: "Iss", instruction: Instruction,
              memory: MutableMapping[int, int], result: "IssResult") -> int:
    return 0


def _exec_seti(iss: "Iss", instruction: Instruction,
               memory: MutableMapping[int, int], result: "IssResult") -> int:
    value = instruction.imm or 0
    if instruction.rd != 0:
        iss.registers[instruction.rd] = value
    return value


def _exec_mov(iss: "Iss", instruction: Instruction,
              memory: MutableMapping[int, int], result: "IssResult") -> int:
    value = iss.registers[instruction.rs1]
    if instruction.rd != 0:
        iss.registers[instruction.rd] = value
    return value


def _make_alu_executor(func: Callable[[int, int], int]):
    def _exec_alu(iss: "Iss", instruction: Instruction,
                  memory: MutableMapping[int, int], result: "IssResult") -> int:
        registers = iss.registers
        if instruction.rs2 is not None:
            right = registers[instruction.rs2]
        else:
            right = instruction.imm or 0
        value = func(registers[instruction.rs1], right)
        if instruction.rd != 0:
            registers[instruction.rd] = value
        return value

    return _exec_alu


def _exec_cmp(iss: "Iss", instruction: Instruction,
              memory: MutableMapping[int, int], result: "IssResult") -> int:
    registers = iss.registers
    if instruction.rs2 is not None:
        right = registers[instruction.rs2]
    else:
        right = instruction.imm or 0
    left = registers[instruction.rs1]
    iss._flag_eq = left == right
    iss._flag_lt = left < right
    return int(iss._flag_lt) * 2 + int(iss._flag_eq)


def _exec_ld(iss: "Iss", instruction: Instruction,
             memory: MutableMapping[int, int], result: "IssResult") -> int:
    address = iss.registers[instruction.rs1] + (instruction.imm or 0)
    value = memory.get(address, 0)
    if instruction.rd != 0:
        iss.registers[instruction.rd] = value
    result.memory_reads.append(address)
    return value


def _exec_st(iss: "Iss", instruction: Instruction,
             memory: MutableMapping[int, int], result: "IssResult") -> int:
    address = iss.registers[instruction.rs1] + (instruction.imm or 0)
    value = iss.registers[instruction.rd]
    memory[address] = value
    result.memory_writes.append(address)
    return value


_EXECUTORS: Dict[str, Callable] = {
    Opcode.NOP: _exec_nop,
    Opcode.SETI: _exec_seti,
    Opcode.MOV: _exec_mov,
    Opcode.CMP: _exec_cmp,
    Opcode.LD: _exec_ld,
    Opcode.ST: _exec_st,
    Opcode.CALL: _exec_nop,
    Opcode.RET: _exec_nop,
}
for _op in Opcode.BRANCHES:
    _EXECUTORS[_op] = _exec_nop
for _op, _func in _ALU_SEMANTICS.items():
    _EXECUTORS[_op] = _make_alu_executor(_func)


def _decode_instruction(instruction: Instruction) -> tuple:
    """Precompute everything :meth:`Iss._retire` needs per instruction.

    Tuple layout: ``(reads, klass, cycles, load_rd, executor, is_branch)``.
    """
    op = instruction.op
    load_rd = instruction.rd if (op == Opcode.LD and instruction.rd != 0) else None
    return (
        instruction.reads(),
        class_of(op),
        BASE_CYCLES[op],
        load_rd,
        _EXECUTORS[op],
        op in Opcode.BRANCHES,
    )


def _decode_program(program: Program) -> List[tuple]:
    """Decode table for ``program``, shared through the process cache."""
    table = getattr(program, _EXECUTE_ATTR, None)
    if table is not None:
        DECODE_CACHE_STATS.hits += 1
        return table
    key = tuple(program.instructions)
    table = _DECODE_CACHE.get(key)
    if table is not None:
        _DECODE_CACHE.move_to_end(key)
        DECODE_CACHE_STATS.hits += 1
    else:
        DECODE_CACHE_STATS.misses += 1
        table = [_decode_instruction(instruction) for instruction in key]
        _DECODE_CACHE[key] = table
        if len(_DECODE_CACHE) > _DECODE_CACHE_CAPACITY:
            _DECODE_CACHE.popitem(last=False)
            DECODE_CACHE_STATS.evictions += 1
    try:
        setattr(program, _EXECUTE_ATTR, table)
    except AttributeError:  # pragma: no cover - exotic Program subclasses
        pass
    return table


class IssError(ReproError):
    """Raised on malformed executions (runaway loops, bad delay slots)."""


@dataclass
class IssResult:
    """Statistics returned for one ISS invocation."""

    cycles: int = 0
    energy: float = 0.0
    instruction_count: int = 0
    stall_cycles: int = 0
    branches_taken: int = 0
    class_counts: Dict[str, int] = field(default_factory=dict)
    memory_reads: List[int] = field(default_factory=list)
    memory_writes: List[int] = field(default_factory=list)
    executed: List[Instruction] = field(default_factory=list)
    stopped_at_breakpoint: Optional[str] = None


class Iss:
    """A pipelined instruction-set simulator.

    Registers persist across invocations (like a real core between
    RTOS dispatches); memory is owned by the caller and passed to
    :meth:`run`, mirroring the state/command exchange between the
    master and the ISS in the paper's Figure 2(b).
    """

    def __init__(
        self,
        program: Program,
        power_model: Optional[InstructionPowerModel] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        record_trace: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.program = program
        self.power_model = power_model or InstructionPowerModel.default_sparclite()
        self.max_instructions = max_instructions
        self.record_trace = record_trace
        self.telemetry = NULL_TELEMETRY if telemetry is None else telemetry
        self.registers = [0] * NUM_REGISTERS
        self._flag_eq = False
        self._flag_lt = False
        misses_before = DECODE_CACHE_STATS.misses
        self._decode = _decode_program(program)
        metrics = self.telemetry.metrics
        if DECODE_CACHE_STATS.misses == misses_before:
            metrics.counter("iss.decode_cache.hits").inc()
        else:
            metrics.counter("iss.decode_cache.misses").inc()

    # -- public API ---------------------------------------------------------

    def run(
        self,
        entry: str,
        memory: MutableMapping[int, int],
        breakpoints: Optional[Set[str]] = None,
    ) -> IssResult:
        """Execute from label ``entry`` until RET at call depth zero.

        Args:
            entry: entry-point label (one CFSM transition).
            memory: word-addressed data memory, updated in place.
            breakpoints: optional labels; execution stops *before* the
                first instruction of a breakpoint label is executed.

        Returns:
            Cycle/energy statistics for the invocation, including the
            pipeline-fill cost.
        """
        telemetry = self.telemetry
        if not telemetry.enabled:
            return self._run_program(entry, memory, breakpoints)
        with telemetry.tracer.span(
            "iss.run", track="iss", args={"entry": entry}
        ) as span:
            result = self._run_program(entry, memory, breakpoints)
            span.set("cycles", result.cycles)
            span.set("instructions", result.instruction_count)
        metrics = telemetry.metrics
        metrics.counter("iss.invocations").inc()
        metrics.counter("iss.instructions").inc(result.instruction_count)
        metrics.counter("iss.cycles").inc(result.cycles)
        return result

    def _run_program(
        self,
        entry: str,
        memory: MutableMapping[int, int],
        breakpoints: Optional[Set[str]] = None,
    ) -> IssResult:
        result = IssResult()
        result.cycles = PIPELINE_FILL_CYCLES
        result.energy = self.power_model.fill_energy(PIPELINE_FILL_CYCLES)
        break_indexes = {}
        if breakpoints:
            break_indexes = {
                self.program.entry(label): label for label in breakpoints
            }

        pc = self.program.entry(entry)
        return_stack: List[int] = []
        previous_class = ""
        pending_load_rd: Optional[int] = None
        instructions = self.program.instructions
        decode = self._decode

        while True:
            if result.instruction_count >= self.max_instructions:
                raise IssError(
                    "invocation exceeded %d instructions (runaway loop?)"
                    % self.max_instructions
                )
            if pc in break_indexes and result.instruction_count > 0:
                result.stopped_at_breakpoint = break_indexes[pc]
                break
            if not 0 <= pc < len(instructions):
                raise IssError("PC out of range: %d" % pc)

            instruction = instructions[pc]
            decoded = decode[pc]
            previous_class, pending_load_rd = self._retire(
                instruction, decoded, memory, result, previous_class, pending_load_rd
            )

            if decoded[5]:  # is_branch
                taken = self._branch_taken(instruction.op)
                if taken:
                    result.branches_taken += 1
                    delay_pc = pc + 1
                    if delay_pc < len(instructions):
                        delay_slot = instructions[delay_pc]
                        delay_decoded = decode[delay_pc]
                        if delay_decoded[5]:
                            raise IssError(
                                "branch in delay slot at index %d" % delay_pc
                            )
                        previous_class, pending_load_rd = self._retire(
                            delay_slot, delay_decoded, memory, result,
                            previous_class, pending_load_rd,
                        )
                    pc = self.program.resolve(instruction.target)
                else:
                    pc += 1
            elif instruction.op == Opcode.CALL:
                return_stack.append(pc + 1)
                pc = self.program.resolve(instruction.target)
            elif instruction.op == Opcode.RET:
                if not return_stack:
                    break
                pc = return_stack.pop()
            else:
                pc += 1
        return result

    def run_sequence(self, instructions: List[Instruction]) -> IssResult:
        """Straight-line timing/energy evaluation of an instruction list.

        Used by the sequence-compaction speedup technique: branches are
        charged their untaken cost and control flow is ignored, because
        compacted sequences are evaluated for their power, not their
        semantics.
        """
        result = IssResult()
        result.cycles = PIPELINE_FILL_CYCLES
        result.energy = self.power_model.fill_energy(PIPELINE_FILL_CYCLES)
        previous_class = ""
        pending_load_rd: Optional[int] = None
        scratch: Dict[int, int] = {}
        for instruction in instructions:
            if instruction.op in (Opcode.CALL, Opcode.RET):
                continue
            if instruction.is_branch:
                self._account(instruction, result, previous_class, 0, 0)
                previous_class = instruction.instruction_class
                pending_load_rd = None
                continue
            previous_class, pending_load_rd = self._retire(
                instruction, _decode_instruction(instruction), scratch, result,
                previous_class, pending_load_rd,
            )
        return result

    # -- execution core -------------------------------------------------------

    def _retire(
        self,
        instruction: Instruction,
        decoded: tuple,
        memory: MutableMapping[int, int],
        result: IssResult,
        previous_class: str,
        pending_load_rd: Optional[int],
    ) -> Tuple[str, Optional[int]]:
        """Execute one instruction, including hazard accounting.

        ``decoded`` is the precomputed tuple from
        :func:`_decode_instruction`; it carries the read set, class,
        base cycles, load destination and executor so the hot loop does
        no per-retire re-derivation.
        """
        reads, klass, cycles, load_rd, executor, _ = decoded
        stall = 0
        if pending_load_rd is not None and pending_load_rd in reads:
            stall = 1
            result.stall_cycles += 1
        value = executor(self, instruction, memory, result)
        result.cycles += cycles + stall
        result.instruction_count += 1
        result.class_counts[klass] = result.class_counts.get(klass, 0) + 1
        result.energy += self.power_model.instruction_energy(
            klass, cycles, previous_class, value
        )
        if stall:
            result.energy += self.power_model.stall_energy(stall)
        if self.record_trace:
            result.executed.append(instruction)
        return klass, load_rd

    def _account(
        self,
        instruction: Instruction,
        result: IssResult,
        previous_class: str,
        stall: int,
        value: int,
    ) -> None:
        cycles = BASE_CYCLES[instruction.op]
        result.cycles += cycles + stall
        result.instruction_count += 1
        klass = instruction.instruction_class
        result.class_counts[klass] = result.class_counts.get(klass, 0) + 1
        result.energy += self.power_model.instruction_energy(
            klass, cycles, previous_class, value
        )
        if stall:
            result.energy += self.power_model.stall_energy(stall)
        if self.record_trace:
            result.executed.append(instruction)

    def _execute(
        self,
        instruction: Instruction,
        memory: MutableMapping[int, int],
        result: IssResult,
    ) -> int:
        """Architectural semantics; returns the produced value.

        Dispatches through the decoded executor table; the per-opcode
        executors are module-level functions shared by every ISS.
        """
        executor = _EXECUTORS.get(instruction.op)
        if executor is None:
            raise IssError("unimplemented opcode %r" % instruction.op)
        return executor(self, instruction, memory, result)

    def _second_operand(self, instruction: Instruction) -> int:
        if instruction.rs2 is not None:
            return self.registers[instruction.rs2]
        return instruction.imm or 0

    def _write_reg(self, rd: int, value: int) -> None:
        if rd != 0:
            self.registers[rd] = value

    def _branch_taken(self, op: str) -> bool:
        if op == Opcode.BA:
            return True
        if op == Opcode.BE:
            return self._flag_eq
        if op == Opcode.BNE:
            return not self._flag_eq
        if op == Opcode.BL:
            return self._flag_lt
        if op == Opcode.BLE:
            return self._flag_lt or self._flag_eq
        if op == Opcode.BG:
            return not (self._flag_lt or self._flag_eq)
        if op == Opcode.BGE:
            return not self._flag_lt
        raise IssError("not a branch: %r" % op)

"""Instruction-level power model (Tiwari-style).

The model follows the structure of the measurement-based model the
paper plugs into SPARCsim [Tiwari et al., IEEE TVLSI 1994]:

* a *base cost* per instruction class — the average current drawn while
  instructions of that class execute,
* an *inter-instruction (circuit-state) overhead* added for every pair
  of adjacent instructions of different classes,
* extra costs for pipeline stall cycles and pipeline fill cycles,
* an optional *data-dependence* term.  For the SPARClite the measured
  variation with operand values was empirically very small, which is
  exactly why the paper's energy caching introduced no error (Table 1
  discussion); the coefficient therefore defaults to zero.  Setting it
  non-zero emulates a DSP-like target and reproduces the spread-out
  energy histograms of Figure 4(b).

Costs are expressed as supply currents (amperes); energy per cycle is
``Vdd * I * T_clk``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.sw.isa import InstructionClass

#: Default base supply current per instruction class, in amperes.
#: Relative magnitudes follow published instruction-level measurements:
#: memory instructions draw the most, NOPs the least.
DEFAULT_BASE_CURRENT: Dict[str, float] = {
    InstructionClass.ALU: 0.240,
    InstructionClass.LOAD: 0.285,
    InstructionClass.STORE: 0.270,
    InstructionClass.BRANCH: 0.225,
    InstructionClass.MUL: 0.300,
    InstructionClass.DIV: 0.290,
    InstructionClass.CALL: 0.245,
    InstructionClass.NOP: 0.170,
}

#: Default inter-instruction overhead current (amperes) charged once at
#: every boundary between instructions of *different* classes.
DEFAULT_OVERHEAD_CURRENT: Dict[Tuple[str, str], float] = {}


def _symmetric(table: Dict[Tuple[str, str], float], a: str, b: str, value: float) -> None:
    table[(a, b)] = value
    table[(b, a)] = value


_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.LOAD, 0.020)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.STORE, 0.018)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.BRANCH, 0.012)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.MUL, 0.025)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.DIV, 0.025)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.CALL, 0.015)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.ALU, InstructionClass.NOP, 0.010)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.LOAD, InstructionClass.STORE, 0.012)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.LOAD, InstructionClass.BRANCH, 0.022)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.LOAD, InstructionClass.NOP, 0.015)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.STORE, InstructionClass.BRANCH, 0.020)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.STORE, InstructionClass.NOP, 0.014)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.BRANCH, InstructionClass.NOP, 0.008)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.MUL, InstructionClass.LOAD, 0.028)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.MUL, InstructionClass.STORE, 0.026)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.DIV, InstructionClass.LOAD, 0.028)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.CALL, InstructionClass.LOAD, 0.018)
_symmetric(DEFAULT_OVERHEAD_CURRENT, InstructionClass.CALL, InstructionClass.NOP, 0.010)


def _popcount(value: int) -> int:
    """Population count of the low 32 bits of ``value``."""
    return bin(value & 0xFFFFFFFF).count("1")


@dataclass
class InstructionPowerModel:
    """Per-instruction energy computation.

    Attributes:
        vdd: supply voltage in volts.
        clock_period_s: processor clock period in seconds.
        base_current: amperes per instruction class.
        overhead_current: amperes charged at class boundaries.
        stall_current: amperes drawn during interlock stall cycles.
        fill_current: amperes drawn during pipeline fill cycles.
        data_alpha: joules per result bit set; zero for the SPARClite
            default (data-independent model).
    """

    vdd: float = 3.3
    clock_period_s: float = 10e-9
    base_current: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BASE_CURRENT)
    )
    overhead_current: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: dict(DEFAULT_OVERHEAD_CURRENT)
    )
    stall_current: float = 0.150
    fill_current: float = 0.170
    data_alpha: float = 0.0

    @classmethod
    def default_sparclite(cls) -> "InstructionPowerModel":
        """The data-independent model used throughout the paper."""
        return cls()

    @classmethod
    def dsp_like(cls, data_alpha: float = 0.08e-9) -> "InstructionPowerModel":
        """A model with operand-value dependence (paper, Section 5.2).

        Used to study the error that energy caching introduces on
        processors whose power depends on instruction data values.
        """
        return cls(data_alpha=data_alpha)

    def _energy_per_cycle(self, current: float) -> float:
        return self.vdd * current * self.clock_period_s

    def instruction_energy(
        self,
        instruction_class: str,
        cycles: int,
        previous_class: str = "",
        result_value: int = 0,
    ) -> float:
        """Energy in joules for one instruction execution.

        Args:
            instruction_class: class of the executing instruction.
            cycles: base cycles the instruction occupies.
            previous_class: class of the previously retired instruction
                (empty at the start of a run).
            result_value: the value produced, used only when
                ``data_alpha`` is non-zero.

        For the (default) data-independent model the result depends
        only on a small key, which is memoized — this method runs once
        per simulated instruction, the ISS's hot loop.
        """
        if not self.data_alpha:
            cache = self.__dict__.get("_energy_cache")
            if cache is None:
                cache = {}
                self._energy_cache = cache
            key = (instruction_class, cycles, previous_class)
            cached = cache.get(key)
            if cached is not None:
                return cached
        energy = self._energy_per_cycle(self.base_current[instruction_class]) * cycles
        if previous_class and previous_class != instruction_class:
            overhead = self.overhead_current.get(
                (previous_class, instruction_class), 0.010
            )
            energy += self._energy_per_cycle(overhead)
        if self.data_alpha:
            energy += self.data_alpha * _popcount(result_value)
            return energy
        cache[key] = energy
        return energy

    def stall_energy(self, cycles: int) -> float:
        """Energy in joules for ``cycles`` interlock stall cycles."""
        return self._energy_per_cycle(self.stall_current) * cycles

    def fill_energy(self, cycles: int) -> float:
        """Energy in joules for ``cycles`` pipeline fill cycles."""
        return self._energy_per_cycle(self.fill_current) * cycles

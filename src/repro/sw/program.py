"""Object-code container and assembler-style builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional
from repro.errors import ReproError

from repro.sw.isa import Instruction, Opcode

#: Bytes per instruction word (used for the ``.size`` macro-model entry
#: and for code-size reporting, as in the paper's parameter files).
INSTRUCTION_BYTES = 4


class ProgramError(ReproError):
    """Raised for malformed programs (duplicate/undefined labels)."""


@dataclass
class Program:
    """A fully assembled program.

    Attributes:
        instructions: the instruction words in memory order.
        labels: label name to instruction index.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)

    def entry(self, label: str) -> int:
        """Instruction index of ``label``."""
        if label not in self.labels:
            raise ProgramError("undefined label %r" % label)
        return self.labels[label]

    def resolve(self, target: str) -> int:
        """Branch-target resolution (same as :meth:`entry`)."""
        return self.entry(target)

    @property
    def size_bytes(self) -> int:
        """Code size in bytes."""
        return len(self.instructions) * INSTRUCTION_BYTES

    def disassemble(self, start: int = 0, count: Optional[int] = None) -> str:
        """Human-readable listing with labels, for debugging."""
        index_to_labels: Dict[int, List[str]] = {}
        for name, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(name)
        stop = len(self.instructions) if count is None else min(
            len(self.instructions), start + count
        )
        lines = []
        for index in range(start, stop):
            for name in sorted(index_to_labels.get(index, [])):
                lines.append("%s:" % name)
            lines.append("  %4d  %r" % (index, self.instructions[index]))
        return "\n".join(lines)


class ProgramBuilder:
    """Assembles instructions and labels into a :class:`Program`.

    Labels may be referenced before they are defined; they are checked
    at :meth:`build` time.
    """

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._fresh = 0

    def label(self, name: str) -> str:
        """Define ``name`` at the current position."""
        if name in self._labels:
            raise ProgramError("duplicate label %r" % name)
        self._labels[name] = len(self._instructions)
        return name

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        self._fresh += 1
        return "%s_%d" % (hint, self._fresh)

    def append(self, instruction: Instruction) -> None:
        """Append one instruction."""
        self._instructions.append(instruction)

    # Convenience emitters -------------------------------------------------

    def nop(self) -> None:
        self.append(Instruction(Opcode.NOP))

    def seti(self, rd: int, imm: int) -> None:
        self.append(Instruction(Opcode.SETI, rd=rd, imm=imm))

    def mov(self, rd: int, rs1: int) -> None:
        self.append(Instruction(Opcode.MOV, rd=rd, rs1=rs1))

    def alu(self, op: str, rd: int, rs1: int, rs2: Optional[int] = None,
            imm: Optional[int] = None) -> None:
        self.append(Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm))

    def cmp(self, rs1: int, rs2: Optional[int] = None, imm: Optional[int] = None) -> None:
        self.append(Instruction(Opcode.CMP, rs1=rs1, rs2=rs2, imm=imm))

    def branch(self, op: str, target: str, fill_delay_slot: bool = True) -> None:
        """Emit a delayed branch, by default with a NOP in the slot."""
        self.append(Instruction(op, target=target))
        if fill_delay_slot:
            self.nop()

    def load(self, rd: int, base: int, offset: int) -> None:
        self.append(Instruction(Opcode.LD, rd=rd, rs1=base, imm=offset))

    def store(self, rs: int, base: int, offset: int) -> None:
        self.append(Instruction(Opcode.ST, rd=rs, rs1=base, imm=offset))

    def call(self, target: str) -> None:
        self.append(Instruction(Opcode.CALL, target=target))

    def ret(self) -> None:
        self.append(Instruction(Opcode.RET))

    def build(self) -> Program:
        """Check label references and return the program."""
        for instruction in self._instructions:
            if instruction.target is not None and instruction.target not in self._labels:
                raise ProgramError("undefined label %r" % instruction.target)
        return Program(list(self._instructions), dict(self._labels))

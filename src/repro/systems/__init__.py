"""The paper's example systems, described as CFSM networks.

* :mod:`repro.systems.producer_consumer` — the motivating example of
  Figure 1: a software producer, a hardware timer, and a hardware
  consumer whose computation depends on *when* data arrives.
* :mod:`repro.systems.tcpip` — the TCP/IP network-interface-card
  checksum subsystem of Section 5 (Figure 5): packet ingest into shared
  memory, header scrubbing, and block-wise checksum over the shared
  bus, with the three bus masters whose priorities Figure 7 sweeps.
* :mod:`repro.systems.automotive` — the automotive (dashboard)
  controller mentioned in the abstract: wheel-pulse speedometer and
  odometer in hardware, belt alarm and fuel gauge in software, display
  refresh over the shared bus.
* :mod:`repro.systems.workloads` — seeded stimulus generators.

Every builder returns a :class:`SystemBundle` so examples, tests, and
benchmarks share one entry point.
"""

from repro.systems.bundle import SystemBundle
from repro.systems import producer_consumer, tcpip, automotive, workloads

__all__ = [
    "SystemBundle",
    "BUILDERS",
    "build_bundle",
    "builder_spec",
    "system_names",
    "producer_consumer",
    "tcpip",
    "automotive",
    "workloads",
]

#: The bundled example systems as picklable builder specs
#: (``"module:callable"``, kwargs).  One registry feeds the CLI, the
#: parallel pool's worker-side reconstruction, and the co-estimation
#: service, so a system name means the same design everywhere.
BUILDERS = {
    "fig1": ("repro.systems.producer_consumer:build_system",
             {"num_packets": 4}),
    "tcpip": ("repro.systems.tcpip:build_system", {"dma_block_words": 16}),
    "tcpip-out": ("repro.systems.tcpip:build_system",
                  {"dma_block_words": 16, "include_outgoing": True,
                   "num_outgoing": 2}),
    "automotive": ("repro.systems.automotive:build_system", {}),
}


def system_names():
    """The bundled system names, sorted."""
    return sorted(BUILDERS)


def builder_spec(name):
    """The ``(builder, kwargs)`` spec of a bundled system.

    Raises ``KeyError`` with the valid choices for unknown names.
    """
    try:
        return BUILDERS[name]
    except KeyError:
        raise KeyError(
            "unknown system %r (choose from %s)"
            % (name, ", ".join(system_names()))
        ) from None


def build_bundle(name) -> SystemBundle:
    """Build a bundled system by name (see :data:`BUILDERS`)."""
    from repro.parallel.jobs import resolve_callable

    builder, kwargs = builder_spec(name)
    return resolve_callable(builder)(**dict(kwargs))

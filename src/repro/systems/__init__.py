"""The paper's example systems, described as CFSM networks.

* :mod:`repro.systems.producer_consumer` — the motivating example of
  Figure 1: a software producer, a hardware timer, and a hardware
  consumer whose computation depends on *when* data arrives.
* :mod:`repro.systems.tcpip` — the TCP/IP network-interface-card
  checksum subsystem of Section 5 (Figure 5): packet ingest into shared
  memory, header scrubbing, and block-wise checksum over the shared
  bus, with the three bus masters whose priorities Figure 7 sweeps.
* :mod:`repro.systems.automotive` — the automotive (dashboard)
  controller mentioned in the abstract: wheel-pulse speedometer and
  odometer in hardware, belt alarm and fuel gauge in software, display
  refresh over the shared bus.
* :mod:`repro.systems.workloads` — seeded stimulus generators.

Every builder returns a :class:`SystemBundle` so examples, tests, and
benchmarks share one entry point.
"""

from repro.systems.bundle import SystemBundle
from repro.systems import producer_consumer, tcpip, automotive, workloads

__all__ = [
    "SystemBundle",
    "producer_consumer",
    "tcpip",
    "automotive",
    "workloads",
]

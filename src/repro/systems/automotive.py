"""An automotive (dashboard) controller.

The paper's abstract reports using the co-estimation tool on "an
automotive controller"; this module provides a representative
dashboard-control system in the POLIS style (the domain the POLIS
examples come from):

* **speedometer** (hardware): counts wheel-sensor pulses and converts
  the count to a speed value on every second tick.
* **odometer** (hardware): accumulates wheel pulses and emits a
  distance increment every ``PULSES_PER_UNIT`` pulses.
* **belt_alarm** (software): the classic seat-belt controller — after
  key-on, if the belt is not fastened within ``ALARM_TICKS`` second
  ticks, raise the alarm; key-off or belt-on cancels it.
* **fuel_gauge** (software): exponentially smooths noisy fuel-sender
  samples.
* **display_ctrl** (software): collects speed/fuel/odometer updates and
  refreshes the display frame buffer, which lives in shared memory
  behind the system bus — the system's bus master.

The mix (two reactive hardware blocks, three software tasks sharing the
processor under the RTOS, and bus traffic from display refreshes) makes
this a good co-estimation stress test: activity interleaving on the
processor and the bus couples the components' power.
"""

from __future__ import annotations

from typing import List

from repro.bus.model import BusParameters
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import (
    add,
    band,
    const,
    div,
    eq,
    event_value,
    ge,
    gt,
    mul,
    var,
)
from repro.cfsm.model import Implementation, Network
from repro.cfsm.sgraph import assign, emit, if_, loop, shared_write
from repro.master.master import MasterConfig
from repro.master.rtos import RtosConfig, SchedulingPolicy
from repro.systems import workloads
from repro.systems.bundle import SystemBundle

#: Wheel pulses per odometer distance increment.
PULSES_PER_UNIT = 32

#: Second ticks before the belt alarm fires.
ALARM_TICKS = 5

#: Shared-memory frame buffer layout (word addresses).
DISPLAY_SPEED = 0x100
DISPLAY_FUEL = 0x110
DISPLAY_ODO = 0x120
DISPLAY_ALARM = 0x130
#: Words refreshed per display update (segments of the panel).
DISPLAY_SEGMENTS = 8


def build_network() -> Network:
    """Construct the dashboard-controller network."""
    builder = NetworkBuilder("automotive_dashboard")

    speedometer = builder.cfsm("speedometer", mapping=Implementation.HW, width=16)
    speedometer.input("WHEEL_PULSE")
    speedometer.input("SEC_TICK")
    speedometer.output("SPEED", has_value=True)
    speedometer.var("pulses", 0)
    speedometer.transition(
        "report", trigger=["SEC_TICK"],
        body=[
            emit("SPEED", var("pulses")),
            assign("pulses", const(0)),
        ],
    )
    speedometer.transition(
        "count", trigger=["WHEEL_PULSE"],
        body=[assign("pulses", add(var("pulses"), const(1)))],
    )

    odometer = builder.cfsm("odometer", mapping=Implementation.HW, width=16)
    odometer.input("WHEEL_PULSE")
    odometer.output("ODO_INC", has_value=True)
    odometer.var("count", 0)
    odometer.var("total", 0)
    odometer.transition(
        "accumulate", trigger=["WHEEL_PULSE"],
        body=[
            assign("count", add(var("count"), const(1))),
            if_(ge(var("count"), const(PULSES_PER_UNIT)), [
                assign("count", const(0)),
                assign("total", add(var("total"), const(1))),
                emit("ODO_INC", var("total")),
            ]),
        ],
    )

    belt = builder.cfsm("belt_alarm", mapping=Implementation.SW)
    belt.input("KEY_ON")
    belt.input("KEY_OFF")
    belt.input("BELT_ON")
    belt.input("SEC_TICK")
    belt.output("ALARM", has_value=True)
    belt.var("armed", 0)
    belt.var("ticks", 0)
    belt.var("alarm", 0)
    belt.transition(
        "key_on", trigger=["KEY_ON"],
        body=[assign("armed", const(1)), assign("ticks", const(0))],
    )
    belt.transition(
        "key_off", trigger=["KEY_OFF"],
        body=[
            assign("armed", const(0)),
            if_(gt(var("alarm"), const(0)), [
                assign("alarm", const(0)),
                emit("ALARM", const(0)),
            ]),
        ],
    )
    belt.transition(
        "belt_on", trigger=["BELT_ON"],
        body=[
            assign("armed", const(0)),
            if_(gt(var("alarm"), const(0)), [
                assign("alarm", const(0)),
                emit("ALARM", const(0)),
            ]),
        ],
    )
    belt.transition(
        "tick", trigger=["SEC_TICK"],
        guard=gt(var("armed"), const(0)),
        body=[
            assign("ticks", add(var("ticks"), const(1))),
            if_(ge(var("ticks"), const(ALARM_TICKS)), [
                if_(eq(var("alarm"), const(0)), [
                    assign("alarm", const(1)),
                    emit("ALARM", const(1)),
                ]),
            ]),
        ],
    )

    fuel = builder.cfsm("fuel_gauge", mapping=Implementation.SW)
    fuel.input("FUEL_SAMPLE", has_value=True)
    fuel.output("FUEL_LEVEL", has_value=True)
    fuel.var("level", 0)
    fuel.transition(
        "sample", trigger=["FUEL_SAMPLE"],
        body=[
            # level := (7*level + sample) / 8 — exponential smoothing.
            assign("level",
                   div(add(mul(var("level"), const(7)),
                           event_value("FUEL_SAMPLE")), const(8))),
            emit("FUEL_LEVEL", var("level")),
        ],
    )

    display = builder.cfsm("display_ctrl", mapping=Implementation.SW)
    display.input("SPEED", has_value=True)
    display.input("FUEL_LEVEL", has_value=True)
    display.input("ODO_INC", has_value=True)
    display.input("ALARM", has_value=True)
    display.var("i", 0)
    display.var("frame", 0)
    display.transition(
        "show_speed", trigger=["SPEED"],
        body=[
            assign("i", const(0)),
            loop(const(DISPLAY_SEGMENTS), [
                shared_write(add(const(DISPLAY_SPEED), var("i")),
                             band(add(event_value("SPEED"), var("i")), const(0x7F))),
                assign("i", add(var("i"), const(1))),
            ]),
            assign("frame", add(var("frame"), const(1))),
        ],
    )
    display.transition(
        "show_fuel", trigger=["FUEL_LEVEL"],
        body=[
            assign("i", const(0)),
            loop(const(DISPLAY_SEGMENTS), [
                shared_write(add(const(DISPLAY_FUEL), var("i")),
                             band(add(event_value("FUEL_LEVEL"), var("i")),
                                  const(0x7F))),
                assign("i", add(var("i"), const(1))),
            ]),
        ],
    )
    display.transition(
        "show_odo", trigger=["ODO_INC"],
        body=[shared_write(const(DISPLAY_ODO), event_value("ODO_INC"))],
    )
    display.transition(
        "show_alarm", trigger=["ALARM"],
        body=[shared_write(const(DISPLAY_ALARM), event_value("ALARM"))],
    )

    builder.environment_input(
        "WHEEL_PULSE", "SEC_TICK", "KEY_ON", "KEY_OFF", "BELT_ON", "FUEL_SAMPLE"
    )
    builder.on_bus("SPEED", "FUEL_LEVEL", "ODO_INC", "ALARM")
    return builder.build()


def build_config(dma_block_words: int = 4) -> MasterConfig:
    """Master configuration for the dashboard system."""
    bus = BusParameters(
        addr_width=12,
        data_width=8,
        line_capacitance_f=2e-9,
        dma_block_words=dma_block_words,
        priorities={"display_ctrl": 0, "speedometer": 1, "odometer": 2},
    )
    rtos = RtosConfig(
        policy=SchedulingPolicy.STATIC_PRIORITY,
        priorities={"belt_alarm": 0, "display_ctrl": 1, "fuel_gauge": 2},
    )
    return MasterConfig(bus_params=bus, rtos=rtos)


def build_system(
    duration_ns: float = 400_000.0,
    tick_period_ns: float = 40_000.0,
    seed: int = 7,
) -> SystemBundle:
    """The dashboard controller with a driving scenario workload.

    The scenario: key on, the driver ignores the belt long enough for
    the alarm to fire, then fastens it; meanwhile the car accelerates
    (wheel-pulse train speeds up) and the fuel sender drifts down.
    """
    network = build_network()
    config = build_config()

    def stimuli() -> List[Event]:
        ticks = workloads.periodic(
            "SEC_TICK", tick_period_ns, int(duration_ns / tick_period_ns),
            start_ns=tick_period_ns,
        )
        pulses = workloads.wheel_pulses(
            duration_ns,
            speed_profile=[(0.0, 8000.0), (0.3, 3000.0), (0.7, 1500.0)],
            seed=seed,
        )
        fuel_events = workloads.fuel_samples(
            duration_ns, tick_period_ns * 2.5, seed=seed + 1
        )
        scenario = [
            Event("KEY_ON", time=1000.0),
            Event("BELT_ON", time=tick_period_ns * (ALARM_TICKS + 2.5)),
        ]
        return workloads.merge(ticks, pulses, fuel_events, scenario)

    return SystemBundle(
        network=network,
        config=config,
        stimuli_factory=stimuli,
        description="Automotive dashboard controller scenario",
    )

"""Common container for a ready-to-simulate system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cfsm.events import Event
from repro.cfsm.model import Network
from repro.master.master import MasterConfig


@dataclass
class SystemBundle:
    """A network plus everything needed to co-simulate it.

    Attributes:
        network: the CFSM network.
        config: master configuration (bus parameters, RTOS, clocks).
        stimuli_factory: builds a fresh, deterministic stimulus list.
        shared_memory_image: optional initial shared-memory contents.
        description: one-line summary for reports.
    """

    network: Network
    config: MasterConfig
    stimuli_factory: Callable[[], List[Event]]
    shared_memory_image: Optional[Dict[int, int]] = None
    description: str = ""

    def stimuli(self) -> List[Event]:
        """A fresh stimulus list (safe to mutate/reuse)."""
        return self.stimuli_factory()

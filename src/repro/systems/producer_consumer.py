"""The motivating example of the paper's Figure 1.

Three processes with event-based communication:

* **producer** (software, on the embedded processor): upon each START
  event it runs a checksum-style computation over a packet and emits
  END_COMP.  Its execution time on the processor is what separates the
  END_COMP events in real time.
* **timer** (hardware): counts TIMER_TICK events from the environment
  and broadcasts the current time value.
* **consumer** (hardware): triggered by END_COMP together with the
  (one-place-buffered, hence *latest*) TIME value; it executes a
  computation loop whose iteration count is the difference between the
  current and previous TIME values — the timing-functionality
  inter-dependence that breaks separate estimation.

With a timing-accurate co-simulation the producer's computation spans
several timer ticks, so the consumer iterates several times per packet.
A timing-independent behavioral simulation collapses the producer's
execution to an instant: consecutive END_COMP events see almost equal
TIME values and the consumer's loop almost never runs — the ~62%
under-estimation of Figure 1(b).
"""

from __future__ import annotations

from typing import List

from repro.bus.model import BusParameters
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import add, band, const, event_value, gt, mul, shr, sub, var
from repro.cfsm.model import Implementation, Network
from repro.cfsm.sgraph import assign, emit, if_, loop
from repro.master.master import MasterConfig
from repro.systems.bundle import SystemBundle
from repro.systems import workloads

#: Words of computation per packet in the producer's checksum loop.
DEFAULT_PACKET_WORDS = 48

#: Timer tick period (ns) — several ticks elapse per producer packet.
DEFAULT_TICK_PERIOD_NS = 6000.0

#: START arrival period (ns) — much faster than the producer's real
#: computation time, so the behavioral (zero-delay) timing is wrong.
DEFAULT_START_PERIOD_NS = 500.0


def build_network(
    packet_words: int = DEFAULT_PACKET_WORDS, num_packets: int = 8
) -> Network:
    """Construct the producer / timer / consumer network."""
    builder = NetworkBuilder("fig1_example")

    producer = builder.cfsm("producer", mapping=Implementation.SW)
    producer.input("START")
    producer.input("RESET")
    producer.output("END_COMP")
    producer.var("data", 1)
    producer.var("sum", 0)
    producer.var("pkts_left", num_packets)
    # "repeat NUM_PKTS times: await(START); compute_chksum();
    # emit(END_COMP)" — the producer processes a fixed, pre-defined
    # amount of data regardless of how many START events the (faster)
    # environment produced; extra STARTs overwrite in the one-place
    # buffer exactly as in the CFSM semantics of the paper.
    producer.transition(
        "compute_chksum",
        trigger=["START"],
        guard=gt(var("pkts_left"), const(0)),
        body=[
            assign("pkts_left", sub(var("pkts_left"), const(1))),
            assign("sum", const(0)),
            loop(const(packet_words), [
                # Pseudo-random payload word, then one's-complement
                # style accumulate-and-fold.
                assign("data", band(add(mul(var("data"), const(13)), const(7)),
                                    const(0xFF))),
                assign("sum", add(var("sum"), var("data"))),
                assign("sum", add(band(var("sum"), const(0xFFFF)),
                                  shr(var("sum"), const(16)))),
            ]),
            emit("END_COMP"),
        ],
    )

    timer = builder.cfsm("timer", mapping=Implementation.HW, width=16)
    timer.input("TIMER_TICK")
    timer.input("RESET")
    timer.output("TIME", has_value=True)
    timer.var("now", 0)
    timer.transition(
        "tick",
        trigger=["TIMER_TICK"],
        body=[
            assign("now", add(var("now"), const(1))),
            emit("TIME", var("now")),
        ],
    )

    consumer = builder.cfsm("consumer", mapping=Implementation.HW, width=16)
    consumer.input("END_COMP")
    consumer.input("RESET")
    consumer.input("TIME", has_value=True)
    consumer.output("BYTE_DONE")
    consumer.var("cur_time", 0)
    consumer.var("prev_time", 0)
    consumer.var("n_it", 0)
    consumer.var("acc", 0)
    # Track the latest TIME broadcast (the one-place buffer keeps only
    # the most recent value — earlier ticks are overwritten).
    consumer.transition(
        "track_time",
        trigger=["TIME"],
        body=[assign("cur_time", event_value("TIME"))],
    )
    # Per data packet: run a computation loop whose iteration count is
    # the time elapsed (in ticks) since the previous packet.  This is
    # the timing-functionality inter-dependence of the paper's Figure 1.
    consumer.transition(
        "process",
        trigger=["END_COMP"],
        body=[
            # Fixed per-packet work (header handling) — independent of
            # timing, so separate estimation gets this part right.
            loop(const(15), [
                loop(const(6), [
                    assign("acc", add(var("acc"), const(5))),
                    assign("acc", band(var("acc"), const(0x3FF))),
                ]),
            ]),
            assign("n_it", sub(var("cur_time"), var("prev_time"))),
            if_(gt(var("n_it"), const(0)), [
                loop(var("n_it"), [
                    loop(const(6), [
                        assign("acc", add(var("acc"), const(3))),
                        assign("acc", band(var("acc"), const(0x3FF))),
                    ]),
                    emit("BYTE_DONE"),
                ]),
            ]),
            assign("prev_time", var("cur_time")),
        ],
    )

    builder.environment_input("START", "TIMER_TICK", "RESET")
    # Every process runs inside the paper's "do ... watching RESET".
    builder.watching("RESET")
    return builder.build()


def build_system(
    num_packets: int = 8,
    packet_words: int = DEFAULT_PACKET_WORDS,
    tick_period_ns: float = DEFAULT_TICK_PERIOD_NS,
    start_period_ns: float = DEFAULT_START_PERIOD_NS,
) -> SystemBundle:
    """The Figure 1 system with its default workload."""
    network = build_network(packet_words, num_packets)
    config = MasterConfig(bus_params=BusParameters(priorities={}))

    # The environment produces STARTs much faster than the producer can
    # compute; spare STARTs overwrite in the one-place buffer, so the
    # producer is paced by its own (software) execution time.
    horizon_ns = num_packets * packet_words * 800.0
    start_count = int(horizon_ns / start_period_ns) + 2
    tick_count = int(horizon_ns / tick_period_ns) + 2

    def stimuli() -> List[Event]:
        return workloads.merge(
            workloads.periodic("START", start_period_ns, start_count, start_ns=50.0),
            workloads.periodic("TIMER_TICK", tick_period_ns, tick_count,
                               start_ns=tick_period_ns),
        )

    return SystemBundle(
        network=network,
        config=config,
        stimuli_factory=stimuli,
        description="Figure 1 producer/timer/consumer motivating example",
    )

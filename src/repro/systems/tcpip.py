"""The TCP/IP network-interface-card checksum subsystem (Section 5.1).

The system behavior follows the paper's Figure 5 for incoming packets:

* **create_pack** (software): receives a packet from the IP layer
  (a ``PACKET_IN`` event whose value is the packet length in words),
  synthesizes the payload, stores it into *shared memory* over the
  system bus, computes the transmitted checksum into the packet header,
  and announces the packet (``PKT_READY``).
* **ip_check** (software): on ``PKT_READY`` it overwrites the header
  words that must not participate in the checksum with zeros, then
  drives the checksum hardware one DMA block at a time through a
  ``CHK_START`` / ``CHK_GO`` / ``CHK_BLK_DONE`` handshake; when all
  blocks are done it compares the computed checksum against the
  transmitted one and flags ``PKT_OK`` or ``CHK_ERR``.
* **checksum** (application-specific hardware): accumulates the 16-bit
  one's-complement checksum of one DMA block per transition, fetching
  the packet body from shared memory through the bus arbiter.

The three processes are exactly the three bus masters whose arbitration
priorities the paper sweeps in Figure 7; the DMA block size is the
``DMA size`` parameter of Tables 1/2.  Because ip_check coordinates one
handshake per DMA block, small DMA sizes mean many short software and
hardware transitions — the mechanism behind the CPU-time column of
Table 1 and the error trend of Table 2.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bus.model import BusParameters
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import (
    add,
    band,
    const,
    div,
    eq,
    event_value,
    gt,
    lt,
    mul,
    shr,
    sub,
    var,
)
from repro.cfsm.model import Implementation, Network
from repro.cfsm.sgraph import assign, emit, if_, loop, shared_read, shared_write
from repro.master.master import MasterConfig
from repro.systems import workloads
from repro.systems.bundle import SystemBundle

#: Shared-memory layout (word addresses).
PACKET_BASE = 0
HEADER_BASE = 480
HEADER_CHECKSUM = HEADER_BASE  # transmitted checksum
HEADER_SCRUB_0 = HEADER_BASE + 1  # words ip_check zeroes before checking
HEADER_SCRUB_1 = HEADER_BASE + 2

#: Outgoing-packet buffer and header (the reverse flow of Figure 5).
OUT_BASE = 256
OUT_HEADER_CHECKSUM = HEADER_BASE + 8

#: Default packet workload: the paper's Figure 7 processes 3 packets.
DEFAULT_NUM_PACKETS = 3
DEFAULT_PACKET_PERIOD_NS = 150_000.0

#: Bus masters, in the priority order the paper found optimal
#: (Create_Pack > IP_Check > Checksum, descending priority).
BUS_MASTERS = ("create_pack", "ip_check", "checksum")
PAPER_OPTIMAL_PRIORITIES = {"create_pack": 0, "ip_check": 1, "checksum": 2}


def build_network(dma_block_words: int = 16,
                  include_outgoing: bool = False) -> Network:
    """Construct the TCP/IP subsystem network.

    ``dma_block_words`` is baked into the coordination logic (how many
    words ip_check asks the checksum hardware to process per handshake)
    and must match the bus configuration's DMA size — use
    :func:`build_system`, which keeps them consistent.

    With ``include_outgoing`` the reverse flow of the paper's Figure 5
    is added: a host-interface process stores outgoing packets into a
    second shared-memory buffer, the same checksum hardware computes
    their checksum block by block, and ip_check writes the result into
    the outgoing header and signals transmission — with no final
    comparison, exactly as the paper describes for outgoing packets.
    """
    if dma_block_words < 1:
        raise ValueError("DMA block size must be at least 1 word")
    builder = NetworkBuilder("tcpip_nic")

    create_pack = builder.cfsm("create_pack", mapping=Implementation.SW)
    create_pack.input("PACKET_IN", has_value=True)
    create_pack.output("PKT_READY", has_value=True)
    create_pack.var("len", 0)
    create_pack.var("i", 0)
    create_pack.var("data", 1)
    create_pack.var("csum", 0)
    create_pack.transition(
        "receive_packet",
        trigger=["PACKET_IN"],
        body=[
            assign("len", event_value("PACKET_IN")),
            assign("csum", const(0)),
            assign("i", const(0)),
            loop(var("len"), [
                # Synthesized payload word (deterministic LCG), stored
                # into shared memory over the bus, and folded into the
                # 16-bit one's-complement checksum.
                assign("data", band(add(mul(var("data"), const(13)), const(7)),
                                    const(0xFF))),
                shared_write(add(const(PACKET_BASE), var("i")), var("data")),
                assign("csum", add(var("csum"), var("data"))),
                assign("csum", add(band(var("csum"), const(0xFFFF)),
                                   shr(var("csum"), const(16)))),
                assign("i", add(var("i"), const(1))),
            ]),
            shared_write(const(HEADER_CHECKSUM), var("csum")),
            shared_write(const(HEADER_SCRUB_0), const(0xAA)),
            shared_write(const(HEADER_SCRUB_1), const(0x55)),
            emit("PKT_READY", var("len")),
        ],
    )

    ip_check = builder.cfsm("ip_check", mapping=Implementation.SW)
    ip_check.input("PKT_READY", has_value=True)
    ip_check.input("CHK_BLK_DONE", has_value=True)
    ip_check.output("CHK_START", has_value=True)
    ip_check.output("CHK_GO")
    ip_check.output("PKT_OK", has_value=True)
    ip_check.output("CHK_ERR", has_value=True)
    ip_check.output("TX_READY", has_value=True)
    ip_check.var("len", 0)
    ip_check.var("blocks_left", 0)
    ip_check.var("expected", 0)
    ip_check.var("mode", 0)  # 0 = incoming (verify), 1 = outgoing (stamp)
    ip_check.var("blk", dma_block_words)
    # Declared first: finishing the in-flight packet has priority over
    # accepting a new one, so under overload new PKT_READY events wait
    # in (and may be lost from) the one-place buffer — the lossy
    # back-pressure behaviour of a real NIC front-end.
    ip_check.transition(
        "block_done",
        trigger=["CHK_BLK_DONE"],
        body=[
            assign("blocks_left", sub(var("blocks_left"), const(1))),
            if_(gt(var("blocks_left"), const(0)), [
                emit("CHK_GO"),
            ], [
                if_(eq(var("mode"), const(0)), [
                    # Incoming: verify against the transmitted checksum.
                    shared_read("expected", const(HEADER_CHECKSUM)),
                    if_(eq(var("expected"), event_value("CHK_BLK_DONE")), [
                        emit("PKT_OK", event_value("CHK_BLK_DONE")),
                    ], [
                        emit("CHK_ERR", event_value("CHK_BLK_DONE")),
                    ]),
                ], [
                    # Outgoing: stamp the header, no comparison needed.
                    shared_write(const(OUT_HEADER_CHECKSUM),
                                 event_value("CHK_BLK_DONE")),
                    emit("TX_READY", event_value("CHK_BLK_DONE")),
                ]),
            ]),
        ],
    )
    ip_check.transition(
        "prepare_packet",
        trigger=["PKT_READY"],
        body=[
            assign("mode", const(0)),
            assign("len", event_value("PKT_READY")),
            # Scrub the header words that must not enter the checksum.
            shared_write(const(HEADER_SCRUB_0), const(0)),
            shared_write(const(HEADER_SCRUB_1), const(0)),
            # ceil(len / blk) handshakes will be needed.
            assign("blocks_left",
                   div(sub(add(var("len"), var("blk")), const(1)), var("blk"))),
            emit("CHK_START", var("len")),
            emit("CHK_GO"),
        ],
    )
    if include_outgoing:
        ip_check.input("OUT_READY", has_value=True)
        ip_check.output("CHK_START_OUT", has_value=True)
        ip_check.transition(
            "prepare_out",
            trigger=["OUT_READY"],
            body=[
                assign("mode", const(1)),
                assign("len", event_value("OUT_READY")),
                assign("blocks_left",
                       div(sub(add(var("len"), var("blk")), const(1)),
                           var("blk"))),
                emit("CHK_START_OUT", var("len")),
                emit("CHK_GO"),
            ],
        )

    checksum = builder.cfsm("checksum", mapping=Implementation.HW, width=18)
    checksum.input("CHK_START", has_value=True)
    checksum.input("CHK_GO")
    checksum.output("CHK_BLK_DONE", has_value=True)
    checksum.var("sum", 0)
    checksum.var("remaining", 0)
    checksum.var("addr", 0)
    checksum.var("n", 0)
    checksum.var("w", 0)
    checksum.var("blk", dma_block_words)
    checksum.transition(
        "start_packet",
        trigger=["CHK_START"],
        body=[
            assign("sum", const(0)),
            assign("remaining", event_value("CHK_START")),
            assign("addr", const(PACKET_BASE)),
        ],
    )
    if include_outgoing:
        checksum.input("CHK_START_OUT", has_value=True)
        checksum.transition(
            "start_out",
            trigger=["CHK_START_OUT"],
            body=[
                assign("sum", const(0)),
                assign("remaining", event_value("CHK_START_OUT")),
                assign("addr", const(OUT_BASE)),
            ],
        )
    checksum.transition(
        "process_block",
        trigger=["CHK_GO"],
        body=[
            if_(lt(var("remaining"), var("blk")), [
                assign("n", var("remaining")),
            ], [
                assign("n", var("blk")),
            ]),
            loop(var("n"), [
                shared_read("w", var("addr")),
                assign("sum", add(var("sum"), var("w"))),
                assign("sum", add(band(var("sum"), const(0xFFFF)),
                                  shr(var("sum"), const(16)))),
                assign("addr", add(var("addr"), const(1))),
            ]),
            assign("remaining", sub(var("remaining"), var("n"))),
            emit("CHK_BLK_DONE", var("sum")),
        ],
    )

    if include_outgoing:
        host_if = builder.cfsm("host_if", mapping=Implementation.SW)
        host_if.input("PKT_OUT", has_value=True)
        host_if.output("OUT_READY", has_value=True)
        host_if.var("len", 0)
        host_if.var("i", 0)
        host_if.var("data", 5)
        host_if.transition(
            "send_packet",
            trigger=["PKT_OUT"],
            body=[
                assign("len", event_value("PKT_OUT")),
                assign("i", const(0)),
                loop(var("len"), [
                    assign("data", band(add(mul(var("data"), const(17)),
                                            const(3)), const(0xFF))),
                    shared_write(add(const(OUT_BASE), var("i")), var("data")),
                    assign("i", add(var("i"), const(1))),
                ]),
                emit("OUT_READY", var("len")),
            ],
        )

    builder.environment_input("PACKET_IN")
    if include_outgoing:
        builder.environment_input("PKT_OUT")
    # The handshake events travel over the shared bus (they are what
    # makes the modules "handshake with the arbiter" — the power peaks
    # the paper observes).
    builder.on_bus("PKT_READY", "CHK_START", "CHK_GO", "CHK_BLK_DONE")
    if include_outgoing:
        builder.on_bus("OUT_READY", "CHK_START_OUT", "TX_READY")
    return builder.build()


def build_config(
    dma_block_words: int = 16,
    priorities: Optional[Dict[str, int]] = None,
) -> MasterConfig:
    """Master configuration matching the paper's experimental setup."""
    bus = BusParameters(
        addr_width=8,
        data_width=8,
        vdd=3.3,
        line_capacitance_f=10e-9,
        dma_block_words=dma_block_words,
        priorities=dict(priorities or PAPER_OPTIMAL_PRIORITIES),
    )
    return MasterConfig(bus_params=bus)


def build_system(
    dma_block_words: int = 16,
    num_packets: int = DEFAULT_NUM_PACKETS,
    priorities: Optional[Dict[str, int]] = None,
    packet_period_ns: float = DEFAULT_PACKET_PERIOD_NS,
    size_range=(24, 64),
    seed: int = 2000,
    include_outgoing: bool = False,
    num_outgoing: int = 0,
) -> SystemBundle:
    """The TCP/IP subsystem with a packet workload.

    The same ``dma_block_words`` value parameterizes both the bus model
    and the block-wise coordination logic, mirroring how the paper's
    behavioral bus architecture model exposes the DMA size.  With
    ``include_outgoing``, ``num_outgoing`` host packets are transmitted
    through the reverse flow, interleaved between arrivals.
    """
    network = build_network(dma_block_words, include_outgoing=include_outgoing)
    config = build_config(dma_block_words, priorities)
    if include_outgoing:
        config.bus_params.priorities.setdefault("host_if", 3)

    def stimuli() -> List[Event]:
        arrivals = workloads.packet_arrivals(
            num_packets, packet_period_ns, size_range=size_range, seed=seed
        )
        if include_outgoing and num_outgoing:
            outgoing = workloads.packet_arrivals(
                num_outgoing, packet_period_ns, size_range=size_range,
                seed=seed + 1, start_ns=100.0 + packet_period_ns * 0.5,
                event_name="PKT_OUT",
            )
            return workloads.merge(arrivals, outgoing)
        return arrivals

    return SystemBundle(
        network=network,
        config=config,
        stimuli_factory=stimuli,
        description=(
            "TCP/IP NIC checksum subsystem, DMA=%d, %d packets"
            % (dma_block_words, num_packets)
        ),
    )

"""Seeded stimulus generators for the example systems.

All generators are deterministic given their seed, so every experiment
in the repository is exactly reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.cfsm.events import Event


def periodic(
    event_name: str,
    period_ns: float,
    count: int,
    start_ns: float = 0.0,
    value: int = 0,
) -> List[Event]:
    """``count`` occurrences of a pure/valued event every ``period_ns``."""
    return [
        Event(event_name, value=value, time=start_ns + index * period_ns)
        for index in range(count)
    ]


def packet_arrivals(
    count: int,
    period_ns: float,
    size_range: Tuple[int, int] = (24, 64),
    seed: int = 2000,
    start_ns: float = 100.0,
    event_name: str = "PACKET_IN",
) -> List[Event]:
    """Packet-arrival events whose values are the packet word counts.

    Packets are spaced ``period_ns`` apart (the NIC's line rate) with
    sizes drawn uniformly from ``size_range`` under a fixed seed.
    """
    rng = random.Random(seed)
    events = []
    for index in range(count):
        size = rng.randint(size_range[0], size_range[1])
        events.append(
            Event(event_name, value=size, time=start_ns + index * period_ns)
        )
    return events


def merge(*streams: Sequence[Event]) -> List[Event]:
    """Merge stimulus streams into one time-sorted list."""
    merged: List[Event] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort(key=lambda event: (event.time, event.name))
    return merged


def wheel_pulses(
    duration_ns: float,
    speed_profile: Sequence[Tuple[float, float]],
    seed: int = 7,
) -> List[Event]:
    """Wheel-sensor pulses following a piecewise-constant speed profile.

    ``speed_profile`` is a list of (start fraction of duration, pulse
    period ns) segments; light jitter is added under the seed so pulse
    trains are not perfectly periodic.
    """
    rng = random.Random(seed)
    events: List[Event] = []
    for index, (fraction, period_ns) in enumerate(speed_profile):
        segment_start = duration_ns * fraction
        segment_end = (
            duration_ns * speed_profile[index + 1][0]
            if index + 1 < len(speed_profile)
            else duration_ns
        )
        time = segment_start
        while time < segment_end:
            events.append(Event("WHEEL_PULSE", time=time))
            time += period_ns * rng.uniform(0.95, 1.05)
    return events


def fuel_samples(
    duration_ns: float,
    period_ns: float,
    level_start: int = 200,
    drain_per_sample: int = 1,
    noise: int = 6,
    seed: int = 23,
) -> List[Event]:
    """Noisy, slowly draining fuel-sender samples."""
    rng = random.Random(seed)
    events: List[Event] = []
    level = level_start
    time = period_ns
    while time < duration_ns:
        sample = max(0, level + rng.randint(-noise, noise))
        events.append(Event("FUEL_SAMPLE", value=sample, time=time))
        level = max(0, level - drain_per_sample)
        time += period_ns
    return events

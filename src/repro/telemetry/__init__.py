"""Observability for the co-estimation stack.

The paper's evaluation is an accounting exercise — where do the CPU
seconds and the joules go, and what does each acceleration technique
save (Tables 1/2, Figures 6/7).  This package makes that accounting a
first-class, always-available artifact of every run:

* :mod:`repro.telemetry.tracer` — wall-clock span tracing of master
  reactions, ISS invocations, gate-level runs, bus kicks, and strategy
  decisions, with a near-zero-cost disabled mode;
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms (ISS calls, cache hit rates, sampling dispatch ratios,
  queue depths, per-reaction wall-clock), snapshot-able to dict/JSON;
* :mod:`repro.telemetry.export` — Chrome trace-event JSON (loadable in
  Perfetto / ``chrome://tracing``, with energy as counter tracks) and
  a JSONL stream;
* :mod:`repro.telemetry.report` — a human-readable end-of-run summary
  (hottest spans, strategy-effectiveness accounting).

Usage: build one :class:`Telemetry` bundle and hand it to any entry
point that accepts ``telemetry=`` (the simulation master, the
:class:`~repro.core.coestimator.PowerCoEstimator` facade, the CLI's
``--trace``/``--metrics`` flags)::

    from repro.telemetry import Telemetry
    from repro.telemetry.export import write_chrome_trace

    telemetry = Telemetry()
    result = estimator.estimate(stimuli, strategy="caching",
                                telemetry=telemetry)
    write_chrome_trace(telemetry.tracer, "trace.json")
    print(telemetry.metrics.to_json())

Every component defaults to the shared :data:`NULL_TELEMETRY` bundle,
whose tracer and registry are no-ops — the uninstrumented path does
not change.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    NULL_METRICS,
    DEFAULT_TIME_BUCKETS,
)
from repro.telemetry.export import (
    chrome_trace_events,
    render_chrome_trace,
    render_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.report import aggregate_spans, render_report
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Span, SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "chrome_trace_events",
    "render_chrome_trace",
    "render_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "aggregate_spans",
    "render_report",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "SpanRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_TIME_BUCKETS",
]


class Telemetry:
    """One run's tracer + metrics registry, passed as ``telemetry=``.

    ``Telemetry()`` enables both halves.  Pass ``NULL_TRACER`` /
    ``NULL_METRICS`` explicitly to enable only one (e.g. benchmark
    harnesses want counters but not megabytes of spans).
    """

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = Tracer() if tracer is None else tracer
        self.metrics = MetricsRegistry() if metrics is None else metrics

    @classmethod
    def metrics_only(cls) -> "Telemetry":
        """Counters/gauges/histograms without span recording."""
        return cls(tracer=NULL_TRACER)

    @classmethod
    def tracing_only(cls) -> "Telemetry":
        """Span recording without a metrics registry."""
        return cls(metrics=NULL_METRICS)


class _NullTelemetry(Telemetry):
    """The disabled bundle every component defaults to."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(tracer=NULL_TRACER, metrics=NULL_METRICS)


#: Shared disabled bundle (stateless; safe as a default everywhere).
NULL_TELEMETRY = _NullTelemetry()

"""Trace exporters: Chrome trace-event JSON and plain JSONL.

The Chrome trace-event format (the JSON-array flavour) is understood
by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer.  Every tracer track becomes a named
"thread" of one process; spans render as nested slices, instants as
markers, and counter samples as counter tracks — which is how the
accountant's per-category energy shows up as a stacked area chart
above the span timeline.

Every exported event carries the full ``{"ph", "ts", "pid", "tid",
"name"}`` quintet (metadata events included, with ``ts: 0``) so that
strict validators accept the file.

The JSONL exporter writes one self-describing JSON object per line in
time order — the format for streaming consumers (``jq``, log
pipelines) that do not want to hold a whole trace in memory.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.ioutil import atomic_write_text
from repro.telemetry.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "render_chrome_trace",
    "write_chrome_trace",
    "render_jsonl",
    "write_jsonl",
]

#: The pid all tracks share (the framework is one process).
TRACE_PID = 1

#: tid reserved for counter tracks (Perfetto keys counters by name,
#: but the viewer wants a valid tid on every event).
COUNTER_TID = 0


def _track_ids(tracer: Tracer) -> Dict[str, int]:
    """Stable track-name -> tid assignment (sorted, 1-based)."""
    tracks = sorted(
        {span.track for span in tracer.spans}
        | {track for _, _, track, _ in tracer.instants}
    )
    return {track: index + 1 for index, track in enumerate(tracks)}


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Render a tracer's records as Chrome trace-event dicts."""
    tids = _track_ids(tracer)
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "ts": 0,
            "pid": TRACE_PID,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": track},
        }
        for track, tid in sorted(tids.items(), key=lambda item: item[1])
    ]
    for span in tracer.spans:
        event: Dict[str, Any] = {
            "ph": "X",
            "ts": span.start_us,
            "dur": span.dur_us,
            "pid": TRACE_PID,
            "tid": tids[span.track],
            "name": span.name,
            "cat": span.track,
        }
        if span.args:
            event["args"] = span.args
        events.append(event)
    for ts_us, name, track, args in tracer.instants:
        event = {
            "ph": "i",
            "ts": ts_us,
            "pid": TRACE_PID,
            "tid": tids[track],
            "name": name,
            "cat": track,
            "s": "t",
        }
        if args:
            event["args"] = args
        events.append(event)
    for ts_us, name, series in tracer.counters:
        events.append(
            {
                "ph": "C",
                "ts": ts_us,
                "pid": TRACE_PID,
                "tid": COUNTER_TID,
                "name": name,
                "args": series,
            }
        )
    return events


def render_chrome_trace(tracer: Tracer) -> str:
    """The trace as one JSON array string (the file Perfetto loads)."""
    return json.dumps(chrome_trace_events(tracer))


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Atomically write the Chrome trace JSON to ``path``.

    The previous trace at ``path`` survives intact if this process
    dies mid-write (see :mod:`repro.ioutil`).
    """
    return atomic_write_text(path, render_chrome_trace(tracer))


def _jsonl_records(tracer: Tracer) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    for span in tracer.spans:
        records.append(
            {
                "kind": "span",
                "ts_us": span.start_us,
                "dur_us": span.dur_us,
                "track": span.track,
                "name": span.name,
                "depth": span.depth,
                "args": span.args or {},
            }
        )
    for ts_us, name, track, args in tracer.instants:
        records.append(
            {
                "kind": "instant",
                "ts_us": ts_us,
                "track": track,
                "name": name,
                "args": args or {},
            }
        )
    for ts_us, name, series in tracer.counters:
        records.append(
            {"kind": "counter", "ts_us": ts_us, "name": name, "series": series}
        )
    records.sort(key=lambda record: record["ts_us"])
    return records


def render_jsonl(tracer: Tracer) -> str:
    """One JSON object per line, ascending timestamps."""
    return "\n".join(json.dumps(r, sort_keys=True) for r in _jsonl_records(tracer))


def write_jsonl(tracer: Tracer, path: str) -> str:
    """Atomically write the JSONL stream to ``path``."""
    text = render_jsonl(tracer)
    if text:
        text += "\n"
    return atomic_write_text(path, text)

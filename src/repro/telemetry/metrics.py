"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the numeric half of the telemetry layer: while the
tracer answers "where did the time go", the registry answers "how many
and how big" — ISS invocations, energy-cache hit rates, sampling
dispatch ratios, event-queue depths, per-reaction wall-clock
distributions.  Everything snapshots to a plain dict (and JSON) so
benchmark artifacts and dashboards can consume one format.

Instruments are created on first use and identified by name; asking
for an existing name with a different instrument type is an error (the
usual registry contract).  A :class:`NullMetricsRegistry` provides the
disabled path: shared no-op instruments, empty snapshots.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_TIME_BUCKETS",
]

#: Default histogram buckets for durations in *seconds*: 1us .. 10s,
#: roughly half-decade steps.  Chosen to straddle the costs observed in
#: this framework (an ISS call is ~100us-10ms, a gate-level run more).
DEFAULT_TIME_BUCKETS = (
    1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
    1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got %r)" % amount)
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, ratios, totals)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with percentile estimation.

    Buckets are upper bounds in ascending order; an implicit overflow
    bucket catches everything above the last bound.  Percentiles are
    estimated by linear interpolation inside the containing bucket
    (the Prometheus convention), with the recorded ``min``/``max``
    tightening the first and last occupied buckets so that small
    sample sets do not report values outside the observed range.
    """

    __slots__ = ("name", "bounds", "counts", "overflow",
                 "count", "sum", "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(upper <= lower for lower, upper in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly ascending")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if math.isnan(value):
            # A NaN would silently poison sum/mean/min/max and every
            # percentile derived from them; refuse it loudly instead.
            raise ValueError("histogram %r cannot observe NaN" % self.name)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # Linear scan: bucket lists are short (~15) and observations on
        # hot paths dominate on the left; binary search buys nothing.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``0 <= p <= 100``)."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lo = self.bounds[index - 1] if index > 0 else 0.0
                hi = self.bounds[index]
                # The global min lives in the first occupied bucket and
                # the global max in the last, so clamping with both is
                # safe for every bucket and keeps estimates inside the
                # observed range.
                lo = max(lo, self.min)
                hi = min(hi, self.max)
                if hi <= lo:
                    return lo
                fraction = (rank - cumulative) / bucket_count
                return lo + (hi - lo) * min(1.0, max(0.0, fraction))
            cumulative += bucket_count
        # Rank falls in the overflow bucket: the best bound is max.
        return self.max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Named instruments plus dict/JSON snapshots.

    Instrument *creation* is thread-safe (the co-estimation service's
    worker threads share one registry): a lock guards the first-use
    registration so two threads racing on a new name get the same
    instrument.  Updates (``inc``/``set``/``observe``) stay lock-free —
    they are single-field float mutations on hot paths, and the GIL
    already keeps them from corrupting; at worst a concurrent snapshot
    reads a value one update stale.
    """

    enabled = True

    def __init__(self) -> None:
        self._creation_lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories ------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._creation_lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    self._check_free(name, self._gauges, self._histograms)
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._creation_lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    self._check_free(name, self._counters, self._histograms)
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._creation_lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    self._check_free(name, self._counters, self._gauges)
                    instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    @staticmethod
    def _check_free(name: str, *families: Dict) -> None:
        for family in families:
            if name in family:
                raise ValueError(
                    "metric %r already registered as a different type" % name
                )

    # -- export --------------------------------------------------------------

    def histogram_instruments(self) -> Dict[str, Histogram]:
        """Live histogram instruments by name (Prometheus export reads
        bucket counts, which the summary snapshot deliberately omits)."""
        with self._creation_lock:
            return dict(self._histograms)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every instrument (JSON-serializable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def flat(self) -> Dict[str, float]:
        """Counters and gauges as one flat name->value mapping."""
        values: Dict[str, float] = {}
        values.update((n, c.value) for n, c in self._counters.items())
        values.update((n, g.value) for n, g in self._gauges.items())
        return values


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: shared no-op instruments, empty snapshots."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_TIME_BUCKETS) -> Histogram:
        return self._null_histogram

    def snapshot(self) -> Dict[str, Dict]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def histogram_instruments(self) -> Dict[str, Histogram]:
        return {}


#: Process-wide disabled registry; safe to share (it keeps no state).
NULL_METRICS = NullMetricsRegistry()

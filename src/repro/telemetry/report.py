"""Human-readable end-of-run telemetry report.

Two sections, mirroring how the paper accounts for its speedups:

* **Hottest spans** — wall-clock cost aggregated per span name, the
  "where do the CPU seconds go" view that motivates which acceleration
  to reach for (Table 1/2 are exactly this, per strategy).
* **Strategy effectiveness** — low-level simulator calls made versus
  avoided, with the hit/dispatch ratios the acceleration techniques
  are parameterized by.

The report is computed from a :class:`~repro.telemetry.Telemetry`
bundle alone, so any caller that threaded telemetry through a run can
print it (the CLI does when ``--trace``/``--metrics`` is given).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.telemetry.tracer import Tracer

__all__ = ["aggregate_spans", "render_report"]


def aggregate_spans(tracer: Tracer) -> List[Tuple[str, int, float, float]]:
    """Per span name: (``track/name``, count, total_us, mean_us).

    Sorted by total duration, largest first.
    """
    totals: Dict[str, Tuple[int, float]] = {}
    for span in tracer.spans:
        key = "%s/%s" % (span.track, span.name)
        count, total = totals.get(key, (0, 0.0))
        totals[key] = (count + 1, total + span.dur_us)
    rows = [
        (key, count, total, total / count)
        for key, (count, total) in totals.items()
    ]
    rows.sort(key=lambda row: -row[2])
    return rows


def _format_rows(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return lines


def _effectiveness_rows(flat: Dict[str, float]) -> List[List[str]]:
    """Strategy accounting from the registry's flat counters/gauges."""
    rows: List[List[str]] = []

    def row(label: str, made: float, avoided: float, ratio_label: str,
            ratio: float) -> None:
        total = made + avoided
        rows.append([
            label,
            "%d" % made,
            "%d" % avoided,
            "%d" % total,
            "%s=%.3f" % (ratio_label, ratio),
        ])

    if "strategy.cache.lookups" in flat:
        hits = flat.get("strategy.cache.hits", 0.0)
        misses = flat.get("strategy.cache.misses", 0.0)
        row("energy cache", misses, hits, "hit_rate",
            flat.get("strategy.cache_hit_rate", 0.0))
    if "strategy.sampling.dispatched" in flat:
        dispatched = flat.get("strategy.sampling.dispatched", 0.0)
        reused = flat.get("strategy.sampling.reused", 0.0)
        row("sampling", dispatched, reused, "dispatch_ratio",
            flat.get("strategy.sampling_dispatch_ratio", 0.0))
    if "strategy.macromodel.annotations" in flat:
        annotations = flat.get("strategy.macromodel.annotations", 0.0)
        row("macro-model", 0.0, annotations, "annotated", annotations)
    if "strategy.full.low_level_calls" in flat:
        calls = flat.get("strategy.full.low_level_calls", 0.0)
        row("full (baseline)", calls, 0.0, "accelerated", 0.0)
    return rows


def render_report(telemetry, top: int = 10) -> str:
    """Render the end-of-run report for one telemetry bundle."""
    lines: List[str] = ["Telemetry report", "================"]

    spans = aggregate_spans(telemetry.tracer)
    if spans:
        lines.append("")
        lines.append("Hottest spans (top %d of %d names):"
                     % (min(top, len(spans)), len(spans)))
        rows = [
            [key, "%d" % count, "%.3f" % (total / 1e3), "%.1f" % mean]
            for key, count, total, mean in spans[:top]
        ]
        lines.extend(_format_rows(
            ["span", "count", "total (ms)", "mean (us)"], rows))

    flat = telemetry.metrics.flat()
    effectiveness = _effectiveness_rows(flat)
    if effectiveness:
        lines.append("")
        lines.append("Strategy effectiveness (low-level call accounting):")
        lines.extend(_format_rows(
            ["strategy", "simulated", "avoided", "stream", "ratio"],
            effectiveness))

    highlights = [
        ("iss_calls", "ISS invocations"),
        ("hw_sim_calls", "gate-level invocations"),
        ("master.transitions", "transitions executed"),
        ("master.dispatched", "events dispatched"),
        ("datacache.hit_rate", "data-cache hit rate"),
        ("bus.grants", "bus grants"),
        ("energy.total_j", "total energy (J)"),
    ]
    present = [(label, flat[name]) for name, label in highlights if name in flat]
    if present:
        lines.append("")
        lines.append("Counters:")
        for label, value in present:
            if value == int(value) and abs(value) < 1e12:
                lines.append("  %-24s %d" % (label, int(value)))
            else:
                lines.append("  %-24s %.6g" % (label, value))

    snapshot = telemetry.metrics.snapshot()
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("Distributions:")
        for name, stats in histograms.items():
            lines.append(
                "  %-28s n=%-7d mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g"
                % (name, stats["count"], stats["mean"], stats["p50"],
                   stats["p90"], stats["p99"], stats["max"])
            )
    return "\n".join(lines)

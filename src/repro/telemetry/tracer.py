"""Span tracing for the co-estimation stack.

The tracer records *wall-clock* spans around the work the framework
does while estimating — master reactions, ISS invocations, gate-level
runs, bus kicks, strategy decisions — so that the cost structure the
paper's Tables 1/2 account for (where the CPU seconds go) is visible
per run instead of only in aggregate.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Components hold a tracer
   reference unconditionally; the disabled path is a :class:`NullTracer`
   whose methods are empty and whose ``span()`` returns one shared,
   pre-allocated no-op context manager.  Hot loops may additionally
   guard on :attr:`Tracer.enabled`, which is a plain class attribute.
2. **No I/O during the run.**  Events accumulate in lists; exporters
   (:mod:`repro.telemetry.export`) render them afterwards.
3. **Single-threaded simplicity.**  The master is single-threaded, so
   span nesting is exactly the call stack; the tracer keeps a depth
   counter only to annotate records, not to reconstruct trees.

Timestamps are microseconds since tracer creation (the Chrome
trace-event native unit), measured with ``time.perf_counter``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "SpanRecord", "Tracer", "NullTracer", "NULL_TRACER"]


class SpanRecord:
    """One finished span (plain record; exporters read the fields)."""

    __slots__ = ("name", "track", "start_us", "dur_us", "depth", "args")

    def __init__(
        self,
        name: str,
        track: str,
        start_us: float,
        dur_us: float,
        depth: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.name = name
        self.track = track
        self.start_us = start_us
        self.dur_us = dur_us
        self.depth = depth
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanRecord(%s/%s %.1fus+%.1fus)" % (
            self.track, self.name, self.start_us, self.dur_us
        )


class Span:
    """An open span; use as a context manager or call :meth:`close`.

    Extra key/value payload can be attached while the span is open with
    :meth:`set`; it lands in the exported event's ``args``.
    """

    __slots__ = ("_tracer", "name", "track", "start_us", "args")

    def __init__(self, tracer: "Tracer", name: str, track: str,
                 args: Optional[Dict[str, Any]]) -> None:
        self._tracer = tracer
        self.name = name
        self.track = track
        self.start_us = tracer._now_us()
        self.args = args

    def set(self, key: str, value: Any) -> None:
        """Attach one payload entry to the span."""
        if self.args is None:
            self.args = {}
        self.args[key] = value

    def close(self) -> None:
        tracer = self._tracer
        tracer._depth -= 1
        tracer.spans.append(
            SpanRecord(
                self.name,
                self.track,
                self.start_us,
                tracer._now_us() - self.start_us,
                tracer._depth,
                self.args,
            )
        )

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class _NullSpan:
    """Shared do-nothing span for the disabled tracer."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Records spans, instants, and counter samples in memory.

    Attributes:
        spans: finished :class:`SpanRecord` objects, close order.
        instants: ``(ts_us, name, track, args)`` point events.
        counters: ``(ts_us, name, series)`` samples; ``series`` maps a
            series label to its current value, rendered as a Chrome
            counter track (stacked in Perfetto).
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._t0 = clock()
        self._depth = 0
        self.spans: List[SpanRecord] = []
        self.instants: List[tuple] = []
        self.counters: List[tuple] = []

    def _now_us(self) -> float:
        return (self._clock() - self._t0) * 1e6

    def span(self, name: str, track: str = "master",
             args: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; close it via ``with`` or :meth:`Span.close`."""
        self._depth += 1
        return Span(self, name, track, args)

    def instant(self, name: str, track: str = "master",
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point event (e.g. a cache hit, a bus grant)."""
        self.instants.append((self._now_us(), name, track, args))

    def counter(self, name: str, series: Dict[str, float]) -> None:
        """Record one sample of a counter track (e.g. energy so far)."""
        self.counters.append((self._now_us(), name, dict(series)))

    @property
    def event_count(self) -> int:
        """Total recorded events (spans + instants + counter samples)."""
        return len(self.spans) + len(self.instants) + len(self.counters)


class NullTracer(Tracer):
    """Disabled tracer: every operation is a no-op.

    ``span()`` hands back one shared no-op span object, so the cost of
    an instrumented call site is two attribute lookups and an empty
    method call — unmeasurable next to a single ISS instruction.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, track: str = "master",
             args: Optional[Dict[str, Any]] = None) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def instant(self, name: str, track: str = "master",
                args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def counter(self, name: str, series: Dict[str, float]) -> None:
        pass


#: Process-wide disabled tracer; safe to share (it keeps no state).
NULL_TRACER = NullTracer()

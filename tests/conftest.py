"""Shared test configuration."""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")

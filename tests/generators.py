"""Hypothesis strategies for random CFSMs, expressions, and s-graphs.

Two generator families:

* ``sw_*`` — unrestricted integer semantics, used to check that the
  code generator + ISS agree with the behavioral interpreter on
  arbitrary (signed, wide) values and every operator.
* ``hw_*`` — restricted to the subset the hardware datapath implements
  with identical semantics at a given bit width: non-negative values
  that cannot overflow/underflow during evaluation, and no
  MUL/DIV/MOD.  Used to check gate-level synthesis against behavioral
  execution bit-for-bit.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.cfsm.expr import (
    BinaryOp,
    Const,
    EventValue,
    UnaryOp,
    Var,
)
from repro.cfsm.sgraph import Assign, Emit, If, Loop, SharedRead, SharedWrite

VAR_NAMES = ("a", "b", "c", "d")
EVENT_IN = "IN"
EVENT_OUT = "OUT"

SW_BINOPS = (
    "ADD", "SUB", "MUL", "DIV", "MOD", "AND", "OR", "XOR", "SHL", "SHR",
    "EQ", "NE", "LT", "LE", "GT", "GE", "LAND", "LOR",
)
SW_UNOPS = ("NEG", "NOT", "BNOT")

# Ops whose unsigned fixed-width result equals the unbounded-integer
# result whenever both operands are small non-negative numbers.
HW_SAFE_BINOPS = ("ADD", "AND", "OR", "XOR", "EQ", "NE", "LT", "LE", "GT", "GE",
                  "LAND", "LOR")


def sw_values():
    """Operand values for software semantics tests."""
    return st.integers(min_value=-(2 ** 20), max_value=2 ** 20)


def hw_values():
    """Operand values that stay well inside a 16-bit datapath."""
    return st.integers(min_value=0, max_value=250)


def _expr(depth: int, leaf, binops, unops):
    if depth <= 0:
        return leaf
    sub = _expr(depth - 1, leaf, binops, unops)
    strategies = [
        leaf,
        st.builds(BinaryOp, st.sampled_from(binops), sub, sub),
    ]
    if unops:
        strategies.append(st.builds(UnaryOp, st.sampled_from(unops), sub))
    return st.one_of(strategies)


def sw_exprs(depth: int = 3):
    """Expressions over the full operator set and wide constants."""
    leaf = st.one_of(
        st.builds(Const, sw_values()),
        st.builds(Var, st.sampled_from(VAR_NAMES)),
        st.just(EventValue(EVENT_IN)),
    )
    # Shift amounts are masked by the semantics, so any value is legal.
    return _expr(depth, leaf, SW_BINOPS, SW_UNOPS)


def hw_exprs(depth: int = 2):
    """Expressions the 16-bit datapath evaluates identically.

    Additions of small values cannot wrap; comparisons see equal
    operands in both engines; logical ops are bitwise.
    """
    leaf = st.one_of(
        st.builds(Const, hw_values()),
        st.builds(Var, st.sampled_from(VAR_NAMES)),
        st.just(EventValue(EVENT_IN)),
    )
    return _expr(depth, leaf, HW_SAFE_BINOPS, ())


def _statements(expr_strategy, depth: int, allow_shared: bool,
                mask_stores: bool = False):
    if mask_stores:
        # Keep variables bounded across loop iterations so the unsigned
        # fixed-width datapath cannot wrap where Python would not.
        stored = expr_strategy.map(lambda e: BinaryOp("AND", e, Const(0xFF)))
    else:
        stored = expr_strategy
    assign_stmt = st.builds(Assign, st.sampled_from(VAR_NAMES), stored)
    emit_stmt = st.builds(Emit, st.just(EVENT_OUT), expr_strategy)
    leaves = [assign_stmt, emit_stmt]
    if allow_shared:
        leaves.append(
            st.builds(
                SharedRead,
                st.sampled_from(VAR_NAMES),
                st.integers(min_value=0, max_value=15).map(Const),
            )
        )
        leaves.append(
            st.builds(
                SharedWrite,
                st.integers(min_value=0, max_value=15).map(Const),
                stored,
            )
        )
    leaf = st.one_of(leaves)
    if depth <= 0:
        return leaf
    sub_block = st.lists(
        _statements(expr_strategy, depth - 1, allow_shared, mask_stores),
        min_size=0, max_size=3,
    )
    if_stmt = st.builds(If, expr_strategy, sub_block, sub_block)
    loop_stmt = st.builds(
        Loop,
        st.integers(min_value=0, max_value=4).map(Const),
        st.lists(_statements(expr_strategy, depth - 1, allow_shared, mask_stores),
                 min_size=1, max_size=3),
    )
    return st.one_of(leaf, if_stmt, loop_stmt)


def sw_bodies(max_statements: int = 5, allow_shared: bool = True):
    """Random transition bodies for software equivalence tests."""
    return st.lists(
        _statements(sw_exprs(2), 2, allow_shared),
        min_size=1,
        max_size=max_statements,
    )


def hw_bodies(max_statements: int = 4, allow_shared: bool = True):
    """Random transition bodies for hardware equivalence tests."""
    return st.lists(
        _statements(hw_exprs(2), 1, allow_shared, mask_stores=True),
        min_size=1,
        max_size=max_statements,
    )


def var_bindings(values):
    """Initial variable bindings over the shared pool."""
    return st.fixed_dictionaries({name: values for name in VAR_NAMES})

"""Integration: the acceleration techniques against the full baseline.

These tests pin the paper's qualitative claims:

* energy caching introduces **no** energy error for a processor whose
  instruction power model is data-independent (Table 1 discussion),
  while reducing low-level simulator invocations;
* macro-modeling is conservative — it over-estimates (Table 2) — but
  preserves the ranking of configurations (Figure 6);
* sampling reduces invocations with bounded error.
"""

import pytest

from repro.core import PowerCoEstimator
from repro.systems import tcpip


@pytest.fixture(scope="module")
def estimator():
    bundle = tcpip.build_system(dma_block_words=4, num_packets=3)
    est = PowerCoEstimator(bundle.network, bundle.config)
    est._bundle = bundle
    return est


@pytest.fixture(scope="module")
def full(estimator):
    return estimator.estimate(estimator._bundle.stimuli(), strategy="full")


def test_caching_is_exact_for_data_independent_model(estimator, full):
    """Software paths cache exactly (data-independent instruction power
    model); hardware paths have a residual data-dependent spread below
    the variance threshold, so the total error is bounded by it but not
    identically zero — consistent with the paper's Table 1 discussion
    of when caching introduces error."""
    cached = estimator.estimate(estimator._bundle.stimuli(), strategy="caching")
    assert cached.report.total_energy_j == pytest.approx(
        full.report.total_energy_j, rel=1e-3
    )
    assert cached.report.end_time_ns == pytest.approx(
        full.report.end_time_ns, rel=1e-3
    )


def test_caching_reduces_low_level_invocations(estimator, full):
    cached = estimator.estimate(estimator._bundle.stimuli(), strategy="caching")
    full_calls = full.report.iss_invocations + full.report.hw_invocations
    cached_calls = cached.report.iss_invocations + cached.report.hw_invocations
    assert cached_calls < full_calls
    assert cached.report.strategy_stats["cache_hits"] > 0


def test_macromodel_overestimates(estimator, full):
    macro = estimator.estimate(estimator._bundle.stimuli(), strategy="macromodel")
    assert macro.report.total_energy_j > full.report.total_energy_j
    error = macro.report.energy_error_vs(full.report)
    assert error < 60.0  # conservative, but not wildly off


def test_macromodel_never_invokes_low_level(estimator):
    macro = estimator.estimate(estimator._bundle.stimuli(), strategy="macromodel")
    assert macro.report.iss_invocations == 0
    assert macro.report.hw_invocations == 0


def test_sampling_bounded_error(estimator, full):
    sampled = estimator.estimate(estimator._bundle.stimuli(), strategy="sampling")
    error = sampled.report.energy_error_vs(full.report)
    assert error < 10.0
    stats = sampled.report.strategy_stats
    assert stats["reused"] > 0


def test_behaviour_identical_across_strategies(estimator, full):
    """Acceleration changes cost estimates, never system behaviour:
    every strategy executes the same transitions."""
    for strategy in ("caching", "macromodel", "sampling"):
        run = estimator.estimate(estimator._bundle.stimuli(), strategy=strategy)
        assert run.report.transitions == full.report.transitions, strategy


def test_unknown_strategy_rejected(estimator):
    with pytest.raises(ValueError):
        estimator.estimate(estimator._bundle.stimuli(), strategy="warp-drive")


def test_strategy_instances_accepted(estimator, full):
    from repro.core.caching import CachingStrategy, EnergyCacheConfig

    strategy = CachingStrategy(EnergyCacheConfig(thresh_iss_calls=1))
    run = estimator.estimate(estimator._bundle.stimuli(), strategy=strategy)
    assert run.report.strategy_name == "caching"

"""Integration: the automotive dashboard controller."""

import pytest

from repro.core import PowerCoEstimator
from repro.systems import automotive


@pytest.fixture(scope="module")
def result():
    bundle = automotive.build_system(duration_ns=200_000.0)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    return estimator.estimate(bundle.stimuli(), strategy="full")


def test_all_processes_react(result):
    transitions = result.report.transitions
    for name in ("speedometer", "odometer", "belt_alarm", "fuel_gauge",
                 "display_ctrl"):
        assert transitions.get(name, 0) > 0, name


def test_belt_alarm_fires():
    """The driver ignores the belt for ALARM_TICKS ticks: the alarm
    event must be raised and then cleared when the belt is fastened."""
    bundle = automotive.build_system(duration_ns=400_000.0)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    run = estimator.estimate(bundle.stimuli(), strategy="full")
    # The display controller writes the alarm state to the frame
    # buffer; the last write is the cleared state (0).
    alarm_word = run.master.shared_memory.words.get(automotive.DISPLAY_ALARM)
    assert alarm_word == 0
    # And it must have reacted to at least two ALARM events (on + off).
    assert run.report.transitions["display_ctrl"] >= 2


def test_display_refreshes_go_over_bus(result):
    assert result.master.bus.total_grants > 0
    assert result.master.bus.arbiter.grants.get("display_ctrl", 0) > 0


def test_rtos_interleaves_software_tasks(result):
    rtos = result.master.rtos
    assert rtos.dispatches > 5
    assert rtos.context_switches > 0


def test_speed_updates_tracked(result):
    """Frame buffer holds the latest speed segment pattern."""
    words = result.master.shared_memory.words
    segments = [words.get(automotive.DISPLAY_SPEED + i) for i in range(4)]
    assert any(segment is not None for segment in segments)


def test_hw_and_sw_energy_present(result):
    assert result.report.by_category.get("hw", 0) > 0
    assert result.report.by_category.get("sw", 0) > 0
    assert result.report.by_category.get("bus", 0) > 0


def test_caching_consistent_on_automotive():
    bundle = automotive.build_system(duration_ns=150_000.0)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    full = estimator.estimate(bundle.stimuli(), strategy="full")
    cached = estimator.estimate(bundle.stimuli(), strategy="caching")
    assert cached.report.total_energy_j == pytest.approx(
        full.report.total_energy_j, rel=1e-3
    )

"""Integration: kill a checkpointed sweep mid-run, resume, compare.

A resumed sweep must re-run only the unfinished points and reproduce
the uninterrupted sweep's results byte for byte — for both the inline
(``jobs=1``) and pooled (``jobs=2``) paths.
"""

import dataclasses
import json
import os

import pytest

from repro.__main__ import main
from repro.core.explorer import parallel_sweep, priority_permutations
from repro.resilience import CheckpointError, load_checkpoint
from repro.systems import tcpip

BUILDER = "repro.systems.tcpip:build_system"
BUILDER_KWARGS = {"num_packets": 1, "packet_period_ns": 30_000.0}
DMA_SIZES = [4, 16]


def _assignments(count=2):
    return priority_permutations(list(tcpip.BUS_MASTERS))[:count]


def _canonical(points):
    rows = []
    for point in points:
        payload = dataclasses.asdict(point.report)
        payload = {
            key: value
            for key, value in payload.items()
            if not key.endswith("_seconds")
        }
        rows.append(
            (
                point.dma_block_words,
                point.priority_label,
                json.dumps(payload, sort_keys=True, default=repr),
            )
        )
    return rows


class _KillAfter(Exception):
    """Raised by the on_point hook to simulate a mid-sweep kill."""


def _killing_hook(survivors):
    seen = {"n": 0}

    def hook(result):
        seen["n"] += 1
        if seen["n"] >= survivors:
            raise _KillAfter()

    return hook


@pytest.mark.parametrize("jobs", [1, 2])
def test_kill_and_resume_matches_uninterrupted(tmp_path, jobs):
    assignments = _assignments()
    checkpoint = str(tmp_path / ("sweep-%d.ckpt" % jobs))

    reference_points, _ = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=jobs,
        builder_kwargs=BUILDER_KWARGS,
    )

    # First attempt dies after two completed points.
    with pytest.raises(_KillAfter):
        parallel_sweep(
            BUILDER, DMA_SIZES, assignments, jobs=jobs,
            builder_kwargs=BUILDER_KWARGS,
            checkpoint_path=checkpoint,
            on_point=_killing_hook(2),
        )

    # The checkpoint holds exactly the finished points, durably.
    partial = load_checkpoint(
        checkpoint,
        signature=json.load(open(checkpoint))["signature"],
    )
    assert len(partial) == 2

    resumed_points, resumed_results = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=jobs,
        builder_kwargs=BUILDER_KWARGS,
        checkpoint_path=checkpoint,
        resume_path=checkpoint,
    )
    restored = [r for r in resumed_results if r.ok and r.attempts == 0]
    rerun = [r for r in resumed_results if r.ok and r.attempts > 0]
    assert len(restored) == 2
    assert len(rerun) == len(DMA_SIZES) * len(assignments) - 2
    assert _canonical(resumed_points) == _canonical(reference_points)

    # The final checkpoint covers the whole sweep.
    final = load_checkpoint(
        checkpoint,
        signature=json.load(open(checkpoint))["signature"],
    )
    assert len(final) == len(DMA_SIZES) * len(assignments)


def test_resume_with_different_sweep_is_refused(tmp_path):
    checkpoint = str(tmp_path / "sweep.ckpt")
    parallel_sweep(
        BUILDER, [4], _assignments(1), jobs=1,
        builder_kwargs=BUILDER_KWARGS, checkpoint_path=checkpoint,
    )
    with pytest.raises(CheckpointError):
        parallel_sweep(
            BUILDER, [4], _assignments(1), jobs=1, strategy="full",
            builder_kwargs=BUILDER_KWARGS, resume_path=checkpoint,
        )


def test_subset_checkpoint_seeds_superset_sweep(tmp_path):
    """The point list is outside the signature by design."""
    checkpoint = str(tmp_path / "sweep.ckpt")
    assignments = _assignments(1)
    parallel_sweep(
        BUILDER, [4], assignments, jobs=1,
        builder_kwargs=BUILDER_KWARGS, checkpoint_path=checkpoint,
    )
    points, results = parallel_sweep(
        BUILDER, [4, 16], assignments, jobs=1,
        builder_kwargs=BUILDER_KWARGS, resume_path=checkpoint,
    )
    assert len(points) == 2
    restored = [r for r in results if r.attempts == 0]
    assert len(restored) == 1
    assert all(r.ok for r in results)


def test_cli_checkpoint_resume_out_is_byte_identical(tmp_path, capsys):
    checkpoint = str(tmp_path / "cli.ckpt")
    first_out = str(tmp_path / "first.json")
    second_out = str(tmp_path / "second.json")
    argv = [
        "explore", "--dma", "4", "16", "--packets", "1",
        "--checkpoint", checkpoint,
    ]
    assert main(argv + ["--out", first_out]) == 0
    capsys.readouterr()

    # A full checkpoint exists; the resumed run restores every point.
    assert main(argv + ["--resume", checkpoint, "--out", second_out]) == 0
    output = capsys.readouterr().out
    assert "restored from" in output

    with open(first_out, "rb") as first, open(second_out, "rb") as second:
        assert first.read() == second.read()
    assert os.path.getsize(first_out) > 0

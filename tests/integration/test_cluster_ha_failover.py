"""Integration test of coordinator failover (repro.cluster.ha).

The SIGKILL-equivalent scenario, in-process: a leader coordinator is
deposed *mid-sweep* (its workers fence its dispatches the moment they
have obeyed a newer epoch — exactly what a kill -9 plus a standby
election produces), and the successor replays the journal, restores
membership, and re-dispatches the orphaned sweep.

The acceptance bar is the chaos contract from docs/cluster-ha.md:

* every sweep job executes **exactly once** across both leaderships,
  and every dispatch of a given job carries the **same seed** — a
  failover must never run a job twice with different seeds;
* the merged rows are **byte-identical** to a single-process sweep;
* the deposed coordinator stays fenced: its data plane answers
  503 ``not_leader`` and it appends nothing more to its journal.

scripts/cluster_smoke.py drives the same scenario with real processes
and a real SIGKILL.
"""

import json

import pytest

from repro.cluster.coordinator import (
    ROLE_FENCED,
    ROLE_LEADER,
    ClusterConfig,
    ClusterCoordinator,
)
from repro.cluster.membership import LIVE, MembershipConfig
from repro.cluster.protocol import REASON_NOT_LEADER
from repro.cluster.worker import ClusterWorker, WorkerConfig
from repro.core.explorer import (
    parallel_sweep,
    priority_permutations,
    sweep_summary_rows,
)
from repro.service.api import parse_request
from repro.systems import system_names, tcpip

BUILDER = "repro.systems.tcpip:build_system"
BUILDER_KWARGS = {"num_packets": 1, "packet_period_ns": 30_000.0}
SWEEP_PARAMS = {"dma": [2], "packets": 1, "period_ns": 30_000.0}
POINTS = 6  # one DMA size x 3! priority assignments


def canonical(rows):
    """The exact serialization ``repro explore --out`` writes."""
    return json.dumps(rows, indent=1, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def baseline_rows():
    points, _ = parallel_sweep(
        BUILDER,
        SWEEP_PARAMS["dma"],
        priority_permutations(list(tcpip.BUS_MASTERS)),
        strategy="caching",
        jobs=1,
        builder_kwargs=dict(BUILDER_KWARGS),
    )
    assert len(points) == POINTS
    return canonical(sweep_summary_rows(points))


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class HaHarness:
    """Two coordinator replicas over one worker set, no sockets.

    The shared transport routes dispatches into in-process
    :class:`ClusterWorker` cores and records every ``/run`` body, so
    the exactly-once / same-seed acceptance can be asserted over the
    union of both leaders' dispatches.
    """

    def __init__(self, tmp_path, worker_ids):
        self.clock = FakeClock()
        self.control_dir = str(tmp_path / "control")
        self.workers = {}
        self.dispatch_log = []  # (label, seed, status) per /run spec job
        self.on_dispatch = None
        for worker_id in worker_ids:
            self.workers[worker_id] = ClusterWorker(WorkerConfig(
                coordinator_url="http://coordinator.invalid",
                worker_id=worker_id, warm_tier=False,
            ))

    def make_coordinator(self, coordinator_id):
        return ClusterCoordinator(
            ClusterConfig(
                membership=MembershipConfig(suspect_after_s=3600.0,
                                            dead_after_s=7200.0),
                coordinator_id=coordinator_id,
                control_dir=self.control_dir,
                backoff_base_s=0.0,
                orphan_grace_s=0.0,
                recover_orphan_sweeps=False,  # driven explicitly below
            ),
            transport=self._transport,
            wall_clock=self.clock,
        )

    def _transport(self, url, path, body, timeout_s):
        worker_id = url.replace("http://", "")
        if self.on_dispatch is not None and path == "/run":
            self.on_dispatch(worker_id, body)
        worker = self.workers[worker_id]
        if path == "/run":
            status, reply = worker.handle_run(body)
            job = body.get("job") or {}
            if body.get("kind") == "spec":
                self.dispatch_log.append(
                    (job.get("label"), job.get("seed"), status)
                )
            return status, reply
        if path == "/decommission":
            return 200, worker.decommission(
                str(body.get("reason") or "requested"))
        raise AssertionError("unexpected dispatch path %r" % path)

    def replicate(self, source, replica):
        status, body = source.journal_entries_since(
            replica.journal.tip_seq())
        assert status == 200
        return replica.apply_replicated(body["entries"])

    def assert_exactly_once_same_seed(self):
        """The chaos acceptance over the union of all dispatches."""
        seeds = {}
        executions = {}
        for label, seed, status in self.dispatch_log:
            seeds.setdefault(label, set()).add(seed)
            if status == 200:
                executions[label] = executions.get(label, 0) + 1
        for label, seen in sorted(seeds.items()):
            assert len(seen) == 1, (
                "job %r dispatched with %d different seeds" % (label,
                                                               len(seen))
            )
        assert set(executions) == set(seeds)
        for label, count in sorted(executions.items()):
            assert count == 1, (
                "job %r executed %d times" % (label, count)
            )


def test_takeover_mid_sweep_redispatches_exactly_once(tmp_path,
                                                      baseline_rows):
    """Satellite: kill the active mid-sweep (during its shard work),
    let the standby take over, and require byte-identical rows with
    every job executed exactly once."""
    harness = HaHarness(tmp_path, ["alpha"])
    checkpoint = str(tmp_path / "sweep.ckpt.jsonl")

    active = harness.make_coordinator("a")
    active.set_url("http://a")
    assert active.try_elect()
    assert active.role == ROLE_LEADER and active.epoch == 1
    active.register_worker("alpha", "http://alpha")

    # The standby shadows the leader's journal (as its tail loop would).
    standby = harness.make_coordinator("b")
    standby.set_url("http://b")
    harness.replicate(active, standby)

    # Mid-sweep, the worker learns of a newer epoch — the in-process
    # equivalent of `kill -9` on the active while the standby's
    # election reaches the worker set.  From then on the old leader's
    # dispatches are fenced with 409 stale-epoch.
    dispatches = {"n": 0}

    def depose_on_third_dispatch(worker_id, body):
        if body.get("kind") != "spec":
            return
        dispatches["n"] += 1
        if dispatches["n"] == 3:
            with harness.workers[worker_id]._lock:
                harness.workers[worker_id].epoch = 2

    harness.on_dispatch = depose_on_third_dispatch
    status, body = active.run_sweep(
        dict(SWEEP_PARAMS, checkpoint=checkpoint))
    harness.on_dispatch = None
    assert status == 503
    assert body["reason"] == REASON_NOT_LEADER
    assert "fenced mid-sweep" in body["detail"]
    assert active.role == ROLE_FENCED
    orphan_sweep_id = body["sweep_id"]

    # Journal state at the moment of death: the sweep is started, not
    # completed — exactly what tells the successor to re-dispatch it.
    harness.replicate(active, standby)
    fenced_tip = active.journal.tip_seq()

    # The lease expires (the deposed active stopped renewing) and the
    # standby takes over with a strictly higher epoch.
    harness.clock.advance(10.0)
    assert standby.try_elect()
    assert standby.role == ROLE_LEADER
    assert standby.epoch == 2
    assert standby.membership.states()["alpha"] == LIVE
    assert standby.membership.url_of("alpha") == "http://alpha"
    snapshot = standby.ha_snapshot()
    assert snapshot["failovers"] == 1
    assert snapshot["orphaned_sweeps"] == [orphan_sweep_id]

    # Takeover recovery: the orphan re-dispatches exactly once, resumes
    # the handed-off checkpoint, and the rows are byte-identical.
    recovered = standby.recover_orphaned_sweeps(grace_s=0.0)
    assert len(recovered) == 1
    sweep_id, status, body = recovered[0]
    assert sweep_id == orphan_sweep_id
    assert status == 200
    assert body["status"] == "ok", body
    assert body["sweep_id"] == orphan_sweep_id
    assert body["restored"] == 2  # the two points the old leader saved
    assert canonical(body["rows"]) == baseline_rows
    assert standby.ha_snapshot()["orphaned_sweeps"] == []

    harness.assert_exactly_once_same_seed()

    # The deposed coordinator stays fenced: no data plane, no journal.
    status, body = active.run_sweep(dict(SWEEP_PARAMS))
    assert status == 503 and body["reason"] == REASON_NOT_LEADER
    with pytest.raises(Exception) as excinfo:
        active.submit(parse_request(
            {"system": "fig1", "strategy": "caching"},
            known_systems=system_names(),
        ))
    assert getattr(excinfo.value, "status", None) == 503
    assert getattr(excinfo.value, "reason", None) == REASON_NOT_LEADER
    assert active.journal.tip_seq() == fenced_tip


def test_takeover_without_checkpoint_reruns_from_scratch(tmp_path,
                                                         baseline_rows):
    """A leader killed before any point completes: the successor
    re-runs the whole sweep (nothing to restore) — still exactly once
    per job, still byte-identical."""
    harness = HaHarness(tmp_path, ["alpha"])
    active = harness.make_coordinator("a")
    active.set_url("http://a")
    assert active.try_elect()
    active.register_worker("alpha", "http://alpha")
    standby = harness.make_coordinator("b")
    standby.set_url("http://b")

    def depose_immediately(worker_id, body):
        if body.get("kind") == "spec":
            with harness.workers[worker_id]._lock:
                harness.workers[worker_id].epoch = 2

    harness.on_dispatch = depose_immediately
    status, body = active.run_sweep(dict(SWEEP_PARAMS))
    harness.on_dispatch = None
    assert status == 503 and body["reason"] == REASON_NOT_LEADER

    harness.replicate(active, standby)
    harness.clock.advance(10.0)
    assert standby.try_elect()
    recovered = standby.recover_orphaned_sweeps(grace_s=0.0)
    assert len(recovered) == 1
    _, status, body = recovered[0]
    assert status == 200 and body["status"] == "ok", body
    assert body["restored"] == 0
    assert canonical(body["rows"]) == baseline_rows
    harness.assert_exactly_once_same_seed()

"""Integration tests of the co-estimation cluster.

Real coordinator + real worker cores, no sockets: the coordinator's
injectable transport routes ``/run`` bodies straight into in-process
:class:`~repro.cluster.worker.ClusterWorker` instances.  That keeps the
full dispatch / re-dispatch / handoff machinery and the full worker
execution funnel (``execute_spec`` → the paper's estimators) under
test, while failures are injected deterministically instead of by
killing OS processes (scripts/cluster_smoke.py covers that layer).

The load-bearing property throughout is *byte-identity*: whatever the
cluster does — worker deaths, re-dispatch, drain handoffs, checkpoint
resume on different workers, limplock quarantines — the sweep summary
rows must equal a plain single-process ``parallel_sweep`` byte for
byte.
"""

import json
import threading

import pytest

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.membership import (
    DEAD,
    DECOMMISSIONED,
    LIMPLOCKED,
    MembershipConfig,
)
from repro.cluster.protocol import TransportError
from repro.cluster.worker import ClusterWorker, WorkerConfig
from repro.core.explorer import (
    parallel_sweep,
    priority_permutations,
    sweep_summary_rows,
)
from repro.service.api import parse_request
from repro.systems import system_names, tcpip

BUILDER = "repro.systems.tcpip:build_system"
BUILDER_KWARGS = {"num_packets": 1, "packet_period_ns": 30_000.0}
SWEEP_PARAMS = {"dma": [2], "packets": 1, "period_ns": 30_000.0}
POINTS = 6  # one DMA size x 3! priority assignments


def canonical(rows):
    """The exact serialization ``repro explore --out`` writes."""
    return json.dumps(rows, indent=1, sort_keys=True) + "\n"


@pytest.fixture(scope="module")
def baseline_rows():
    """Single-process ground truth for the fig.7 slice under test."""
    points, _ = parallel_sweep(
        BUILDER,
        SWEEP_PARAMS["dma"],
        priority_permutations(list(tcpip.BUS_MASTERS)),
        strategy="caching",
        jobs=1,
        builder_kwargs=dict(BUILDER_KWARGS),
    )
    assert len(points) == POINTS
    return canonical(sweep_summary_rows(points))


class InProcessCluster:
    """Coordinator + worker cores wired through a fake transport.

    ``fail`` holds worker ids whose next dispatch raises
    :class:`TransportError` (a crashed process); ``on_dispatch`` is a
    pre-dispatch hook the failure-injection tests use to kill or drain
    a worker at an exact point in the sweep.
    """

    def __init__(self, worker_ids, clock=None, **config):
        self.workers = {}
        self.fail = set()
        self.on_dispatch = None
        config.setdefault("backoff_base_s", 0.0)
        # No real heartbeats flow in-process, so liveness timeouts are
        # parked far away; deaths come from TransportError injection.
        config.setdefault(
            "membership",
            MembershipConfig(suspect_after_s=3600.0, dead_after_s=7200.0),
        )
        kwargs = {"transport": self._transport}
        if clock is not None:
            kwargs["clock"] = clock
        self.coordinator = ClusterCoordinator(ClusterConfig(**config),
                                              **kwargs)
        for worker_id in worker_ids:
            self.add_worker(worker_id)

    def add_worker(self, worker_id, **worker_kwargs):
        worker_kwargs.setdefault("warm_tier", False)
        worker = ClusterWorker(WorkerConfig(
            coordinator_url="http://coordinator.invalid",
            worker_id=worker_id, **worker_kwargs,
        ))
        self.workers[worker_id] = worker
        self.coordinator.register_worker(worker_id,
                                         "http://%s" % worker_id)
        return worker

    def _transport(self, url, path, body, timeout_s):
        worker_id = url.replace("http://", "")
        if self.on_dispatch is not None:
            self.on_dispatch(worker_id, path)
        if worker_id in self.fail:
            raise TransportError("worker %s unreachable" % worker_id)
        worker = self.workers[worker_id]
        if path == "/run":
            return worker.handle_run(body)
        if path == "/decommission":
            return 200, worker.decommission(
                str(body.get("reason") or "requested"))
        raise AssertionError("unexpected dispatch path %r" % path)


def make_estimate_request(**extra):
    body = {"system": "fig1", "strategy": "caching"}
    body.update(extra)
    return parse_request(body, known_systems=system_names())


def test_estimate_round_trips_through_a_real_worker():
    cluster = InProcessCluster(["w0", "w1"])
    pending, coalesced = cluster.coordinator.submit(make_estimate_request())
    assert pending.status == 200 and not coalesced
    body = pending.body
    assert body["status"] == "ok"
    assert body["total_energy_j"] > 0.0
    assert body["cluster"]["worker"] in ("w0", "w1")
    assert body["fingerprint"]
    # The same request is deterministic wherever it runs.
    again, _ = cluster.coordinator.submit(make_estimate_request())
    assert again.body["total_energy_j"] == body["total_energy_j"]
    assert again.body["cluster"]["worker"] == body["cluster"]["worker"]


def test_cluster_sweep_matches_single_node_byte_for_byte(baseline_rows):
    cluster = InProcessCluster(["w0", "w1", "w2"])
    status, body = cluster.coordinator.run_sweep(dict(SWEEP_PARAMS))
    assert status == 200
    assert body["status"] == "ok"
    assert body["completed"] == POINTS
    assert sum(body["workers"].values()) == POINTS
    assert canonical(body["rows"]) == baseline_rows


def test_worker_death_mid_sweep_redispatches_byte_identically(
        baseline_rows):
    cluster = InProcessCluster(["w0", "w1", "w2"])
    dispatches = {}
    victim = {}

    def kill_on_second_dispatch(worker_id, path):
        if path != "/run":
            return
        dispatches[worker_id] = dispatches.get(worker_id, 0) + 1
        victim.setdefault("id", worker_id)
        if worker_id == victim["id"] and dispatches[worker_id] == 2:
            cluster.fail.add(worker_id)  # crashes mid-job, job unfinished

    cluster.on_dispatch = kill_on_second_dispatch
    status, body = cluster.coordinator.run_sweep(dict(SWEEP_PARAMS))
    assert status == 200
    assert body["status"] == "ok", body
    assert canonical(body["rows"]) == baseline_rows
    states = cluster.coordinator.membership.states()
    assert states[victim["id"]] == DEAD
    assert body["redispatches"] >= 1
    assert victim["id"] not in body["workers"] or \
        body["workers"][victim["id"]] == 1


def test_draining_worker_hands_shard_off_without_penalty(baseline_rows):
    cluster = InProcessCluster(["w0", "w1", "w2"])
    dispatches = {}
    victim = {}

    def drain_before_second_dispatch(worker_id, path):
        if path != "/run":
            return
        dispatches[worker_id] = dispatches.get(worker_id, 0) + 1
        victim.setdefault("id", worker_id)
        if worker_id == victim["id"] and dispatches[worker_id] == 2:
            # Operator decommissions the node between two jobs: the
            # worker answers 503 and the coordinator hands its shard
            # to the ring successors.
            cluster.workers[worker_id].decommission("scale-down")

    cluster.on_dispatch = drain_before_second_dispatch
    status, body = cluster.coordinator.run_sweep(dict(SWEEP_PARAMS))
    assert status == 200
    assert body["status"] == "ok", body
    assert canonical(body["rows"]) == baseline_rows
    states = cluster.coordinator.membership.states()
    assert states[victim["id"]] == DECOMMISSIONED
    # A planned drain is a handoff, not a failure: nothing is counted
    # against the re-dispatch budget.
    assert body["redispatches"] == 0


def test_checkpoint_shard_handoff_across_workers(tmp_path, baseline_rows):
    """Satellite (c): a partially-drained shard checkpointed by one
    worker resumes on a *different* worker, and the merged output is
    byte-identical — including when the resuming process is the
    single-node ``repro explore`` path rather than a cluster."""
    checkpoint = str(tmp_path / "sweep.ckpt.jsonl")

    # Phase 1: a one-worker cluster crashes after two completed points.
    first = InProcessCluster(["alpha"])
    dispatches = {"n": 0}

    def crash_on_third_dispatch(worker_id, path):
        if path != "/run":
            return
        dispatches["n"] += 1
        if dispatches["n"] == 3:
            first.fail.add(worker_id)

    first.on_dispatch = crash_on_third_dispatch
    status, body = first.coordinator.run_sweep(
        dict(SWEEP_PARAMS, checkpoint=checkpoint))
    assert status == 200
    assert body["status"] == "partial"
    assert body["completed"] == 2
    assert len(body["pending_labels"]) == POINTS - 2

    # Phase 2: a fresh coordinator and a different worker resume from
    # the handed-off checkpoint; only the remaining points run.
    second = InProcessCluster(["beta"])
    status, body = second.coordinator.run_sweep(
        dict(SWEEP_PARAMS, checkpoint=checkpoint, resume=True))
    assert status == 200
    assert body["status"] == "ok", body
    assert body["restored"] == 2
    assert body["workers"] == {"beta": POINTS - 2}
    assert canonical(body["rows"]) == baseline_rows

    # Phase 3: the cluster checkpoint is signature-compatible with the
    # single-node explorer — ``repro explore --resume`` restores every
    # cluster-computed point without re-running anything.
    points, _ = parallel_sweep(
        BUILDER,
        SWEEP_PARAMS["dma"],
        priority_permutations(list(tcpip.BUS_MASTERS)),
        strategy="caching",
        jobs=1,
        builder_kwargs=dict(BUILDER_KWARGS),
        resume_path=checkpoint,
    )
    assert canonical(sweep_summary_rows(points)) == baseline_rows


class ThreadLocalClock:
    """A per-thread fake clock.

    The coordinator measures a dispatch's latency in the dispatching
    thread (``clock()`` before and after the transport call), so
    advancing only the calling thread's clock attributes injected
    latency to exactly the worker being dispatched to — concurrent
    sweep threads never pollute each other's measurements."""

    def __init__(self, start=100.0):
        self._local = threading.local()
        self._start = start

    def __call__(self):
        return getattr(self._local, "now", self._start)

    def advance(self, seconds):
        self._local.now = self() + seconds


def test_limplock_quarantine_keeps_results_and_reroutes(baseline_rows):
    clock = ThreadLocalClock()
    cluster = InProcessCluster(
        ["w0", "w1", "limpy"],
        clock=clock,
        membership=MembershipConfig(
            suspect_after_s=3600.0, dead_after_s=7200.0,
            limp_factor=4.0, limp_min_samples=1, limp_min_gap_s=0.25,
        ),
    )

    def limp(worker_id, path):
        if path == "/run":
            # An alive-but-degraded node: 40x its peers' latency.
            clock.advance(2.0 if worker_id == "limpy" else 0.05)

    cluster.on_dispatch = limp
    status, body = cluster.coordinator.run_sweep(dict(SWEEP_PARAMS))
    assert status == 200
    assert body["status"] == "ok", body
    # Quarantine never discards completed work: the rows are intact.
    assert canonical(body["rows"]) == baseline_rows

    cluster.coordinator.refresh_membership()
    counters = cluster.coordinator._counters()
    assert counters["quarantines"] >= 1
    assert cluster.coordinator.membership.states()["limpy"] == LIMPLOCKED
    assert "limpy" not in cluster.coordinator.membership.routable()
    assert "limpy" not in cluster.coordinator.ring.nodes

    # The p99 story: follow-up traffic routes around the quarantined
    # node, so healthy requests never inherit its latency.
    cluster.on_dispatch = None
    pending, _ = cluster.coordinator.submit(make_estimate_request())
    assert pending.status == 200
    assert pending.body["cluster"]["worker"] != "limpy"


def test_warm_tier_converges_through_the_coordinator(monkeypatch):
    """A warm-start sweep pushes each worker's §4.2 cache snapshot to
    the coordinator tier, and a later cold worker pulls it."""
    cluster = InProcessCluster(["w0"])
    cluster.workers["w0"].config.warm_tier = True
    coordinator = cluster.coordinator

    def fake_get(url, path, timeout_s=5.0):
        assert path.startswith("/cluster/cache?key=")
        return coordinator.cache_get(path.split("key=", 1)[1])

    def fake_post(url, path, body, timeout_s=5.0):
        assert path == "/cluster/cache"
        return coordinator.cache_put(body)

    monkeypatch.setattr("repro.cluster.worker.get_json", fake_get)
    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)

    status, body = coordinator.run_sweep(
        dict(SWEEP_PARAMS, warm_start=True))
    assert status == 200 and body["status"] == "ok"
    warm_key = "%s/caching" % BUILDER
    status, reply = coordinator.cache_get(warm_key)
    assert status == 200
    state = reply["state"]
    assert state is not None and state["cache"]["entries"]

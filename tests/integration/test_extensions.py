"""Integration: RESET semantics, outgoing TCP/IP flow, partition
exploration, and peak/handshake correlation."""

import pytest

from repro.analysis.correlate import peak_bus_correlation
from repro.cfsm.events import Event
from repro.core import PartitionExplorer, PowerCoEstimator
from repro.master.master import MasterConfig, SimulationMaster
from repro.systems import producer_consumer, tcpip


class TestReset:
    def test_reset_reinitializes_watching_processes(self):
        network = producer_consumer.build_network(num_packets=3)
        master = SimulationMaster(network, config=MasterConfig())
        stimuli = [Event("TIMER_TICK", time=1000.0 * i) for i in range(1, 30)]
        stimuli += [Event("START", time=50.0 + 500.0 * i) for i in range(40)]
        stimuli += [Event("RESET", time=9000.0)]
        stimuli.sort(key=lambda event: event.time)
        master.run(stimuli)
        # After the reset the producer's packet budget was restored and
        # consumed again: it ran both before and after the reset, and
        # the post-reset budget is partially spent.
        producer_runs = master.stats.transitions["producer"]
        assert producer_runs >= 2
        assert master.processes["producer"].state["pkts_left"] < 3
        # Timer restarted from zero at 9 us: final count reflects only
        # post-reset ticks.
        ticks_after = sum(1 for e in stimuli
                          if e.name == "TIMER_TICK" and e.time > 9000.0)
        assert master.processes["timer"].state["now"] == ticks_after

    def test_reset_resynchronizes_low_level_state(self):
        network = producer_consumer.build_network(num_packets=2)
        master = SimulationMaster(network, config=MasterConfig())
        stimuli = [Event("TIMER_TICK", time=1000.0 * i) for i in range(1, 10)]
        stimuli += [Event("RESET", time=5000.0)]
        stimuli.sort(key=lambda event: event.time)
        master.run(stimuli)
        timer = master.processes["timer"]
        assert timer.hw.read_variable("now") == timer.state["now"]

    def test_reset_event_cannot_trigger_transitions(self):
        from repro.cfsm.builder import NetworkBuilder
        from repro.cfsm.model import Implementation
        from repro.cfsm.validate import NetworkValidationError

        net = NetworkBuilder("bad")
        proc = net.cfsm("p", mapping=Implementation.SW)
        proc.input("RESET")
        proc.transition("t", trigger=["RESET"], body=[])
        net.environment_input("RESET")
        net.watching("RESET")
        with pytest.raises(NetworkValidationError):
            net.build()


class TestOutgoingFlow:
    @pytest.fixture(scope="class")
    def run(self):
        bundle = tcpip.build_system(
            dma_block_words=8, num_packets=2,
            include_outgoing=True, num_outgoing=2,
            packet_period_ns=250_000.0,
        )
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        return estimator.estimate(bundle.stimuli(), strategy="full")

    def test_host_packets_transmitted(self, run):
        assert run.report.transitions["host_if"] == 2

    def test_outgoing_header_stamped(self, run):
        checksum = run.master.shared_memory.words.get(
            tcpip.OUT_HEADER_CHECKSUM
        )
        assert checksum is not None and checksum > 0

    def test_incoming_flow_unaffected(self, run):
        assert run.report.transitions["create_pack"] == 2
        # Two PKT_OK and two TX_READY leave the system: four "lost"
        # (environment-bound) events.
        assert run.report.lost_events == 4

    def test_checksum_hardware_is_shared(self, run):
        """One checksum block serves both directions: its transition
        count covers incoming and outgoing blocks plus the starts."""
        sizes_in = [e.value for e in tcpip.build_system(
            dma_block_words=8, num_packets=2, include_outgoing=True,
            num_outgoing=2, packet_period_ns=250_000.0).stimuli()
            if e.name == "PACKET_IN"]
        assert run.report.transitions["checksum"] > sum(
            (s + 7) // 8 for s in sizes_in
        )


class TestPartitionExploration:
    def test_ranking_and_restoration(self):
        bundle = producer_consumer.build_system(num_packets=2)
        explorer = PartitionExplorer(bundle.network, bundle.config,
                                     bundle.stimuli_factory)
        points = explorer.sweep([
            {"consumer": "hw"},
            {"consumer": "sw"},
        ], strategy="caching")
        ranked = PartitionExplorer.ranking(points)
        assert len(ranked) == 2
        # Hardware consumer is cheaper than running it on the shared
        # processor alongside the producer.
        assert ranked[0].assignment == {"consumer": "hw"}
        # Original mapping restored.
        assert bundle.network.mapping["consumer"] == "hw"

    def test_macromodel_preserves_partition_ranking(self):
        """The paper's claim: macro-modeling's relative accuracy also
        holds when ranking HW/SW partitions."""
        bundle = producer_consumer.build_system(num_packets=2)
        explorer = PartitionExplorer(bundle.network, bundle.config,
                                     bundle.stimuli_factory)
        assignments = [{"consumer": "hw"}, {"consumer": "sw"}]
        full_rank = [p.label for p in PartitionExplorer.ranking(
            explorer.sweep(assignments, strategy="full"))]
        macro_rank = [p.label for p in PartitionExplorer.ranking(
            explorer.sweep(assignments, strategy="macromodel"))]
        assert full_rank == macro_rank


class TestPeakCorrelation:
    def test_peaks_coincide_with_bus_handshakes(self):
        """The paper's observation: power peaks line up with arbiter
        handshake activity."""
        bundle = tcpip.build_system(dma_block_words=4, num_packets=3)
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        run = estimator.estimate(bundle.stimuli(), strategy="full")
        correlation = peak_bus_correlation(
            run.master.accountant, bin_ns=2000.0, peak_fraction=0.1
        )
        assert correlation.peak_bins > 0
        assert correlation.lift > 1.2, correlation
        assert correlation.peak_activity_fraction > \
            correlation.activity_bin_fraction

    def test_parameter_validation(self):
        from repro.master.tracing import EnergyAccountant

        with pytest.raises(ValueError):
            peak_bus_correlation(EnergyAccountant(), 100.0, peak_fraction=0.0)

"""Integration: width discipline at the software/hardware boundary.

A synthesized block's ports and registers are exactly ``width`` bits
wide, so a hardware-mapped process can only ever observe the masked
image of what a software producer (whose integers are unbounded in the
behavioral interpreter) sends it.  The master enforces the same
masking on the behavioral reference — at event delivery, on shared
memory reads/writes, and on post-reaction state — so the gate-level
engine and the reference interpreter never diverge on out-of-range
values.

Regression for the case a property fuzzer originally found: a software
producer emitting a *negative* word to a hardware consumer whose guard
compares against it (behaviorally ``0 < -1`` is false; on 16-bit
hardware the same wire reads 65535 and the comparison is true).
"""

import pytest

from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import Const, EventValue, add, band, lt
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import Assign, Emit
from repro.master.master import MasterConfig, SimulationMaster

WIDTH = 16
MASK = (1 << WIDTH) - 1


def build_network(producer_body, consumer_body):
    net = NetworkBuilder("boundary")
    producer = net.cfsm("producer", mapping=Implementation.SW)
    producer.input("IN", has_value=True)
    producer.output("OUT", has_value=True)
    producer.transition("t", trigger=["IN"], body=producer_body)

    consumer = net.cfsm("consumer", mapping=Implementation.HW, width=WIDTH)
    consumer.input("OUT", has_value=True)
    consumer.output("DONE", has_value=True)
    consumer.var("a", 0)
    consumer.transition("t", trigger=["OUT"], body=consumer_body)

    net.environment_input("IN")
    net.on_bus("OUT")
    return net.build()


def run(network, values):
    master = SimulationMaster(network, None, MasterConfig())
    events = [
        Event("IN", value=value, time=5_000.0 * (index + 1))
        for index, value in enumerate(values)
    ]
    master.run(events)
    return master


class TestNegativeEventValues:
    def test_negative_emission_is_masked_at_the_hw_boundary(self):
        """The fuzzer's original counterexample, pinned deterministically."""
        network = build_network(
            producer_body=[Emit("OUT", Const(-1))],
            consumer_body=[Assign("a", band(lt(Const(0), EventValue("OUT")),
                                            Const(255)))],
        )
        master = run(network, [0])
        consumer = master.processes["consumer"]
        # Behavioral reference and netlist agree ...
        assert consumer.hw.read_variable("a") == consumer.state["a"] & MASK
        # ... on the hardware's view: -1 reads as 0xFFFF, so 0 < value.
        assert consumer.state["a"] == 1

    def test_wide_emission_is_masked_at_the_hw_boundary(self):
        network = build_network(
            producer_body=[Emit("OUT", Const(0x1_0005))],
            consumer_body=[Assign("a", EventValue("OUT"))],
        )
        master = run(network, [0])
        consumer = master.processes["consumer"]
        assert consumer.state["a"] == 0x0005
        assert consumer.hw.read_variable("a") == 0x0005

    def test_in_range_values_are_untouched(self):
        network = build_network(
            producer_body=[Emit("OUT", Const(1234))],
            consumer_body=[Assign("a", EventValue("OUT"))],
        )
        master = run(network, [0])
        consumer = master.processes["consumer"]
        assert consumer.state["a"] == 1234
        assert consumer.hw.read_variable("a") == 1234


class TestStateWidthDiscipline:
    def test_hw_state_is_folded_to_width_after_each_reaction(self):
        """Register overflow must not leak into later behavioral guards."""
        network = build_network(
            producer_body=[Emit("OUT", Const(0xFFFF))],
            # 0xFFFF + 0xFFFF = 0x1FFFE: overflows 16 bits to 0xFFFE.
            consumer_body=[Assign("a", add(EventValue("OUT"),
                                           EventValue("OUT")))],
        )
        master = run(network, [0])
        consumer = master.processes["consumer"]
        assert consumer.state["a"] == 0xFFFE
        assert consumer.hw.read_variable("a") == 0xFFFE

    def test_behavioral_state_stays_in_range_for_hw(self):
        network = build_network(
            producer_body=[Emit("OUT", Const(40_000))],
            consumer_body=[Assign("a", EventValue("OUT"))],
        )
        master = run(network, [0, 1])
        consumer = master.processes["consumer"]
        assert 0 <= consumer.state["a"] <= MASK

"""Integration: static cost reports over the bundled systems.

Three claims are pinned:

* **golden reports** — the admission weight and cache-table size of
  every bundled system, so a cost-model change shows up as a readable
  diff (the service's `Retry-After` quotes are priced off these exact
  numbers);
* **Section 4.2 agreement** — `CostReport.cache_table_size` equals the
  path-cacheability prediction, which in turn equals the dynamic
  energy-cache population on the Figure 7 workload;
* **DF502 soundness at system scale** — no concrete cycle of any
  bundled netlist, driven by seeded random stimuli, dissipates more
  than the abstract per-cycle bound.
"""

import random

import pytest

from repro.core import PowerCoEstimator
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.core.macromodel import MacroModelCharacterizer
from repro.hw.logicsim import CompiledSimulator
from repro.hw.synth import synthesize_cfsm_cached
from repro.lint import cacheability_report, compute_cost_report
from repro.lint.absint import abstract_netlist_values, netlist_energy_bound
from repro.systems import build_bundle, system_names

#: (cost units, cache-table entries) golden per bundled system.  The
#: ordering automotive < fig1 < tcpip < tcpip-out is what the service's
#: cost-aware admission relies on: a tcpip-out request must be quoted a
#: longer Retry-After than an automotive one against the same queue.
GOLDEN = {
    "automotive": (1.2446, 17),
    "fig1": (19.0612, 5),
    "tcpip": (35.0081, 8),
    "tcpip-out": (44.2485, 12),
}


@pytest.fixture(scope="module")
def parameter_file():
    return MacroModelCharacterizer().characterize()


class TestGoldenCostReports:
    def test_every_bundled_system_has_a_golden(self):
        assert sorted(GOLDEN) == sorted(system_names())

    @pytest.mark.parametrize("system", sorted(GOLDEN))
    def test_golden_cost_report(self, system, parameter_file):
        report = compute_cost_report(build_bundle(system).network,
                                     parameter_file=parameter_file)
        units, table = GOLDEN[system]
        assert report.cost_units == units
        assert report.cache_table_size == table
        assert not report.cache_table_unbounded
        assert report.cycles_per_event_bound is not None
        assert report.energy_per_event_bound_j is not None
        assert report.energy_per_event_bound_j > 0.0

    def test_admission_ordering(self, parameter_file):
        units = {
            system: compute_cost_report(
                build_bundle(system).network,
                parameter_file=parameter_file).cost_units
            for system in system_names()
        }
        assert (units["automotive"] < units["fig1"]
                < units["tcpip"] < units["tcpip-out"])


class TestSection42Agreement:
    @pytest.mark.parametrize("system", sorted(GOLDEN))
    def test_cost_report_matches_cacheability_prediction(
            self, system, parameter_file):
        network = build_bundle(system).network
        report = compute_cost_report(network, parameter_file=parameter_file)
        cache = cacheability_report(network)
        assert report.cache_table_size == cache.predicted_table_size("path")
        assert report.cache_table_unbounded == cache.unbounded

    def test_static_table_size_matches_dynamic_cache_on_fig7(
            self, parameter_file):
        """The full chain: CostReport == path prediction == the energy
        cache's population once every live path ran (Figure 7 workload,
        clean run; the one statically-live-but-clean-unreachable
        checksum-mismatch path accounts for the -1)."""
        bundle = build_bundle("tcpip")
        static = compute_cost_report(
            bundle.network, parameter_file=parameter_file).cache_table_size
        strategy = CachingStrategy(EnergyCacheConfig())
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        estimator.estimate(
            bundle.stimuli(),
            strategy=strategy,
            shared_memory_image=bundle.shared_memory_image,
        )
        dynamic = len(set(strategy.cache.entries))
        assert dynamic == static - 1


class TestEnergyBoundsAtSystemScale:
    @pytest.mark.parametrize("system", sorted(GOLDEN))
    def test_no_concrete_cycle_exceeds_the_abstract_bound(self, system):
        rng = random.Random(0xD502)
        network = build_bundle(system).network
        checked = 0
        for cfsm in network.hardware_cfsms():
            netlist = synthesize_cfsm_cached(cfsm).netlist
            values = abstract_netlist_values(netlist)
            bound = netlist_energy_bound(netlist, values=values)
            sim = CompiledSimulator(netlist)
            sim.reset()
            ports = sorted(netlist.input_ports)
            for _ in range(100):
                inputs = {
                    port: rng.getrandbits(len(netlist.input_ports[port]))
                    for port in ports
                }
                energy = sim.step(inputs)
                assert energy <= bound.total_j + 1e-15, (
                    "%s/%s: cycle dissipated %.3g J above the static "
                    "bound %.3g J" % (system, netlist.name, energy,
                                      bound.total_j)
                )
                for net, proved in enumerate(values):
                    if proved is not None:
                        assert sim.values[net] == proved
            checked += 1
        assert checked > 0, "%s has no hardware processes" % system

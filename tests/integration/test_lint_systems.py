"""Integration tests: whole-design lint over the bundled systems.

Three layers:

* golden-lint — the exact finding set of every bundled system is
  pinned, so a rule regression (new false positive, lost finding)
  shows up as a readable diff;
* a deliberately-broken design must surface all four analysis
  families (race, dead transition, combinational loop, missing
  macro-op) through every report format;
* the Section 4.2 claim — the statically predicted path-table size
  equals the energy cache's dynamic population on the Figure 7
  workload once every live path has been exercised.
"""

import json
import types

import pytest

from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.expr import Const, add, const
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import SharedWrite, emit, shared_write
from repro.core import PowerCoEstimator
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.core.macromodel import MacroCost, ParameterFile
from repro.hw.netlist import Gate, Netlist
from repro.lint import (
    cacheability_report,
    render_json,
    render_sarif,
    render_text,
    run_lint,
)
from repro.systems import automotive, producer_consumer, tcpip
from repro.systems.tcpip import HEADER_CHECKSUM


def fingerprintless(result):
    """(code, qualified location) pairs — the golden comparison key."""
    return sorted(
        (d.code, d.location.qualified_name()) for d in result.diagnostics
    )


class TestGoldenLint:
    """Exact expected findings per bundled system.

    Every system must be *clean* in the CI sense: notes are expected
    (primary outputs, synthesis dead gates, a documented constant
    branch) but warnings and errors are not.
    """

    def assert_clean(self, result):
        assert result.exit_code == 0
        assert result.count("error") == 0
        assert result.count("warning") == 0

    def test_fig1(self):
        result = run_lint(producer_consumer.build_system(
            num_packets=4).network)
        self.assert_clean(result)
        assert fingerprintless(result) == [
            ("NET109", "fig1_example/consumer[event:BYTE_DONE]"),
            ("NL304", "fig1_example/netlist:consumer_netlist"),
            ("NL304", "fig1_example/netlist:timer_netlist"),
        ]

    def test_tcpip(self):
        result = run_lint(tcpip.build_system(dma_block_words=16).network)
        self.assert_clean(result)
        assert fingerprintless(result) == [
            # The checksum datapath carries constant-zero AND legs the
            # bit-level fixpoint proves dead (capped per-net findings
            # plus the per-netlist aggregate).
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net258"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net275"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net292"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net309"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net343"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net360"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net377"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net394"),
            ("DF502", "tcpip_nic/checksum/netlist:checksum_netlist"),
            ("NET109", "tcpip_nic/ip_check[event:CHK_ERR]"),
            ("NET109", "tcpip_nic/ip_check[event:PKT_OK]"),
            ("NET109", "tcpip_nic/ip_check[event:TX_READY]"),
            ("NL304", "tcpip_nic/netlist:checksum_netlist"),
            # block_done's mode test: without the outgoing flow, mode
            # is statically 0, so the incoming arm is always taken.
            ("SG203", "tcpip_nic/ip_check/block_done@n4"),
        ]

    def test_tcpip_with_outgoing(self):
        result = run_lint(tcpip.build_system(
            dma_block_words=16, include_outgoing=True, num_outgoing=2
        ).network)
        self.assert_clean(result)
        # The outgoing flow makes mode two-valued: the SG203 note must
        # disappear (the branch is now genuinely exercised both ways).
        assert "SG203" not in {d.code for d in result.diagnostics}
        assert fingerprintless(result) == [
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net283"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net302"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net321"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net340"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net378"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net397"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net416"),
            ("DF501", "tcpip_nic/checksum/netlist:checksum_netlist@net435"),
            ("DF502", "tcpip_nic/checksum/netlist:checksum_netlist"),
            ("NET109", "tcpip_nic/ip_check[event:CHK_ERR]"),
            ("NET109", "tcpip_nic/ip_check[event:PKT_OK]"),
            ("NET109", "tcpip_nic/ip_check[event:TX_READY]"),
            ("NL304", "tcpip_nic/netlist:checksum_netlist"),
        ]

    def test_automotive(self):
        result = run_lint(automotive.build_system().network)
        self.assert_clean(result)
        assert fingerprintless(result) == [
            ("NL304", "automotive_dashboard/netlist:odometer_netlist"),
            ("NL304", "automotive_dashboard/netlist:speedometer_netlist"),
        ]


def broken_network():
    """A design with one defect per analysis family.

    * ``writer_a``/``writer_b`` both store to shared word 0x40 with no
      handshake — NET108;
    * ``writer_a.never`` is shadowed by ``writer_a.store`` — SG201;
    * ``hw_unit`` synthesizes (stubbed) into a combinational loop —
      NL301;
    * the shared writes emit ASHWR, which the (pruned) macro-model
      table does not price — MM401.
    """
    net = NetworkBuilder("broken_soc")
    writer_a = net.cfsm("writer_a", mapping=Implementation.SW)
    writer_a.input("GO").output("TICK")
    writer_a.transition("store", trigger=["GO"], body=[
        shared_write(const(0x40), const(1)),
        emit("TICK"),
    ])
    writer_a.transition("never", trigger=["GO"], body=[
        shared_write(const(0x41), const(9)),
    ])
    writer_b = net.cfsm("writer_b", mapping=Implementation.SW)
    writer_b.input("GO")
    writer_b.transition("store", trigger=["GO"], body=[
        shared_write(const(0x40), const(2)),
    ])
    hw_unit = net.cfsm("hw_unit", mapping=Implementation.HW)
    hw_unit.input("TICK")
    hw_unit.transition("t", trigger=["TICK"], body=[])
    net.environment_input("GO")
    return net.build(validate=False)


def loopy_block():
    """A fake synthesized block whose netlist contains a cycle."""
    netlist = Netlist(
        name="hw_unit_netlist",
        num_nets=8,
        gates=[Gate("INV", (5,), 4), Gate("INV", (4,), 5)],
        output_ports={"y": [4]},
    )
    return types.SimpleNamespace(netlist=netlist, value_ports={},
                                 input_ports={})


class TestBrokenSystem:
    @pytest.fixture()
    def result(self, monkeypatch):
        import repro.core.macromodel as macromodel
        import repro.hw.synth as synth

        pruned = ParameterFile({
            name: MacroCost()
            for name in macromodel.all_macro_op_names()
            if name != "ASHWR"
        })
        monkeypatch.setattr(
            macromodel.MacroModelCharacterizer, "characterize",
            lambda self: pruned,
        )
        monkeypatch.setattr(
            synth, "synthesize_cfsm_cached", lambda cfsm: loopy_block()
        )
        return run_lint(broken_network())

    def test_all_four_families_found(self, result):
        found = {d.code for d in result.diagnostics}
        assert {"NET108", "SG201", "NL301", "MM401"} <= found

    def test_exit_code_is_error(self, result):
        assert result.exit_code == 2
        assert result.max_severity == "error"

    def test_findings_attributed(self, result):
        by_code = {d.code: d for d in result.diagnostics}
        assert by_code["NET108"].data["addresses"] == [0x40]
        assert by_code["SG201"].location.transition == "never"
        assert by_code["SG201"].data["shadowed_by"] == "store"
        assert by_code["NL301"].location.netlist == "hw_unit_netlist"
        assert by_code["MM401"].data["op"] == "ASHWR"

    def test_all_formats_report_all_codes(self, result):
        expected = {"NET108", "SG201", "NL301", "MM401"}
        text = render_text(result.diagnostics, title=result.system)
        assert all(code in text for code in expected)
        payload = json.loads(render_json(result.diagnostics))
        assert expected <= {d["code"] for d in payload["diagnostics"]}
        sarif = json.loads(render_sarif(result.diagnostics))
        assert expected <= {
            r["ruleId"] for r in sarif["runs"][0]["results"]
        }


class TestCacheabilityPrediction:
    """§4.2: static path count == dynamic energy-cache table size."""

    def run_cached(self, bundle):
        strategy = CachingStrategy(EnergyCacheConfig())
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        estimator.estimate(
            bundle.stimuli(),
            strategy=strategy,
            shared_memory_image=bundle.shared_memory_image,
        )
        return set(strategy.cache.entries)

    def corrupt_checksum(self, network):
        """Make create_pack store a wrong checksum into the header.

        Only the *value expression* of the SharedWrite changes, so
        node ids — and therefore every path signature — are untouched:
        the corrupted run populates the same key space, just reaching
        the CHK_ERR arm that a clean run never can.
        """
        transition = network.cfsms["create_pack"].transition_by_name(
            "receive_packet")
        for stmt in transition.body.nodes():
            if isinstance(stmt, SharedWrite) \
                    and isinstance(stmt.address, Const) \
                    and stmt.address.value == HEADER_CHECKSUM:
                stmt.value = add(stmt.value, const(1))
                return
        raise AssertionError("checksum store not found")

    def test_static_prediction(self):
        report = cacheability_report(
            tcpip.build_system(dma_block_words=16).network)
        assert not report.unbounded
        assert report.row_for("ip_check", "block_done").path_count == 3
        assert report.row_for("checksum", "process_block").path_count == 2
        assert report.row_for("create_pack", "receive_packet").path_count == 1
        assert report.predicted_table_size("path") == 8
        assert report.predicted_table_size("transition") == 5

    def test_dynamic_table_matches_prediction(self):
        # Figure 7 workload: 3 packets, 16-word DMA blocks, seed 2000.
        bundle = tcpip.build_system(dma_block_words=16)
        predicted = cacheability_report(bundle.network) \
            .predicted_table_size("path")

        keys = self.run_cached(bundle)
        # The clean run cannot take the checksum-mismatch arm: the
        # stored and recomputed checksums always agree by construction.
        assert len(keys) == predicted - 1

        corrupted = tcpip.build_system(dma_block_words=16)
        self.corrupt_checksum(corrupted.network)
        keys |= self.run_cached(corrupted)
        assert len(keys) == predicted

        # The keys really are (cfsm, transition, path-signature)
        # triples covering every live transition.
        assert {(key[0], key[1]) for key in keys} == {
            ("create_pack", "receive_packet"),
            ("ip_check", "prepare_packet"),
            ("ip_check", "block_done"),
            ("checksum", "start_packet"),
            ("checksum", "process_block"),
        }

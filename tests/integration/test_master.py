"""Integration: simulation-master mechanics on purpose-built networks."""

import pytest

from repro.bus.model import BusParameters
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import add, const, event_value, var
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import assign, emit, loop, shared_read, shared_write
from repro.master.master import MasterConfig, MasterError, SimulationMaster
from repro.master.rtos import RtosConfig


def relay_network(on_bus=False):
    """env -> sw relay -> hw sink, optionally over the bus."""
    net = NetworkBuilder("relay")
    relay = net.cfsm("relay", mapping=Implementation.SW)
    relay.input("IN", has_value=True).output("MID", has_value=True)
    relay.var("x", 0)
    relay.transition("fwd", trigger=["IN"], body=[
        assign("x", add(event_value("IN"), const(1))),
        emit("MID", var("x")),
    ])
    sink = net.cfsm("sink", mapping=Implementation.HW, width=16)
    sink.input("MID", has_value=True)
    sink.var("total", 0)
    sink.transition("take", trigger=["MID"], body=[
        assign("total", add(var("total"), event_value("MID"))),
    ])
    net.environment_input("IN")
    if on_bus:
        net.on_bus("MID")
    return net.build()


class TestEventFlow:
    def test_values_flow_through_partitions(self):
        network = relay_network()
        master = SimulationMaster(network, config=MasterConfig())
        master.run([Event("IN", value=10, time=0.0),
                    Event("IN", value=20, time=50_000.0)])
        assert master.processes["sink"].state["total"] == 11 + 21
        # Hardware registers mirror the behavioral state.
        assert master.processes["sink"].hw.read_variable("total") == 32

    def test_bus_mapped_event_delays_delivery(self):
        direct = SimulationMaster(relay_network(on_bus=False), config=MasterConfig())
        direct.run([Event("IN", value=1, time=0.0)])
        bussed = SimulationMaster(relay_network(on_bus=True), config=MasterConfig())
        bussed.run([Event("IN", value=1, time=0.0)])
        assert bussed.stats.end_time_ns > direct.stats.end_time_ns
        assert bussed.bus.total_grants == 1
        assert direct.bus.total_grants == 0

    def test_stimulus_requires_timestamp(self):
        master = SimulationMaster(relay_network(), config=MasterConfig())
        with pytest.raises(MasterError):
            master.run([Event("IN", value=1)])

    def test_events_to_nowhere_counted_lost(self):
        master = SimulationMaster(relay_network(), config=MasterConfig())
        master.run([Event("UNKNOWN", value=1, time=0.0)])
        assert master.stats.lost_events == 1

    def test_dispatch_guard_truncates(self):
        network = relay_network()
        config = MasterConfig(max_dispatches=3)
        master = SimulationMaster(network, config=config)
        stats = master.run([Event("IN", value=i, time=float(i) * 10)
                            for i in range(100)])
        assert stats.truncated


class TestSharedMemoryFlow:
    def shared_network(self):
        net = NetworkBuilder("shmem")
        writer = net.cfsm("writer", mapping=Implementation.SW)
        writer.input("GO", has_value=True)
        writer.output("DONE")
        writer.var("i", 0)
        writer.transition("w", trigger=["GO"], body=[
            assign("i", const(0)),
            loop(event_value("GO"), [
                shared_write(var("i"), add(var("i"), const(100))),
                assign("i", add(var("i"), const(1))),
            ]),
            emit("DONE"),
        ])
        reader = net.cfsm("reader", mapping=Implementation.HW, width=16)
        reader.input("DONE")
        reader.var("acc", 0).var("w", 0)
        reader.transition("r", trigger=["DONE"], body=[
            shared_read("w", const(0)),
            assign("acc", add(var("acc"), var("w"))),
        ])
        net.environment_input("GO")
        return net.build()

    def test_shared_traffic_hits_bus_and_memory(self):
        master = SimulationMaster(self.shared_network(), config=MasterConfig())
        master.run([Event("GO", value=4, time=0.0)])
        assert master.shared_memory.words[0] == 100
        assert master.processes["reader"].state["acc"] == 100
        assert master.bus.total_words == 5  # 4 writes + 1 read
        assert master.accountant.by_category.get("bus", 0) > 0

    def test_dma_size_changes_grants(self):
        counts = {}
        for dma in (1, 4):
            config = MasterConfig(bus_params=BusParameters(dma_block_words=dma))
            master = SimulationMaster(self.shared_network(), config=config)
            master.run([Event("GO", value=8, time=0.0)])
            counts[dma] = master.bus.total_grants
        assert counts[1] > counts[4]


class TestRtosIntegration:
    def two_task_network(self):
        net = NetworkBuilder("tasks")
        for name in ("task_a", "task_b"):
            task = net.cfsm(name, mapping=Implementation.SW)
            task.input("TICK")
            task.var("n", 0)
            task.transition("t", trigger=["TICK"], body=[
                loop(const(10), [assign("n", add(var("n"), const(1)))]),
            ])
        net.environment_input("TICK")
        return net.build()

    def test_processor_serializes_software(self):
        config = MasterConfig(rtos=RtosConfig(priorities={"task_a": 0,
                                                          "task_b": 1}))
        master = SimulationMaster(self.two_task_network(), config=config)
        master.run([Event("TICK", time=0.0)])
        # Both tasks ran, and the scheduler charged overhead.
        assert master.stats.transitions == {"task_a": 1, "task_b": 1}
        assert master.rtos.dispatches == 2
        assert master.rtos.context_switches >= 1
        assert master.accountant.by_category.get("rtos", 0) > 0
        # Their executions cannot overlap in time: samples are disjoint.
        samples = [s for s in master.accountant.samples
                   if s.component.startswith("task_")]
        samples.sort(key=lambda s: s.start_ns)
        assert samples[0].end_ns <= samples[1].start_ns + 1e-9

    def test_priority_decides_who_runs_first(self):
        config = MasterConfig(rtos=RtosConfig(priorities={"task_b": 0,
                                                          "task_a": 1}))
        master = SimulationMaster(self.two_task_network(), config=config)
        master.run([Event("TICK", time=0.0)])
        samples = [s for s in master.accountant.samples
                   if s.component.startswith("task_")]
        first = min(samples, key=lambda s: s.start_ns)
        assert first.component == "task_b"


class TestIdleCharging:
    def test_hw_idle_energy_charged(self):
        network = relay_network()
        master = SimulationMaster(network, config=MasterConfig())
        master.run([Event("IN", value=1, time=0.0),
                    Event("IN", value=1, time=500_000.0)])
        assert master.accountant.by_category.get("idle", 0) > 0

    def test_idle_charging_can_be_disabled(self):
        network = relay_network()
        config = MasterConfig(charge_hw_idle=False)
        master = SimulationMaster(network, config=config)
        master.run([Event("IN", value=1, time=0.0)])
        assert master.accountant.by_category.get("idle", 0) == 0

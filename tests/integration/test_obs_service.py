"""Acceptance tests of the observability layer, end to end.

The ISSUE's acceptance scenarios:

* one correlated trace tree per request — every span a request causes,
  including spans recorded inside pool worker *processes*, carries the
  request's ``trace_id``;
* ``/metrics`` over real HTTP is valid Prometheus text exposition and
  covers provenance tiers, breaker states, and queue behavior;
* a deadline-exceeded request triggers an atomic flight-recorder dump
  a postmortem can start from.
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro.obs.flightrecorder import DUMP_PREFIX
from repro.obs.names import EVENT_DEADLINE_EXPIRED
from repro.obs.prometheus import validate_exposition
from repro.parallel import JobSpec, job_seed, run_jobs
from repro.parallel.merge import merged_chrome_trace_events
from repro.obs.context import RequestContext
from repro.service import CoEstimationService, ServiceConfig
from repro.service.api import parse_request
from repro.service.server import ServiceHTTPServer
from repro.systems import builder_spec, system_names

KNOWN = system_names()


def req(body):
    return parse_request(body, known_systems=KNOWN)


@pytest.fixture
def service(tmp_path):
    instance = CoEstimationService(
        ServiceConfig(workers=1, queue_depth=4, default_deadline_s=60.0,
                      drain_timeout_s=30.0,
                      flight_dump_dir=str(tmp_path / "dumps"))
    )
    instance.start()
    yield instance
    instance.drain(timeout_s=30.0)


@pytest.fixture
def http_service(service):
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service, quiet=True)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield service, httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()


def http_get(port, path):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def http_post(port, path, body, timeout=120):
    connection = http.client.HTTPConnection("127.0.0.1", port,
                                            timeout=timeout)
    try:
        connection.request("POST", path, body=json.dumps(body),
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


class TestTraceTree:
    def test_one_correlated_trace_tree_per_request(self, http_service):
        _, port = http_service
        status, headers, raw = http_post(
            port, "/estimate", {"system": "fig1", "strategy": "caching"}
        )
        assert status == 200
        trace_id = headers.get("X-Trace-Id")
        assert trace_id, "response must carry its trace id"

        status, _, raw = http_get(port, "/debug/trace/%s" % trace_id)
        assert status == 200
        document = json.loads(raw)
        assert document["trace_id"] == trace_id
        spans = document["spans"]
        assert spans, "a real run must record spans"
        for span in spans:
            args = span[5]
            assert args["trace_id"] == trace_id
        # The job-level span context is one node: every span links to
        # the same request tree (one span_id/parent pair per job).
        job_span_ids = {span[5]["span_id"] for span in spans}
        assert len(job_span_ids) == 1
        parents = {span[5]["parent_span_id"] for span in spans}
        assert len(parents) == 1

    def test_unknown_trace_is_a_404(self, http_service):
        _, port = http_service
        status, _, _ = http_get(port, "/debug/trace/deadbeef")
        assert status == 404

    def test_correlation_survives_the_pool_boundary(self):
        contexts = [RequestContext.new("req-%d" % index)
                    for index in range(2)]
        builder, builder_kwargs = builder_spec("fig1")
        specs = [
            JobSpec(
                fn="repro.parallel.runners:run_estimate",
                payload={
                    "builder": builder,
                    "builder_kwargs": dict(builder_kwargs),
                    "strategy": "caching",
                    "label": "job-%d" % index,
                },
                label="job-%d" % index,
                seed=job_seed(0, "job-%d" % index),
                collect_telemetry=True,
                trace=context.to_payload(),
            )
            for index, context in enumerate(contexts)
        ]
        results = run_jobs(specs, jobs=2)
        assert all(result.ok for result in results), [
            result.error for result in results
        ]
        for context, result in zip(contexts, results):
            assert result.spans, "worker must ship spans home"
            for span in result.spans:
                args = span[5]
                assert args["trace_id"] == context.trace_id
                assert args["parent_span_id"] == context.span_id
        # Both jobs ran the same deterministic work, but their span ids
        # must never alias in the merged cross-process trace.
        events = [event for event in merged_chrome_trace_events(results)
                  if event["ph"] == "X"]
        by_trace = {}
        for event in events:
            by_trace.setdefault(
                event["args"]["trace_id"], set()
            ).add(event["args"]["span_id"])
        assert set(by_trace) == {c.trace_id for c in contexts}
        ids_a, ids_b = by_trace.values()
        assert not ids_a & ids_b, "span ids aliased across workers"


class TestMetricsEndpoint:
    def test_metrics_is_valid_exposition_covering_the_run(
        self, http_service
    ):
        _, port = http_service
        status, _, _ = http_post(
            port, "/estimate", {"system": "fig1", "strategy": "caching"}
        )
        assert status == 200
        status, headers, raw = http_get(port, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        text = raw.decode("utf-8")
        assert validate_exposition(text) == [], validate_exposition(text)
        # Provenance-tier counters, labeled by system.
        assert 'repro_service_energy_answers_total{provenance=' in text
        assert 'system="fig1"' in text
        # Queue + breaker + SLO + HTTP instrument families.
        assert "repro_service_queue_depth " in text
        assert "# TYPE repro_service_queue_wait_seconds histogram" in text
        assert "repro_slo_latency_burn_rate " in text
        assert "repro_slo_error_burn_rate " in text
        assert 'repro_http_requests_total{path="/estimate",status="200"} 1' \
            in text
        assert "repro_flightrecorder_recorded " in text

    def test_flightrecorder_endpoint_reports_the_ring(self, http_service):
        _, port = http_service
        status, _, _ = http_post(
            port, "/estimate", {"system": "fig1", "strategy": "caching"}
        )
        assert status == 200
        status, _, raw = http_get(port, "/debug/flightrecorder")
        assert status == 200
        document = json.loads(raw)
        assert document["capacity"] == 256
        assert document["recorded"] >= 2  # admitted + completed at least
        assert document["dropped"] == 0
        events = {event["event"] for event in document["events"]}
        assert "request.admitted" in events
        assert "request.completed" in events


class TestDeadlineDump:
    def test_deadline_exceeded_dumps_the_flight_recorder(self, service):
        dump_dir = service.config.flight_dump_dir
        # Pin the single worker with a real run, then let a queued
        # request's tiny deadline lapse before a worker can take it.
        blocker, _ = service.submit(req({"system": "fig1",
                                         "strategy": "full"}))
        doomed, _ = service.submit(req({"system": "tcpip",
                                        "strategy": "caching",
                                        "deadline_s": 0.01}))
        assert doomed.wait(120.0)
        assert doomed.status == 504
        assert doomed.body["reason"] == "deadline_exceeded"
        assert doomed.headers["X-Trace-Id"] == doomed.trace_id

        # The dump is written after the 504 is resolved; under load the
        # directory may not exist yet when the client returns, so poll.
        deadline = time.monotonic() + 30.0
        dumps = []
        while time.monotonic() < deadline:
            if os.path.isdir(dump_dir):
                dumps = [name for name in os.listdir(dump_dir)
                         if name.startswith(DUMP_PREFIX)]
                if dumps:
                    break
            time.sleep(0.05)
        assert len(dumps) == 1
        assert "deadline_exceeded" in dumps[0]
        with open(os.path.join(dump_dir, dumps[0])) as handle:
            document = json.load(handle)
        assert document["reason"] == "deadline_exceeded"
        # The dump holds the doomed request's event sequence; the
        # postmortem can slice the ring by its trace id.
        matching = [event for event in document["events"]
                    if event.get("trace_id") == doomed.trace_id]
        assert any(event["event"] == EVENT_DEADLINE_EXPIRED
                   for event in matching)
        assert any(event["event"] == "request.admitted"
                   for event in matching)
        assert blocker.wait(120.0)
        assert blocker.status == 200

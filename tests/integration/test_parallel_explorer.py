"""Sequential-vs-parallel explorer equivalence and CLI integration."""

import dataclasses
import json

from repro.__main__ import main
from repro.core.explorer import (
    DesignSpaceExplorer,
    parallel_sweep,
    priority_permutations,
)
from repro.parallel import PoolStats
from repro.systems import tcpip

BUILDER = "repro.systems.tcpip:build_system"
BUILDER_KWARGS = {"num_packets": 1, "packet_period_ns": 30_000.0}
DMA_SIZES = [4, 16]


def _assignments(count=2):
    return priority_permutations(list(tcpip.BUS_MASTERS))[:count]


def _canonical(points):
    rows = []
    for point in points:
        payload = dataclasses.asdict(point.report)
        payload = {
            key: value
            for key, value in payload.items()
            if not key.endswith("_seconds")
        }
        rows.append(
            (
                point.dma_block_words,
                point.priority_label,
                json.dumps(payload, sort_keys=True, default=repr),
            )
        )
    return rows


def test_parallel_sweep_matches_sequential_sweep():
    """``jobs=4`` must reproduce the in-process sweep byte for byte."""
    assignments = _assignments()
    bundle = tcpip.build_system(dma_block_words=4, **BUILDER_KWARGS)

    sequential_points = []
    for priorities in assignments:
        for dma in DMA_SIZES:
            point_bundle = tcpip.build_system(
                dma_block_words=dma, priorities=priorities, **BUILDER_KWARGS
            )
            explorer = DesignSpaceExplorer(
                point_bundle.network,
                point_bundle.config,
                point_bundle.stimuli_factory,
            )
            sequential_points.append(
                explorer.evaluate(dma, priorities, strategy="caching")
            )

    inline_points, inline_results = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=1,
        builder_kwargs=BUILDER_KWARGS,
    )
    stats = PoolStats()
    pooled_points, pooled_results = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=4,
        builder_kwargs=BUILDER_KWARGS, stats=stats,
    )

    assert all(result.ok for result in inline_results)
    assert all(result.ok for result in pooled_results)
    assert stats.workers == 4
    assert _canonical(inline_points) == _canonical(sequential_points)
    assert _canonical(pooled_points) == _canonical(sequential_points)


def test_parallel_sweep_reports_bad_builder_as_failed_points():
    points, results = parallel_sweep(
        "repro.systems.tcpip:no_such_builder",
        [4],
        _assignments(1),
        jobs=2,
        max_retries=0,
        builder_kwargs=BUILDER_KWARGS,
    )
    assert points == [None]
    assert not results[0].ok
    assert "no_such_builder" in results[0].error


def test_warm_start_sweep_completes_and_stays_close():
    """Warm starting reuses converged statistics — values may move by
    cache-approximation noise, never more."""
    assignments = _assignments()
    cold_points, _ = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=1,
        builder_kwargs=BUILDER_KWARGS,
    )
    from repro.parallel.runners import reset_warm_caches

    reset_warm_caches()
    warm_points, warm_results = parallel_sweep(
        BUILDER, DMA_SIZES, assignments, jobs=1, warm_start=True,
        builder_kwargs=BUILDER_KWARGS,
    )
    assert all(result.ok for result in warm_results)
    for cold, warm in zip(cold_points, warm_points):
        assert warm.dma_block_words == cold.dma_block_words
        assert warm.priority_label == cold.priority_label
        ref = cold.report.total_energy_j
        assert abs(warm.report.total_energy_j - ref) <= 1e-4 * abs(ref)


def test_cli_explore_jobs_matches_sequential(capsys):
    argv_base = ["explore", "--dma", "4", "16", "--packets", "1"]
    assert main(argv_base) == 0
    sequential_output = capsys.readouterr().out

    assert main(argv_base + ["--jobs", "2"]) == 0
    parallel_output = capsys.readouterr().out

    def point_lines(text):
        return [line for line in text.splitlines()
                if line.startswith(("dma=", "minimum:"))]

    assert point_lines(parallel_output) == point_lines(sequential_output)


def test_cli_estimate_multi_system_fan_out(capsys):
    assert main(["estimate", "fig1", "fig1", "--strategy", "caching",
                 "--jobs", "2"]) == 0
    output = capsys.readouterr().out
    assert output.count("Energy report:") == 2
    assert "2 system(s)" in output

"""SIGTERM handling of the parallel pool, observed from the outside.

Killing a sweep mid-flight must leave a loadable checkpoint and no
orphaned worker processes: ``raise_on_signals`` converts the signal
into ``SystemExit(143)`` on the main thread so ``pool.shutdown()``
still runs in the ``finally`` block, and a later ``--resume`` picks
the sweep up where it stopped — unless the resilience configuration
changed, in which case the checkpoint is refused outright.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest


def _spawn_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    env.setdefault("PYTHONUNBUFFERED", "1")
    return env


def _sweep_args(checkpoint, jobs):
    return [sys.executable, "-m", "repro", "explore",
            "--jobs", str(jobs), "--checkpoint", checkpoint,
            "--dma", "2", "4", "8", "16", "32", "64",
            "--packets", "16", "--strategy", "full"]


def _python_processes_mentioning(needle):
    """PIDs of live python processes whose cmdline contains ``needle``.

    Pool workers are forked from the CLI process and inherit its
    cmdline, so the (unique, tmp-path) checkpoint argument identifies
    them; non-python matches (the test's own shell) are irrelevant.
    """
    found = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit() or int(pid) == os.getpid():
            continue
        try:
            with open("/proc/%s/cmdline" % pid, "rb") as handle:
                cmdline = handle.read().decode(errors="replace")
        except OSError:
            continue  # raced with process exit
        if needle in cmdline and "python" in cmdline.split("\0")[0]:
            found.append((int(pid), cmdline.replace("\0", " ")))
    return found


def test_sigterm_checkpoints_and_leaves_no_orphans(tmp_path):
    checkpoint = str(tmp_path / "sweep.ckpt")
    process = subprocess.Popen(
        _sweep_args(checkpoint, jobs=2),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=_spawn_env(), text=True, cwd=os.getcwd(),
    )
    try:
        # Wait for proof the sweep is mid-flight: at least one design
        # point landed in the checkpoint, with more still to run.
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if os.path.exists(checkpoint):
                with open(checkpoint) as handle:
                    try:
                        completed = json.load(handle).get("completed", {})
                    except json.JSONDecodeError:
                        completed = {}  # raced with the atomic rewrite
                if completed:
                    break
            time.sleep(0.05)
        else:
            pytest.fail("sweep never recorded a completed point")

        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=120)

        # SystemExit(128 + SIGTERM): the conventional "killed by TERM"
        # code, reached through the pool's finally-shutdown (not a
        # traceback crash).
        assert process.returncode == 143, stderr
        assert "Traceback" not in stderr

        # The forked workers must be gone with their parent.
        time.sleep(0.5)
        orphans = _python_processes_mentioning(checkpoint)
        assert not orphans, "orphaned workers survived: %r" % (orphans,)

        # The checkpoint it left is loadable — not torn mid-write.
        with open(checkpoint) as handle:
            data = json.load(handle)
        assert data["completed"]
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    # A matching --resume restores the completed points and finishes.
    resumed = subprocess.run(
        _sweep_args(checkpoint, jobs=1) + ["--resume", checkpoint],
        env=_spawn_env(), capture_output=True, text=True, timeout=240,
        cwd=os.getcwd(),
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "restored from" in resumed.stdout

    # A resume under a different fault plan is refused instead of
    # silently mixing provenances (the checkpoint-signature satellite,
    # observed end to end at the CLI).
    mismatched = subprocess.run(
        _sweep_args(checkpoint, jobs=1)
        + ["--resume", checkpoint, "--fault-rate", "0.5"],
        env=_spawn_env(), capture_output=True, text=True, timeout=120,
        cwd=os.getcwd(),
    )
    assert mismatched.returncode != 0
    assert "different sweep" in mismatched.stderr

"""Integration: the Figure 1 motivating experiment.

Separate estimation must match co-estimation for the timing-independent
producer and substantially under-estimate the timing-sensitive
consumer — the paper's core motivation (Figure 1(b)).
"""

import pytest

from repro.core import PowerCoEstimator, SeparateEstimator
from repro.systems import producer_consumer


@pytest.fixture(scope="module")
def bundle():
    return producer_consumer.build_system(num_packets=4)


@pytest.fixture(scope="module")
def coest(bundle):
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    return estimator.estimate(bundle.stimuli(), strategy="full")


@pytest.fixture(scope="module")
def separate(bundle):
    return SeparateEstimator(bundle.network, bundle.config).estimate(
        bundle.stimuli()
    )


def test_producer_processes_fixed_amount_of_data(bundle, coest):
    assert coest.report.transitions["producer"] == 4


def test_producer_energy_matches_between_flows(coest, separate):
    """The producer's work is timing-independent: both flows agree."""
    reference = coest.report.component_energy("producer")
    estimate = separate.component_energy("producer")
    assert estimate == pytest.approx(reference, rel=1e-6)


def test_consumer_underestimated_by_separate_flow(coest, separate):
    """Separate estimation misses the timing-dependent loop work.

    The paper reports ~62% under-estimation; the reproduced system is
    calibrated into that regime and the direction must always hold.
    """
    error = separate.underestimation_vs(coest.report, "consumer")
    assert 40.0 < error < 80.0


def test_consumer_energy_larger_under_coestimation(coest, separate):
    assert (coest.report.component_energy("consumer")
            > separate.component_energy("consumer"))


def test_producer_dominates_consumer(coest):
    """As in Figure 1(b), the software producer consumes orders of
    magnitude more energy than the small hardware consumer."""
    producer = coest.report.component_energy("producer")
    consumer = coest.report.component_energy("consumer")
    assert producer > 100 * consumer


def test_run_is_deterministic(bundle):
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    first = estimator.estimate(bundle.stimuli(), strategy="full")
    second = estimator.estimate(bundle.stimuli(), strategy="full")
    assert first.report.total_energy_j == second.report.total_energy_j
    assert first.report.transitions == second.report.transitions


def test_waveform_available(coest):
    waveform = coest.power_waveform(bin_ns=5000.0)
    assert waveform
    total = sum(power for _, power in waveform)
    assert total > 0

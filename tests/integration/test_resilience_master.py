"""Integration: fault injection through a full co-estimation run.

The ISSUE.md acceptance bar: a producer/consumer run with a 10% fault
rate on the hw and iss sites must complete without raising, tag every
energy contribution with its provenance, surface the resilience
counters, and land within 15% of the fault-free total energy.
"""

from dataclasses import replace

import pytest

from repro.core import PowerCoEstimator
from repro.resilience import FaultPlan, ResilienceConfig
from repro.systems import producer_consumer
from repro.telemetry import Telemetry

NUM_PACKETS = 3


def _run(fault_plan=None, fault_retries=1, telemetry=None):
    bundle = producer_consumer.build_system(num_packets=NUM_PACKETS)
    config = bundle.config
    if fault_plan is not None:
        config = replace(
            config,
            resilience=ResilienceConfig(
                fault_plan=fault_plan, max_retries=fault_retries
            ),
        )
    estimator = PowerCoEstimator(bundle.network, config)
    return estimator.estimate(
        bundle.stimuli(), strategy="full", telemetry=telemetry
    )


@pytest.fixture(scope="module")
def baseline():
    return _run()


@pytest.fixture(scope="module")
def faulty():
    telemetry = Telemetry.metrics_only()
    plan = FaultPlan.uniform(["hw", "iss"], 0.1, seed=7)
    result = _run(fault_plan=plan, fault_retries=0, telemetry=telemetry)
    return result, telemetry.metrics.snapshot()


def test_faulty_run_completes(faulty):
    result, _ = faulty
    assert result.report.total_energy_j > 0
    assert result.report.transitions["producer"] == NUM_PACKETS


def test_every_contribution_carries_provenance(faulty):
    result, _ = faulty
    provenance = result.report.provenance
    assert provenance, "no provenance counts recorded"
    assert set(provenance) <= {"exact", "cached", "macromodel", "degraded"}
    assert provenance.get("exact", 0) > 0
    # With a 10% fault rate and one retry some calls must have degraded.
    assert sum(provenance.values()) > provenance.get("exact", 0)
    by_provenance = result.report.by_provenance
    assert set(by_provenance) == set(provenance)
    component_energy = (
        result.report.by_category.get("sw", 0.0)
        + result.report.by_category.get("hw", 0.0)
    )
    assert sum(by_provenance.values()) == pytest.approx(component_energy)


def test_resilience_counters_surface(faulty):
    result, metrics = faulty
    stats = result.report.resilience_stats
    assert stats["persistent_failures"] > 0
    assert stats["fallbacks"] > 0
    assert stats["fault.invocations.hw"] > 0
    assert stats["fault.invocations.iss"] > 0
    # The same accounting reaches the metrics registry.
    assert metrics["counters"]["resilience.fallbacks"] == stats["fallbacks"]
    assert metrics["gauges"]["resilience.stats.persistent_failures"] == (
        stats["persistent_failures"]
    )


def test_energy_within_15_percent_of_fault_free(baseline, faulty):
    result, _ = faulty
    reference = baseline.report.total_energy_j
    assert result.report.total_energy_j == pytest.approx(reference, rel=0.15)


def test_same_seed_is_deterministic():
    plan = FaultPlan.uniform(["hw", "iss"], 0.1, seed=7)
    first = _run(fault_plan=plan)
    second = _run(fault_plan=plan)
    assert first.report.total_energy_j == second.report.total_energy_j
    assert first.report.provenance == second.report.provenance
    assert first.report.resilience_stats == second.report.resilience_stats


def test_fault_free_run_reports_exact_only(baseline):
    provenance = baseline.report.provenance
    assert set(provenance) <= {"exact", "cached"}
    assert baseline.report.resilience_stats == {}


def test_summary_mentions_provenance(faulty):
    result, _ = faulty
    text = "\n".join(result.report.summary_lines())
    assert "provenance" in text
    assert "resilience" in text

"""Integration: separate-estimation machinery and the explorer."""

import pytest

from repro.core import DesignSpaceExplorer, PowerCoEstimator, SeparateEstimator
from repro.core.explorer import priority_label, priority_permutations
from repro.systems import tcpip


class TestSeparateMachinery:
    def test_trace_capture_is_timing_independent(self):
        bundle = tcpip.build_system(dma_block_words=8, num_packets=2)
        separate = SeparateEstimator(bundle.network, bundle.config)
        reactions = separate.capture_traces(bundle.stimuli())
        assert reactions
        # Zero-delay capture still produces every component's trace.
        components = {record.cfsm for record in reactions}
        assert components == {"create_pack", "ip_check", "checksum"}

    def test_separate_report_totals(self):
        bundle = tcpip.build_system(dma_block_words=8, num_packets=2)
        separate = SeparateEstimator(bundle.network, bundle.config)
        report = separate.estimate(bundle.stimuli())
        assert report.total_energy_j > 0
        for name in ("create_pack", "ip_check", "checksum"):
            assert report.component_energy(name) > 0
            assert report.reactions_by_component[name] > 0


class TestPriorityPermutations:
    def test_three_masters_give_six_assignments(self):
        assignments = priority_permutations(["a", "b", "c"])
        assert len(assignments) == 6
        assert len({tuple(sorted(p.items())) for p in assignments}) == 6

    def test_label(self):
        assert priority_label({"x": 1, "y": 0}) == "y > x"


class TestExplorer:
    @pytest.fixture(scope="class")
    def explorer(self):
        bundle = tcpip.build_system(dma_block_words=8, num_packets=2)
        return DesignSpaceExplorer(
            bundle.network, bundle.config, bundle.stimuli_factory
        )

    def test_evaluate_single_point(self, explorer):
        point = explorer.evaluate(
            16, {"create_pack": 0, "ip_check": 1, "checksum": 2},
            strategy="caching",
        )
        assert point.dma_block_words == 16
        assert point.total_energy_j > 0
        assert "create_pack" in point.priority_label

    def test_sweep_covers_grid(self, explorer):
        points = explorer.sweep(
            [8, 32],
            priority_permutations(["create_pack", "ip_check"]),
            strategy="caching",
        )
        assert len(points) == 4
        minimum = DesignSpaceExplorer.minimum_energy_point(points)
        assert minimum in points
        assert all(minimum.total_energy_j <= p.total_energy_j for p in points)

    def test_bigger_dma_never_costs_more_energy(self, explorer):
        priorities = {"create_pack": 0, "ip_check": 1, "checksum": 2}
        small = explorer.evaluate(2, priorities, strategy="caching")
        large = explorer.evaluate(64, priorities, strategy="caching")
        assert large.total_energy_j < small.total_energy_j

    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError):
            DesignSpaceExplorer.minimum_energy_point([])

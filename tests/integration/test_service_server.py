"""Acceptance tests of the co-estimation service against real runs.

The ISSUE's acceptance scenario, end to end:

* under fault-injected load with the queue saturated, the server sheds
  or rejects with 429 — bounded memory, no deadlock;
* a component-estimator site at 100% failure trips its circuit breaker
  and requests keep being answered from the degradation ladder with
  correct (non-exact) provenance tags;
* a SIGTERM drains gracefully: exit code 0 and a resumable checkpoint
  of whatever never started.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    CoEstimationService,
    ServiceConfig,
    ServiceRejected,
    load_drain_checkpoint,
)
from repro.service.api import parse_request
from repro.systems import system_names

KNOWN = system_names()


def req(body):
    return parse_request(body, known_systems=KNOWN)


@pytest.fixture
def service():
    instance = CoEstimationService(
        ServiceConfig(workers=1, queue_depth=2, default_deadline_s=60.0,
                      drain_timeout_s=30.0, breaker_threshold=2)
    )
    instance.start()
    yield instance
    instance.drain(timeout_s=30.0)


class TestBreakerUnderTotalFailure:
    def test_open_breaker_answers_from_degradation_ladder(self, service):
        chaos = {"system": "fig1", "strategy": "full",
                 "fault": {"rate": 1.0, "sites": ["hw"], "retries": 0}}
        pending, _ = service.submit(req(chaos))
        assert pending.wait(120.0)
        assert pending.status == 200  # degraded, not an error
        body = pending.body
        assert body["degraded"] is True
        non_exact = {level: count
                     for level, count in body["provenance"].items()
                     if level != "exact"}
        assert non_exact, "100%% hw failure produced only exact estimates"
        assert set(non_exact) <= {"cached", "macromodel", "degraded"}
        assert body["breakers"]["fig1:hw"] == "open"

        snap = service.stats_snapshot()
        breaker = snap["breakers"]["fig1:hw"]
        assert breaker["state"] == "open"
        assert breaker["opens"] >= 1
        # After the threshold tripped, calls were short-circuited
        # instead of burning the deadline on doomed invocations.
        assert breaker["short_circuits"] > 0

    def test_breaker_state_carries_across_requests(self, service):
        chaos = {"system": "fig1", "strategy": "full",
                 "fault": {"rate": 1.0, "sites": ["hw"], "retries": 0}}
        first, _ = service.submit(req(chaos))
        assert first.wait(120.0)
        short_circuits_before = service.stats_snapshot()[
            "breakers"]["fig1:hw"]["short_circuits"]

        second, _ = service.submit(req(dict(chaos, request_id="r2",
                                            fault={"rate": 1.0,
                                                   "sites": ["hw"],
                                                   "seed": 5,
                                                   "retries": 0})))
        assert second.wait(120.0)
        assert second.status == 200
        assert second.body["degraded"] is True
        after = service.stats_snapshot()["breakers"]["fig1:hw"]
        # The second request found the breaker already open: it
        # short-circuited from its very first hw call.
        assert after["short_circuits"] > short_circuits_before

    def test_healthy_site_stays_closed(self, service):
        pending, _ = service.submit(req({"system": "fig1",
                                         "strategy": "full"}))
        assert pending.wait(120.0)
        assert pending.status == 200
        assert pending.body["degraded"] is False
        assert pending.body["provenance"] == {
            "exact": sum(pending.body["provenance"].values())
        }
        for state in pending.body["breakers"].values():
            assert state == "closed"


class TestSaturationUnderLoad:
    def test_burst_gets_429_never_unbounded(self, service):
        """A burst beyond workers+queue gets explicit backpressure."""
        outcomes = {"admitted": [], "rejected": 0}
        for index in range(12):
            body = {"system": "fig1", "strategy": "caching",
                    "fault": {"rate": 0.01, "sites": ["hw"],
                              "seed": index, "retries": 1}}
            try:
                pending, _ = service.submit(req(body))
                outcomes["admitted"].append(pending)
            except ServiceRejected as rejection:
                assert rejection.status == 429
                assert rejection.retry_after_s >= 1
                outcomes["rejected"] += 1
            assert service.queue.depth <= service.config.queue_depth
        assert outcomes["rejected"] > 0, (
            "a 12-request burst against workers=1/queue=2 never saw "
            "backpressure"
        )
        # No deadlock: everything admitted still completes.
        for pending in outcomes["admitted"]:
            assert pending.wait(120.0)
            assert pending.status in (200, 504)
        snap = service.stats_snapshot()
        assert snap["queue"]["rejected"] == outcomes["rejected"]
        assert snap["queue"]["peak_depth"] <= service.config.queue_depth


def _post_async(port, body, results):
    def worker():
        try:
            connection = http.client.HTTPConnection("127.0.0.1", port,
                                                    timeout=120)
            connection.request("POST", "/estimate", body=json.dumps(body),
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            results.append((response.status,
                            json.loads(response.read() or b"{}")))
            connection.close()
        except OSError:
            pass  # server exited under us: the drain answered or closed
    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    return thread


def _stats(port):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", "/stats")
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def _wait_for(predicate, timeout_s=30.0, message="condition never held"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(message)


class TestServeSigtermDrain:
    def test_sigterm_drains_to_exit_0_with_resumable_checkpoint(
            self, tmp_path):
        checkpoint = str(tmp_path / "drain.ckpt")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        env.setdefault("PYTHONUNBUFFERED", "1")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--queue-depth", "8",
             "--drain-timeout-s", "0", "--checkpoint", checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True, cwd=os.getcwd(),
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])

            results = []
            threads = []
            # A hang-fault chaos request pins the single worker (every
            # hw invocation sleeps 60 s); only once /stats proves it is
            # in flight are the plain requests posted, so they provably
            # cannot start before the SIGTERM lands — no sleep-and-hope
            # timing.
            threads.append(_post_async(
                port,
                {"system": "fig1", "strategy": "full", "deadline_s": 300,
                 "fault": {"rate": 1.0, "sites": ["hw"], "kind": "hang",
                           "hang_s": 60.0, "retries": 0}},
                results,
            ))
            _wait_for(
                lambda: _stats(port)["service"]["in_flight"] >= 1,
                message="hang request never reached the worker",
            )
            for index in range(4):
                threads.append(_post_async(
                    port,
                    {"system": "tcpip", "strategy": "full",
                     "deadline_s": 300,
                     "fault": {"rate": 0.01, "sites": ["hw"],
                               "seed": index, "retries": 1}},
                    results,
                ))
            _wait_for(
                lambda: _stats(port)["queue"]["depth"] >= 4,
                message="queue never built a backlog",
            )
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
            assert process.returncode == 0, process.stdout.read()
            output = process.stdout.read()
            assert "drain" in output

            # The checkpoint is loadable and its payloads re-parse into
            # valid requests: a restart with --resume picks them up.
            payloads = load_drain_checkpoint(checkpoint)
            assert len(payloads) == 4, payloads
            for payload in payloads:
                rebuilt = parse_request(payload, known_systems=KNOWN)
                assert rebuilt.system == "tcpip"
            for thread in threads:
                thread.join(10.0)
            # Every queued client was told its request was checkpointed
            # (the pinned in-flight request dies with the process).
            assert sorted(status for status, _ in results) == [503] * 4, \
                results
            assert all(body.get("checkpointed") for _, body in results)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

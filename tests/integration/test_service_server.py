"""Acceptance tests of the co-estimation service against real runs.

The ISSUE's acceptance scenario, end to end:

* under fault-injected load with the queue saturated, the server sheds
  or rejects with 429 — bounded memory, no deadlock;
* a component-estimator site at 100% failure trips its circuit breaker
  and requests keep being answered from the degradation ladder with
  correct (non-exact) provenance tags;
* a SIGTERM drains gracefully: exit code 0 and a resumable checkpoint
  of whatever never started.
"""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.service import (
    CoEstimationService,
    ServiceConfig,
    ServiceRejected,
    load_drain_checkpoint,
)
from repro.service.api import parse_request
from repro.systems import system_names

KNOWN = system_names()


def req(body):
    return parse_request(body, known_systems=KNOWN)


@pytest.fixture
def service():
    instance = CoEstimationService(
        ServiceConfig(workers=1, queue_depth=2, default_deadline_s=60.0,
                      drain_timeout_s=30.0, breaker_threshold=2)
    )
    instance.start()
    yield instance
    instance.drain(timeout_s=30.0)


class TestBreakerUnderTotalFailure:
    def test_open_breaker_answers_from_degradation_ladder(self, service):
        chaos = {"system": "fig1", "strategy": "full",
                 "fault": {"rate": 1.0, "sites": ["hw"], "retries": 0}}
        pending, _ = service.submit(req(chaos))
        assert pending.wait(120.0)
        assert pending.status == 200  # degraded, not an error
        body = pending.body
        assert body["degraded"] is True
        non_exact = {level: count
                     for level, count in body["provenance"].items()
                     if level != "exact"}
        assert non_exact, "100%% hw failure produced only exact estimates"
        assert set(non_exact) <= {"cached", "macromodel", "degraded"}
        assert body["breakers"]["fig1:hw"] == "open"

        snap = service.stats_snapshot()
        breaker = snap["breakers"]["fig1:hw"]
        assert breaker["state"] == "open"
        assert breaker["opens"] >= 1
        # After the threshold tripped, calls were short-circuited
        # instead of burning the deadline on doomed invocations.
        assert breaker["short_circuits"] > 0

    def test_breaker_state_carries_across_requests(self, service):
        chaos = {"system": "fig1", "strategy": "full",
                 "fault": {"rate": 1.0, "sites": ["hw"], "retries": 0}}
        first, _ = service.submit(req(chaos))
        assert first.wait(120.0)
        short_circuits_before = service.stats_snapshot()[
            "breakers"]["fig1:hw"]["short_circuits"]

        second, _ = service.submit(req(dict(chaos, request_id="r2",
                                            fault={"rate": 1.0,
                                                   "sites": ["hw"],
                                                   "seed": 5,
                                                   "retries": 0})))
        assert second.wait(120.0)
        assert second.status == 200
        assert second.body["degraded"] is True
        after = service.stats_snapshot()["breakers"]["fig1:hw"]
        # The second request found the breaker already open: it
        # short-circuited from its very first hw call.
        assert after["short_circuits"] > short_circuits_before

    def test_healthy_site_stays_closed(self, service):
        pending, _ = service.submit(req({"system": "fig1",
                                         "strategy": "full"}))
        assert pending.wait(120.0)
        assert pending.status == 200
        assert pending.body["degraded"] is False
        assert pending.body["provenance"] == {
            "exact": sum(pending.body["provenance"].values())
        }
        for state in pending.body["breakers"].values():
            assert state == "closed"


class TestSaturationUnderLoad:
    def test_burst_gets_429_never_unbounded(self, service):
        """A burst beyond workers+queue gets explicit backpressure."""
        outcomes = {"admitted": [], "rejected": 0}
        for index in range(12):
            body = {"system": "fig1", "strategy": "caching",
                    "fault": {"rate": 0.01, "sites": ["hw"],
                              "seed": index, "retries": 1}}
            try:
                pending, _ = service.submit(req(body))
                outcomes["admitted"].append(pending)
            except ServiceRejected as rejection:
                assert rejection.status == 429
                assert rejection.retry_after_s >= 1
                outcomes["rejected"] += 1
            assert service.queue.depth <= service.config.queue_depth
        assert outcomes["rejected"] > 0, (
            "a 12-request burst against workers=1/queue=2 never saw "
            "backpressure"
        )
        # No deadlock: everything admitted still completes.
        for pending in outcomes["admitted"]:
            assert pending.wait(120.0)
            assert pending.status in (200, 504)
        snap = service.stats_snapshot()
        assert snap["queue"]["rejected"] == outcomes["rejected"]
        assert snap["queue"]["peak_depth"] <= service.config.queue_depth


class TestCostAwareAdmission:
    """Two queued-out requests of different static cost get different
    Retry-After quotes: the backlog is priced in cost units, not
    entries (ISSUE acceptance scenario)."""

    @pytest.fixture
    def pinned_service(self, monkeypatch):
        # Workers that never take from the queue: the single queue slot
        # stays deterministically occupied, so every further submit is
        # a 429 priced off the same backlog.
        monkeypatch.setattr(CoEstimationService, "_worker_loop",
                            lambda self: None)
        service = CoEstimationService(
            ServiceConfig(workers=1, queue_depth=1,
                          default_deadline_s=60.0)
        )
        service.start()
        return service

    def test_heavier_design_quoted_longer_retry_after(self, pinned_service):
        service = pinned_service
        service.submit(req({"system": "automotive",
                            "strategy": "caching"}))  # occupies the slot

        with pytest.raises(ServiceRejected) as light:
            service.submit(req({"system": "automotive", "strategy": "full"}))
        with pytest.raises(ServiceRejected) as heavy:
            service.submit(req({"system": "tcpip", "strategy": "full"}))

        assert light.value.status == 429
        assert heavy.value.status == 429
        assert light.value.retry_after_s >= 1
        # Same queue state, same instant — the only difference is the
        # incoming request's own static weight (automotive ~1.2 units,
        # tcpip ~35 units), and the quote must reflect it.
        assert heavy.value.retry_after_s > light.value.retry_after_s

    def test_stats_expose_the_price_list(self, pinned_service):
        service = pinned_service
        service.submit(req({"system": "automotive", "strategy": "caching"}))
        with pytest.raises(ServiceRejected):
            service.submit(req({"system": "tcpip", "strategy": "full"}))

        snap = service.stats_snapshot()
        admission = snap["admission"]
        # The queue holds exactly the automotive filler.
        assert admission["queued_cost"] == pytest.approx(
            admission["static_costs"]["automotive"])
        assert admission["in_flight_cost"] == 0.0
        # Rejected requests are priced too: the probe's system is in
        # the price list even though it never entered the queue.
        assert set(admission["static_costs"]) == {"automotive", "tcpip"}
        assert (admission["static_costs"]["tcpip"]
                > admission["static_costs"]["automotive"])
        assert snap["queue"]["queued_cost"] == pytest.approx(
            admission["queued_cost"])
        assert snap["queue"]["admitted_cost"] == pytest.approx(
            admission["queued_cost"])

        exposition = service.metrics_exposition()
        assert "repro_admission_static_cost_queued" in exposition
        assert "repro_admission_static_cost_in_flight" in exposition
        assert "repro_admission_static_cost_seconds_per_unit" in exposition


def _post_async(port, body, results):
    def worker():
        try:
            connection = http.client.HTTPConnection("127.0.0.1", port,
                                                    timeout=120)
            connection.request("POST", "/estimate", body=json.dumps(body),
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            results.append((response.status,
                            json.loads(response.read() or b"{}")))
            connection.close()
        except OSError:
            pass  # server exited under us: the drain answered or closed
    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    return thread


def _stats(port):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", "/stats")
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def _wait_for(predicate, timeout_s=30.0, message="condition never held"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    pytest.fail(message)


class TestServeSigtermDrain:
    def test_sigterm_drains_to_exit_0_with_resumable_checkpoint(
            self, tmp_path):
        checkpoint = str(tmp_path / "drain.ckpt")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        env.setdefault("PYTHONUNBUFFERED", "1")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--queue-depth", "8",
             "--drain-timeout-s", "0", "--checkpoint", checkpoint],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True, cwd=os.getcwd(),
        )
        try:
            banner = process.stdout.readline()
            assert "listening on http://" in banner, banner
            port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])

            results = []
            threads = []
            # A hang-fault chaos request pins the single worker (every
            # hw invocation sleeps 60 s); only once /stats proves it is
            # in flight are the plain requests posted, so they provably
            # cannot start before the SIGTERM lands — no sleep-and-hope
            # timing.
            threads.append(_post_async(
                port,
                {"system": "fig1", "strategy": "full", "deadline_s": 300,
                 "fault": {"rate": 1.0, "sites": ["hw"], "kind": "hang",
                           "hang_s": 60.0, "retries": 0}},
                results,
            ))
            _wait_for(
                lambda: _stats(port)["service"]["in_flight"] >= 1,
                message="hang request never reached the worker",
            )
            for index in range(4):
                threads.append(_post_async(
                    port,
                    {"system": "tcpip", "strategy": "full",
                     "deadline_s": 300,
                     "fault": {"rate": 0.01, "sites": ["hw"],
                               "seed": index, "retries": 1}},
                    results,
                ))
            _wait_for(
                lambda: _stats(port)["queue"]["depth"] >= 4,
                message="queue never built a backlog",
            )
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
            assert process.returncode == 0, process.stdout.read()
            output = process.stdout.read()
            assert "drain" in output

            # The checkpoint is loadable and its payloads re-parse into
            # valid requests: a restart with --resume picks them up.
            payloads = load_drain_checkpoint(checkpoint)
            assert len(payloads) == 4, payloads
            for payload in payloads:
                rebuilt = parse_request(payload, known_systems=KNOWN)
                assert rebuilt.system == "tcpip"
            for thread in threads:
                thread.join(10.0)
            # Every queued client was told its request was checkpointed
            # (the pinned in-flight request dies with the process).
            assert sorted(status for status, _ in results) == [503] * 4, \
                results
            assert all(body.get("checkpointed") for _, body in results)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()

"""Integration: the TCP/IP NIC checksum subsystem."""

import pytest

from repro.core import PowerCoEstimator
from repro.systems import tcpip


@pytest.fixture(scope="module")
def result():
    bundle = tcpip.build_system(dma_block_words=8, num_packets=2)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    return estimator.estimate(bundle.stimuli(), strategy="full")


def test_all_packets_processed(result):
    assert result.report.transitions["create_pack"] == 2
    # Each packet ends with exactly one verdict from ip_check; the
    # computed checksum always matches the transmitted one, so the
    # verdicts are PKT_OK events (emitted but unconsumed -> "lost").
    assert result.report.lost_events == 2


def test_handshakes_scale_with_dma_blocks(result):
    """One CHK_GO/CHK_BLK_DONE pair per DMA block."""
    bundle = tcpip.build_system(dma_block_words=8, num_packets=2)
    sizes = [event.value for event in bundle.stimuli()]
    expected_blocks = sum((size + 7) // 8 for size in sizes)
    assert result.report.transitions["checksum"] == expected_blocks + 2  # +starts


def test_checksum_verdict_is_correct():
    """The hardware checksum equals the one create_pack computed, so
    ip_check must emit PKT_OK (observable as an emitted event)."""
    bundle = tcpip.build_system(dma_block_words=16, num_packets=1)
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    run = estimator.estimate(bundle.stimuli(), strategy="full")
    master = run.master
    # CHK_ERR would appear in lost events too; distinguish via the
    # ip_check transition count: prepare + one block_done per block.
    sizes = [event.value for event in bundle.stimuli()]
    blocks = sum((size + 15) // 16 for size in sizes)
    assert run.report.transitions["ip_check"] == 1 + blocks
    # The final checksum in shared memory matches the header value.
    header = master.shared_memory.words.get(tcpip.HEADER_CHECKSUM)
    assert header is not None and header > 0


def test_energy_decreases_with_dma_size():
    """Larger DMA blocks mean fewer arbitrations: Table 1's energy
    column falls monotonically from DMA=2 to DMA=64."""
    energies = []
    for dma in (2, 16):
        bundle = tcpip.build_system(dma_block_words=dma, num_packets=2)
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        run = estimator.estimate(bundle.stimuli(), strategy="full")
        energies.append(run.report.total_energy_j)
    assert energies[0] > energies[1]


def test_bus_masters_all_appear(result):
    grants_by_master = result.master.bus.arbiter.grants
    for master_name in tcpip.BUS_MASTERS:
        assert grants_by_master.get(master_name, 0) > 0, master_name


def test_cache_sees_software_references_only(result):
    cache = result.master.cache
    assert cache.accesses > 0
    assert 0.0 < cache.hit_rate <= 1.0


def test_components_energy_breakdown(result):
    report = result.report
    for component in ("create_pack", "ip_check", "checksum"):
        assert report.component_energy(component) > 0, component
    assert report.by_category["bus"] > 0
    assert report.by_category["sw"] > 0
    assert report.by_category["hw"] > 0


def test_priorities_affect_timing():
    """Different arbitration priorities change completion time and
    energy — the coupling Figure 7 explores."""
    # Packets must arrive faster than they are processed so that
    # create_pack's writes contend with checksum's reads on the bus.
    first = tcpip.build_system(dma_block_words=4, num_packets=3,
                               packet_period_ns=30_000.0,
                               priorities={"create_pack": 0, "ip_check": 1,
                                           "checksum": 2})
    second = tcpip.build_system(dma_block_words=4, num_packets=3,
                                packet_period_ns=30_000.0,
                                priorities={"checksum": 0, "ip_check": 1,
                                            "create_pack": 2})
    run_one = PowerCoEstimator(first.network, first.config).estimate(
        first.stimuli(), strategy="full")
    run_two = PowerCoEstimator(second.network, second.config).estimate(
        second.stimuli(), strategy="full")
    assert (run_one.report.total_energy_j != run_two.report.total_energy_j
            or run_one.report.end_time_ns != run_two.report.end_time_ns)

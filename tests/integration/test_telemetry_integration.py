"""Integration: telemetry threaded through a full co-estimation run.

The contract under test: (1) a run with a telemetry bundle produces a
loadable Chrome trace and a metrics snapshot that *agrees with the
strategy's own statistics*, and (2) telemetry never perturbs the
estimate — the same run with and without instrumentation reports
bit-identical energy.
"""

import json

import pytest

from repro.core import PowerCoEstimator
from repro.core.caching import CachingStrategy
from repro.systems import producer_consumer
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    chrome_trace_events,
    render_chrome_trace,
    render_report,
)


@pytest.fixture(scope="module")
def bundle():
    return producer_consumer.build_system(num_packets=4)


@pytest.fixture(scope="module")
def traced(bundle):
    """One cached run with full telemetry and the caching strategy."""
    telemetry = Telemetry()
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    result = estimator.estimate(
        bundle.stimuli(),
        strategy=CachingStrategy(),
        shared_memory_image=bundle.shared_memory_image,
        telemetry=telemetry,
    )
    return result, telemetry


class TestMetricsAgreeWithRun:
    def test_cache_hit_rate_is_positive(self, traced):
        _, telemetry = traced
        flat = telemetry.metrics.flat()
        assert flat["strategy.cache_hit_rate"] > 0.0
        assert flat["strategy.cache.hits"] > 0
        assert (flat["strategy.cache.hits"] + flat["strategy.cache.misses"]
                == flat["strategy.cache.lookups"])

    def test_snapshot_matches_strategy_statistics(self, traced):
        result, telemetry = traced
        flat = telemetry.metrics.flat()
        statistics = result.master.strategy.statistics()
        assert flat["strategy.cache.hits"] == statistics["cache_hits"]
        assert flat["strategy.cache.misses"] == statistics["low_level_calls"]
        assert (flat["strategy.cache.distinct_paths"]
                == statistics["distinct_paths"])

    def test_snapshot_matches_master_counters(self, traced):
        result, telemetry = traced
        flat = telemetry.metrics.flat()
        stats = result.master.stats
        assert flat["iss_calls"] == stats.iss_invocations
        assert flat["hw_sim_calls"] == stats.hw_invocations
        assert flat["master.transitions"] == sum(stats.transitions.values())
        assert flat["master.dispatched"] == stats.dispatched
        # The live counters agree with the end-of-run gauges.
        assert flat["iss.invocations"] == stats.iss_invocations
        assert flat["hw.invocations"] == stats.hw_invocations

    def test_energy_gauges_match_accountant(self, traced):
        result, telemetry = traced
        flat = telemetry.metrics.flat()
        assert flat["energy.total_j"] == pytest.approx(
            result.master.accountant.total_energy
        )

    def test_queue_and_reaction_histograms_populated(self, traced):
        _, telemetry = traced
        histograms = telemetry.metrics.snapshot()["histograms"]
        assert histograms["master.queue_depth"]["count"] > 0
        assert histograms["master.reaction_seconds"]["count"] > 0


class TestTraceExport:
    def test_chrome_trace_is_valid_and_complete(self, traced):
        _, telemetry = traced
        events = json.loads(render_chrome_trace(telemetry.tracer))
        assert isinstance(events, list) and events
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
        # Energy lands as at least one counter track.
        counter_names = {e["name"] for e in events if e["ph"] == "C"}
        assert counter_names, "expected an energy counter track"
        # Spans cover master reactions and both low-level engines.
        span_tracks = set()
        by_tid = {
            e["tid"]: e["args"]["name"]
            for e in events if e["ph"] == "M"
        }
        for e in events:
            if e["ph"] == "X":
                span_tracks.add(by_tid[e["tid"]])
        assert {"master", "iss", "hw", "strategy"} <= span_tracks

    def test_strategy_decisions_recorded_as_instants(self, traced):
        _, telemetry = traced
        names = {name for _, name, _, _ in telemetry.tracer.instants}
        assert "cache.hit" in names
        assert "cache.miss" in names

    def test_report_renders(self, traced):
        _, telemetry = traced
        text = render_report(telemetry)
        assert "Hottest spans" in text
        assert "energy cache" in text
        assert "ISS invocations" in text


class TestTelemetryIsInert:
    def test_instrumented_run_matches_uninstrumented(self, bundle, traced):
        result, _ = traced
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        plain = estimator.estimate(
            bundle.stimuli(),
            strategy=CachingStrategy(),
            shared_memory_image=bundle.shared_memory_image,
        )
        assert plain.report.total_energy_j == result.report.total_energy_j
        assert plain.report.transitions == result.report.transitions

    def test_default_master_uses_shared_null_bundle(self, bundle):
        estimator = PowerCoEstimator(bundle.network, bundle.config)
        result = estimator.estimate(bundle.stimuli(), strategy="full")
        master = result.master
        assert master.telemetry is NULL_TELEMETRY
        assert master.bus.telemetry is NULL_TELEMETRY
        # The shared null tracer never accumulates anything to export.
        assert chrome_trace_events(NULL_TELEMETRY.tracer) == []

"""Property tests: abstract-interpretation soundness (the DF5xx engine).

The contract of :mod:`repro.lint.absint` is soundness, nothing less:

* **intervals** — for every expression and every concrete environment
  drawn from inside the abstract one, the concrete result lies inside
  the abstract interval;
* **ternary netlist fixpoint** — for every synthesized netlist and any
  input sequence, every net whose abstract value is ``0`` or ``1``
  holds exactly that value at every settled cycle, and the per-cycle
  energy bound is never exceeded by a concrete ``step``.

On top of the hypothesis sweeps a deterministic seeded fuzz runs
1000 expression vectors, so the soundness budget does not depend on
hypothesis' example budget.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfsm.expr import BinaryOp, Const, UnaryOp, Var
from repro.hw.logicsim import CompiledSimulator
from repro.hw.synth import synthesize_cfsm_cached
from repro.lint.absint import (
    TOP_INTERVAL,
    Interval,
    abstract_eval,
    abstract_netlist_values,
    netlist_energy_bound,
)

from tests.generators import (
    SW_BINOPS,
    SW_UNOPS,
    VAR_NAMES,
    hw_bodies,
    hw_values,
    sw_exprs,
    sw_values,
    var_bindings,
)
from tests.property.test_prop_synth import build_cfsm

SEEDED_VECTORS = 1000
_FUZZ_SEED = 0xAB51


# ---------------------------------------------------------------------------
# Interval algebra
# ---------------------------------------------------------------------------


class TestIntervalAlgebra:
    def test_empty_interval_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Interval(3, 2)

    def test_join_is_a_hull(self):
        joined = Interval(0, 5).join(Interval(10, 12))
        assert joined == Interval(0, 12)
        assert joined.contains(7)  # hull, not union

    def test_join_with_top_is_top(self):
        assert Interval(1, 2).join(TOP_INTERVAL) == TOP_INTERVAL

    def test_widen_drops_growing_bounds(self):
        previous = Interval(0, 10)
        grown = Interval(0, 11).widen(previous)
        assert grown == Interval(0, None)
        shrunk = Interval(2, 9).widen(previous)
        assert shrunk == Interval(2, 9)  # stable bounds survive

    def test_truthiness_predicates(self):
        assert Interval.const(0).definitely_zero
        assert Interval(3, 7).definitely_nonzero
        assert Interval(-2, -1).definitely_nonzero
        boolish = Interval(0, 1)
        assert not boolish.definitely_zero
        assert not boolish.definitely_nonzero

    @given(sw_values(), sw_values(), sw_values())
    def test_join_contains_both_operands(self, a, b, probe):
        lhs = Interval(min(a, b), max(a, b))
        rhs = Interval.const(probe)
        joined = lhs.join(rhs)
        assert joined.contains(a)
        assert joined.contains(b)
        assert joined.contains(probe)


# ---------------------------------------------------------------------------
# Expression intervals: abstract contains concrete
# ---------------------------------------------------------------------------


def _constant_env(bindings, event_value):
    env = {name: Interval.const(value) for name, value in bindings.items()}
    env["@IN"] = Interval.const(event_value)
    return env


@given(sw_exprs(3), var_bindings(sw_values()), sw_values())
@settings(max_examples=200)
def test_abstract_eval_contains_concrete(expr, bindings, event_value):
    concrete_env = dict(bindings)
    concrete_env["@IN"] = event_value
    concrete = expr.evaluate(concrete_env)
    interval = abstract_eval(expr, _constant_env(bindings, event_value))
    assert interval.contains(concrete), (
        "concrete %d escaped %r for %r" % (concrete, interval, expr)
    )


@given(
    sw_exprs(3),
    var_bindings(sw_values()),
    sw_values(),
    st.integers(min_value=0, max_value=1 << 12),
    st.integers(min_value=0, max_value=1 << 12),
)
@settings(max_examples=200)
def test_widened_env_still_contains_concrete(expr, bindings, event_value,
                                             slack_lo, slack_hi):
    """Soundness must survive imprecision: growing the abstract inputs
    may only grow (never lose) the concrete result."""
    concrete_env = dict(bindings)
    concrete_env["@IN"] = event_value
    concrete = expr.evaluate(concrete_env)
    wide_env = {
        name: Interval(value - slack_lo, value + slack_hi)
        for name, value in bindings.items()
    }
    wide_env["@IN"] = Interval(event_value - slack_lo, event_value + slack_hi)
    assert abstract_eval(expr, wide_env).contains(concrete)


@given(sw_exprs(3), var_bindings(sw_values()), sw_values())
@settings(max_examples=100)
def test_unbound_variables_are_top(expr, bindings, event_value):
    """An empty abstract environment is always sound (everything TOP)."""
    concrete_env = dict(bindings)
    concrete_env["@IN"] = event_value
    concrete = expr.evaluate(concrete_env)
    assert abstract_eval(expr, {}).contains(concrete)


def _random_expr(rng, depth):
    if depth <= 0 or rng.random() < 0.3:
        kind = rng.randrange(3)
        if kind == 0:
            return Const(rng.randint(-(1 << 20), 1 << 20))
        if kind == 1:
            return Var(rng.choice(VAR_NAMES))
        return Const(rng.choice((0, 1, -1, (1 << 31) - 1, -(1 << 31))))
    if rng.random() < 0.2:
        return UnaryOp(rng.choice(SW_UNOPS), _random_expr(rng, depth - 1))
    return BinaryOp(
        rng.choice(SW_BINOPS),
        _random_expr(rng, depth - 1),
        _random_expr(rng, depth - 1),
    )


def test_seeded_fuzz_1000_vectors_sound():
    """Deterministic bulk soundness sweep: 1000 seeded (expression,
    environment) vectors, each checked under both a constant and a
    slack-widened abstract environment."""
    rng = random.Random(_FUZZ_SEED)
    for case in range(SEEDED_VECTORS):
        expr = _random_expr(rng, rng.randint(1, 4))
        bindings = {
            name: rng.randint(-(1 << 24), 1 << 24) for name in VAR_NAMES
        }
        concrete = expr.evaluate(dict(bindings))
        exact_env = {
            name: Interval.const(value) for name, value in bindings.items()
        }
        assert abstract_eval(expr, exact_env).contains(concrete), (
            "case %d: %r escaped under exact env" % (case, expr)
        )
        slack = rng.randint(0, 1 << 10)
        wide_env = {
            name: Interval(value - slack, value + slack)
            for name, value in bindings.items()
        }
        assert abstract_eval(expr, wide_env).contains(concrete), (
            "case %d: %r escaped under widened env" % (case, expr)
        )


# ---------------------------------------------------------------------------
# Netlist ternary fixpoint: abstract contains every concrete trajectory
# ---------------------------------------------------------------------------


def _assert_nets_inside(abstract, sim, context):
    for net, proved in enumerate(abstract):
        if proved is not None:
            assert sim.values[net] == proved, (
                "net %d proved %d but holds %d (%s)"
                % (net, proved, sim.values[net], context)
            )


@given(
    hw_bodies(),
    var_bindings(hw_values()),
    st.lists(st.integers(min_value=0, max_value=0xFFFF),
             min_size=8, max_size=24),
)
@settings(max_examples=15, deadline=None)
def test_netlist_fixpoint_contains_concrete_run(body, bindings, stimuli):
    """Every net the ternary fixpoint proves constant holds that value
    at every settled cycle, for arbitrary input stimuli; and no cycle's
    concrete energy exceeds the static per-cycle bound."""
    cfsm = build_cfsm(list(body))
    netlist = synthesize_cfsm_cached(cfsm).netlist
    abstract = abstract_netlist_values(netlist)
    bound = netlist_energy_bound(netlist, values=abstract)

    sim = CompiledSimulator(netlist)
    sim.reset()
    _assert_nets_inside(abstract, sim, "after reset")

    ports = sorted(netlist.input_ports)
    for cycle, stimulus in enumerate(stimuli):
        inputs = {}
        for offset, port in enumerate(ports):
            width = len(netlist.input_ports[port])
            inputs[port] = (stimulus >> offset) & ((1 << width) - 1)
        energy = sim.step(inputs)
        assert energy <= bound.total_j + 1e-15, (
            "cycle %d dissipated %.3g J above the static bound %.3g J"
            % (cycle, energy, bound.total_j)
        )
        _assert_nets_inside(abstract, sim, "cycle %d" % cycle)


@given(hw_bodies(), var_bindings(hw_values()))
@settings(max_examples=10, deadline=None)
def test_energy_bound_terms_are_consistent(body, bindings):
    cfsm = build_cfsm(list(body))
    netlist = synthesize_cfsm_cached(cfsm).netlist
    bound = netlist_energy_bound(netlist)
    assert bound.total_j >= 0.0
    assert abs(
        bound.total_j
        - (bound.clock_j + bound.dff_switch_j + bound.input_j
           + bound.gate_switch_j)
    ) < 1e-18
    assert bound.dead_toggle_j >= 0.0
    assert 0 <= bound.constant_gate_outputs <= bound.gate_outputs
    assert bound.gate_outputs == len(netlist.gates)

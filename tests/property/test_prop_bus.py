"""Property tests: shared-bus timeline invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bus.busmodel import SharedBus
from repro.bus.dma import blocks_needed
from repro.bus.model import BusParameters


def transfer_lists():
    return st.lists(
        st.tuples(
            st.sampled_from(["m0", "m1", "m2"]),
            st.integers(min_value=0, max_value=200),  # base address
            st.lists(st.integers(0, 255), min_size=1, max_size=20),
            st.floats(min_value=0, max_value=10_000, allow_nan=False),
        ),
        min_size=1,
        max_size=15,
    )


@given(transfer_lists(), st.integers(min_value=1, max_value=16))
def test_all_requests_complete_with_consistent_accounting(transfers, dma):
    params = BusParameters(dma_block_words=dma,
                           priorities={"m0": 0, "m1": 1, "m2": 2})
    bus = SharedBus(params)
    transfers = sorted(transfers, key=lambda t: t[3])
    total_words = 0
    expected_blocks = 0
    for master, base, words, time in transfers:
        bus.submit(master, True, base, words, time)
        total_words += len(words)
        expected_blocks += blocks_needed(len(words), True, dma)
    grants = bus.advance(float("inf"))
    assert len(grants) == len(transfers)
    assert bus.total_words == total_words
    assert bus.total_grants == expected_blocks
    assert not bus.pending
    # Grants never start before submission and never overlap.
    intervals = []
    for grant in grants:
        assert grant.start_ns >= grant.request.submitted_ns
        assert grant.end_ns > grant.start_ns
        intervals.append((grant.start_ns, grant.end_ns, grant.request.master))
    # Busy time equals the sum of per-grant cycles.
    per_block = params.handshake_cycles + params.memory_latency_cycles
    min_cycles = expected_blocks * per_block + total_words
    assert bus.total_busy_cycles == min_cycles


@given(transfer_lists())
def test_energy_monotone_in_traffic(transfers):
    """More transfers never reduce total bus energy."""
    params = BusParameters(dma_block_words=4)
    transfers = sorted(transfers, key=lambda t: t[3])
    bus_all = SharedBus(params)
    bus_half = SharedBus(params)
    half = max(1, len(transfers) // 2)
    for index, (master, base, words, time) in enumerate(transfers):
        bus_all.submit(master, True, base, words, time)
        if index < half:
            bus_half.submit(master, True, base, words, time)
    bus_all.advance(float("inf"))
    bus_half.advance(float("inf"))
    assert bus_all.total_energy >= bus_half.total_energy


@given(st.lists(st.integers(0, 255), min_size=1, max_size=32),
       st.integers(min_value=1, max_value=8))
def test_line_activity_counts_hamming_toggles(words, dma):
    params = BusParameters(dma_block_words=dma)
    bus = SharedBus(params)
    bus.submit("m", True, 0, words, 0.0)
    bus.advance(float("inf"))
    mask = (1 << params.data_width) - 1
    expected = 0
    last = 0
    for word in words:
        expected += bin((last ^ word) & mask).count("1")
        last = word & mask
    assert sum(bus.data_activity) == expected


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=128))
def test_blocks_needed_matches_ceiling(words, dma):
    import math
    assert blocks_needed(words, True, dma) == math.ceil(words / dma)
    assert blocks_needed(words, False, dma) == words

"""Property tests: energy cache statistics and policy invariants."""

import math
import statistics

from hypothesis import given
from hypothesis import strategies as st

from repro.core.caching import EnergyCache, EnergyCacheConfig


@given(st.lists(st.floats(min_value=1e-12, max_value=1e-3,
                          allow_nan=False, allow_infinity=False),
                min_size=2, max_size=50))
def test_welford_matches_reference(values):
    """Cache accumulators equal the two-pass mean/variance."""
    cache = EnergyCache()
    key = ("p", "t", ())
    for value in values:
        cache.update(key, value, 10)
    stats = cache.path_statistics(key)
    assert math.isclose(stats.mean_energy, statistics.fmean(values),
                        rel_tol=1e-9)
    assert math.isclose(stats.variance_energy, statistics.variance(values),
                        rel_tol=1e-6, abs_tol=1e-30)


@given(st.floats(min_value=1e-12, max_value=1e-6, allow_nan=False),
       st.integers(min_value=1, max_value=10))
def test_constant_path_is_served_after_threshold(energy, threshold):
    """A zero-variance path is cached exactly after thresh_iss_calls."""
    config = EnergyCacheConfig(thresh_variance=0.0, thresh_iss_calls=threshold)
    cache = EnergyCache(config)
    key = ("p", "t", ((1, "T"),))
    for call in range(threshold):
        assert cache.lookup(key) is None
        cache.update(key, energy, 42)
    cached = cache.lookup(key)
    assert cached is not None
    cached_energy, cached_cycles = cached
    assert math.isclose(cached_energy, energy, rel_tol=1e-12)
    assert cached_cycles == 42


@given(st.lists(st.floats(min_value=1.0, max_value=2.0, allow_nan=False),
                min_size=4, max_size=30))
def test_high_variance_paths_never_served(values):
    """Paths whose spread exceeds the threshold keep using the ISS."""
    spread = max(values) - min(values)
    cache = EnergyCache(EnergyCacheConfig(thresh_variance=1e-9,
                                          thresh_iss_calls=2))
    key = ("p", "t", ())
    for value in values:
        cache.update(key, value, 5)
    if spread > 1e-3:
        assert cache.lookup(key) is None


@given(st.dictionaries(st.integers(0, 20),
                       st.floats(min_value=1e-9, max_value=1e-6,
                                 allow_nan=False),
                       min_size=1, max_size=20))
def test_distinct_keys_do_not_interfere(table):
    cache = EnergyCache(EnergyCacheConfig(thresh_variance=0.0,
                                          thresh_iss_calls=1))
    for key, energy in table.items():
        cache.update(("p", "t", (key,)), energy, key + 1)
    for key, energy in table.items():
        cached = cache.lookup(("p", "t", (key,)))
        assert cached is not None
        assert math.isclose(cached[0], energy, rel_tol=1e-12)
        assert cached[1] == key + 1
    assert cache.paths == len(table)


def test_lookup_counts_hits():
    cache = EnergyCache(EnergyCacheConfig(thresh_variance=0.0,
                                          thresh_iss_calls=1))
    key = ("p", "t", ())
    assert cache.lookup(key) is None
    assert cache.hits == 0
    cache.update(key, 1e-9, 3)
    assert cache.lookup(key) is not None
    assert cache.hits == 1

"""Property tests: cache simulator invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cachesim import CacheConfig, CacheSimulator


def access_streams():
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=4095),
                  st.booleans()),
        min_size=1,
        max_size=300,
    )


@given(access_streams())
def test_counter_consistency(stream):
    cache = CacheSimulator(CacheConfig(size_bytes=512, line_bytes=16,
                                       associativity=2))
    for address, is_write in stream:
        cache.access(address, is_write)
    assert cache.accesses == len(stream)
    assert cache.reads + cache.writes == cache.accesses
    assert cache.read_misses <= cache.reads
    assert cache.write_misses <= cache.writes
    assert 0.0 <= cache.hit_rate <= 1.0
    assert cache.total_energy > 0.0


@given(access_streams())
def test_immediate_rereference_hits(stream):
    """An access immediately repeated is always a hit."""
    cache = CacheSimulator(CacheConfig(size_bytes=512, line_bytes=16,
                                       associativity=2))
    for address, is_write in stream:
        cache.access(address, is_write)
        again = cache.access(address, False)
        assert again.hit


@given(st.integers(min_value=0, max_value=1000))
def test_single_address_misses_once(address):
    cache = CacheSimulator()
    first = cache.access(address, False)
    assert not first.hit
    for _ in range(5):
        assert cache.access(address, False).hit
    assert cache.misses == 1


@given(access_streams())
def test_bigger_cache_never_misses_more(stream):
    """Inclusion-ish sanity: doubling capacity cannot increase misses
    for an LRU cache with the same line size and associativity scaled."""
    small = CacheSimulator(CacheConfig(size_bytes=256, line_bytes=16,
                                       associativity=2))
    large = CacheSimulator(CacheConfig(size_bytes=1024, line_bytes=16,
                                       associativity=8))
    for address, is_write in stream:
        small.access(address, is_write)
        large.access(address, is_write)
    assert large.misses <= small.misses


@given(access_streams())
def test_flush_returns_dirty_count_and_clears(stream):
    cache = CacheSimulator(CacheConfig(write_back=True))
    for address, is_write in stream:
        cache.access(address, is_write)
    dirty = cache.flush()
    assert dirty >= 0
    # After a flush everything misses again.
    address = stream[0][0]
    assert not cache.access(address, False).hit

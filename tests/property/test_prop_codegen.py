"""Property tests: the ISS executing generated code must agree with the
behavioral s-graph interpreter on arbitrary programs and data.

This is the central software-substrate correctness property: variable
updates, emitted events (order and values), and shared-memory effects
must be identical between the two engines, for random transition
bodies over the full operator set with signed, wide operand values.
"""

from hypothesis import given, settings

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.events import Event
from repro.cfsm.sgraph import SGraph
from repro.sw.codegen import SHARED_MEMORY_BASE, compile_cfsm, transition_label
from repro.sw.iss import Iss

from tests.generators import (
    EVENT_IN,
    EVENT_OUT,
    VAR_NAMES,
    sw_bodies,
    sw_values,
    var_bindings,
)


class DictShared:
    """Shared memory stub shared by both engines."""

    def __init__(self, words=None):
        self.words = dict(words or {})

    def read(self, address):
        return self.words.get(address, 0)

    def write(self, address, value):
        self.words[address] = value


def build_cfsm(body):
    builder = CfsmBuilder("prop")
    builder.input(EVENT_IN, has_value=True)
    builder.output(EVENT_OUT, has_value=True)
    for name in VAR_NAMES:
        builder.var(name, 0)
    builder.transition("t", trigger=[EVENT_IN], body=body)
    return builder.build()


def run_behavioral(cfsm, bindings, event_value, shared):
    buffer = cfsm.make_buffer()
    state = dict(bindings)
    buffer.deliver(Event(EVENT_IN, value=event_value, time=0.0))
    transition = cfsm.enabled_transition(buffer, state)
    trace = cfsm.react(transition, buffer, state, shared=shared)
    return state, trace


def run_iss(cfsm, bindings, event_value, shared_words):
    compiled = compile_cfsm(cfsm)
    memory_map = compiled.memory_map
    memory = {memory_map.variables[name]: value for name, value in bindings.items()}
    memory[memory_map.event_mailboxes[EVENT_IN]] = event_value
    for address, value in shared_words.items():
        memory[SHARED_MEMORY_BASE + address] = value
    iss = Iss(compiled.program)
    result = iss.run(transition_label("prop", "t"), memory)
    return compiled, memory, result


@given(sw_bodies(), var_bindings(sw_values()), sw_values())
@settings(max_examples=60)
def test_iss_matches_behavioral(body, bindings, event_value):
    cfsm = build_cfsm(list(body))
    shared_initial = {address: (address * 37 + 5) for address in range(16)}

    behavioral_shared = DictShared(shared_initial)
    state, trace = run_behavioral(cfsm, bindings, event_value, behavioral_shared)

    compiled, memory, result = run_iss(cfsm, bindings, event_value, shared_initial)
    memory_map = compiled.memory_map

    # Variable state must match exactly.
    for name in VAR_NAMES:
        assert memory[memory_map.variables[name]] == state[name], name

    # Shared-memory writes must match.
    for address in range(16):
        assert (
            memory.get(SHARED_MEMORY_BASE + address, shared_initial.get(address, 0))
            == behavioral_shared.words.get(address, shared_initial.get(address, 0))
        )

    # The last emitted value is observable in the MMIO value word, and
    # the doorbell is set iff anything was emitted.
    doorbell = memory.get(memory_map.emit_doorbells[EVENT_OUT], 0)
    if trace.emitted:
        assert doorbell == 1
        assert memory[memory_map.emit_values[EVENT_OUT]] == trace.emitted[-1][1]
    else:
        assert doorbell == 0

    # Cycle/energy sanity: positive work, energy grows with cycles.
    assert result.cycles > 0
    assert result.energy > 0.0
    assert result.instruction_count > 0


@given(sw_bodies(max_statements=3), var_bindings(sw_values()), sw_values())
def test_iss_is_deterministic(body, bindings, event_value):
    cfsm = build_cfsm(list(body))
    shared = {address: address for address in range(16)}
    _, _, first = run_iss(cfsm, bindings, event_value, shared)
    _, _, second = run_iss(cfsm, bindings, event_value, shared)
    assert first.cycles == second.cycles
    assert first.energy == second.energy
    assert first.instruction_count == second.instruction_count


@given(sw_bodies(max_statements=3), var_bindings(sw_values()), sw_values())
def test_energy_at_least_base_cost_per_cycle(body, bindings, event_value):
    """Energy is bounded below by the cheapest per-cycle current."""
    cfsm = build_cfsm(list(body))
    _, _, result = run_iss(cfsm, bindings, event_value, {})
    iss_model_floor = 3.3 * 0.150 * 10e-9  # stall current, the cheapest
    assert result.energy >= result.cycles * iss_model_floor * 0.5

"""Property tests: the K-memory compactor."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.sampling import KMemoryCompactor


@given(st.lists(st.integers(0, 5), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=16))
def test_every_element_is_answered(signatures, period):
    """Dispatch or reuse — no element is dropped, and the first
    occurrence of every bigram is always dispatched."""
    compactor = KMemoryCompactor(period=period, warmup=1)
    seen_bigrams = set()
    previous = None
    for signature in signatures:
        bigram = (previous, signature)
        must_dispatch = bigram not in seen_bigrams
        decision = compactor.should_dispatch(signature)
        if must_dispatch:
            assert decision, "first occurrence of a bigram must dispatch"
        if decision:
            value = compactor.observe(signature, ("measured", signature))
        else:
            value = compactor.observe(signature, None)
        assert value is not None
        assert value[1] == signature or value[0] == "measured"
        seen_bigrams.add(bigram)
        previous = signature
    assert compactor.dispatched + compactor.reused == len(signatures)


@given(st.integers(min_value=2, max_value=10),
       st.integers(min_value=20, max_value=200))
def test_compaction_ratio_approaches_inverse_period(period, length):
    """A constant stream is dispatched roughly once per period."""
    compactor = KMemoryCompactor(period=period, warmup=1)
    for _ in range(length):
        if compactor.should_dispatch("x"):
            compactor.observe("x", 1.0)
        else:
            compactor.observe("x", None)
    expected = length / period
    assert compactor.dispatched <= expected + 2
    assert compactor.dispatched >= 1


@given(st.lists(st.integers(0, 100), min_size=1, max_size=300))
def test_k_memory_is_bounded(signatures):
    compactor = KMemoryCompactor(period=4, warmup=1, k_memory=8)
    for signature in signatures:
        if compactor.should_dispatch(signature):
            compactor.observe(signature, signature)
        else:
            compactor.observe(signature, None)
    assert len(compactor._table) <= 8


def test_reuse_returns_latest_measurement():
    compactor = KMemoryCompactor(period=100, warmup=1)
    # (None, a) is a new bigram: dispatch.
    assert compactor.should_dispatch("a")
    compactor.observe("a", "first")
    # (a, a) is also a new bigram: dispatch again.
    assert compactor.should_dispatch("a")
    compactor.observe("a", "second")
    # The third occurrence repeats bigram (a, a): reuse its latest
    # measurement.
    assert not compactor.should_dispatch("a")
    assert compactor.observe("a", None) == "second"

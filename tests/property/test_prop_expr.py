"""Property tests: expression AST semantics."""

import operator

from hypothesis import given
from hypothesis import strategies as st

from repro.cfsm.expr import (
    BinaryOp,
    Const,
    UnaryOp,
    Var,
    add,
    binary_operator_names,
    div,
    mod,
    mul,
    sub,
    unary_operator_names,
)

from tests.generators import VAR_NAMES, sw_exprs, sw_values, var_bindings


@given(sw_values(), sw_values())
def test_arithmetic_matches_python(a, b):
    env = {}
    assert add(Const(a), Const(b)).evaluate(env) == a + b
    assert sub(Const(a), Const(b)).evaluate(env) == a - b
    assert mul(Const(a), Const(b)).evaluate(env) == a * b


@given(sw_values(), sw_values())
def test_div_mod_identity(a, b):
    """a == div(a,b)*b + mod(a,b) whenever b != 0."""
    env = {}
    quotient = div(Const(a), Const(b)).evaluate(env)
    remainder = mod(Const(a), Const(b)).evaluate(env)
    if b != 0:
        assert quotient * b + remainder == a
        # Truncation toward zero.
        assert quotient == int(a / b)
    else:
        assert quotient == 0
        assert remainder == a


@given(sw_values(), sw_values())
def test_comparisons_are_boolean(a, b):
    for op, py in (("EQ", operator.eq), ("NE", operator.ne),
                   ("LT", operator.lt), ("LE", operator.le),
                   ("GT", operator.gt), ("GE", operator.ge)):
        value = BinaryOp(op, Const(a), Const(b)).evaluate({})
        assert value == int(py(a, b))
        assert value in (0, 1)


@given(sw_exprs(3), var_bindings(sw_values()), sw_values())
def test_expression_evaluation_total(expr, bindings, event_value):
    """Every generated expression evaluates without error and reads
    only the variables/events it reports."""
    env = dict(bindings)
    env["@IN"] = event_value
    result = expr.evaluate(env)
    assert isinstance(result, int)
    assert set(expr.variables()) <= set(VAR_NAMES)
    assert set(expr.event_values()) <= {"IN"}


@given(sw_exprs(3))
def test_macro_ops_subset_of_known_names(expr):
    known = set(binary_operator_names()) | set(unary_operator_names())
    assert set(expr.macro_ops()) <= known


@given(sw_exprs(3), var_bindings(sw_values()), sw_values())
def test_evaluation_is_pure(expr, bindings, event_value):
    env = dict(bindings)
    env["@IN"] = event_value
    first = expr.evaluate(env)
    second = expr.evaluate(env)
    assert first == second
    for name in VAR_NAMES:
        assert env[name] == bindings[name]


@given(st.integers(), st.integers(min_value=-100, max_value=100))
def test_shift_semantics_mask_amount(a, b):
    assert BinaryOp("SHL", Const(a), Const(b)).evaluate({}) == a << (b & 31)
    assert (
        BinaryOp("SHR", Const(a), Const(b)).evaluate({})
        == (a % (1 << 32)) >> (b & 31)
    )


@given(sw_values())
def test_unary_ops(a):
    assert UnaryOp("NEG", Const(a)).evaluate({}) == -a
    assert UnaryOp("NOT", Const(a)).evaluate({}) == int(not a)
    assert UnaryOp("BNOT", Const(a)).evaluate({}) == ~a


def test_depth_reporting():
    expr = add(mul(Var("a"), Const(2)), Const(1))
    assert expr.depth() == 3
    assert Const(5).depth() == 1

"""Property tests: event queue and one-place buffers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.cfsm.events import Event, EventBuffer
from repro.master.kernel import EventQueue


@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False),
                min_size=1, max_size=200))
def test_queue_pops_in_time_order(times):
    queue = EventQueue()
    for index, time in enumerate(times):
        queue.schedule(time, "k", index)
    popped = [queue.pop() for _ in range(len(times))]
    assert [item.time for item in popped] == sorted(times)


@given(st.lists(st.integers(0, 3), min_size=2, max_size=50))
def test_queue_ties_pop_in_schedule_order(payloads):
    """Items at the same timestamp come out in scheduling order."""
    queue = EventQueue()
    for index, payload in enumerate(payloads):
        queue.schedule(5.0, "k", (index, payload))
    order = [queue.pop().payload[0] for _ in range(len(payloads))]
    assert order == list(range(len(payloads)))


@given(st.lists(st.tuples(st.sampled_from(["A", "B"]),
                          st.integers(0, 100)),
                min_size=1, max_size=60))
def test_one_place_buffer_keeps_latest(deliveries):
    buffer = EventBuffer(inputs=["A", "B"])
    latest = {}
    for name, value in deliveries:
        buffer.deliver(Event(name, value=value, time=0.0))
        latest[name] = value
    for name, value in latest.items():
        assert buffer.present(name)
        assert buffer.value(name) == value
    overwrites = len(deliveries) - len(latest)
    assert buffer.overwrite_count == overwrites


@given(st.lists(st.sampled_from(["A", "B"]), min_size=1, max_size=30))
def test_consume_clears_only_named_events(deliveries):
    buffer = EventBuffer(inputs=["A", "B"])
    for name in deliveries:
        buffer.deliver(Event(name, time=0.0))
    present_before = set(buffer.pending_names())
    buffer.consume(["A"])
    assert not buffer.present("A")
    assert buffer.present("B") == ("B" in present_before)

"""Property tests: full co-estimation on randomly generated systems.

This is the master-level integration fuzzer: arbitrary transition
bodies are mapped to a software producer and a hardware consumer, wired
into a network with shared memory and a bus-mapped channel, and
co-simulated end to end.  The properties:

* co-simulation terminates and attributes non-negative energy,
* it is bit-for-bit deterministic across runs,
* energy caching never changes transition counts (behaviour) and keeps
  the energy estimate within the variance threshold's reach,
* the reference interpreter's state matches what the low-level engines
  left behind (software memory image and hardware registers).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.model import Implementation
from repro.core.caching import CachingStrategy
from repro.master.master import MasterConfig, SimulationMaster

from tests.generators import hw_bodies, hw_values, sw_bodies

# The generated bodies use events "IN" (valued trigger) and "OUT"
# (valued emission); chain: env -> producer(SW) -> consumer(HW).


def build_chained_network(producer_body, consumer_body):
    net = NetworkBuilder("fuzz")
    producer = net.cfsm("producer", mapping=Implementation.SW)
    producer.input("IN", has_value=True)
    producer.output("OUT", has_value=True)
    for name in ("a", "b", "c", "d"):
        producer.var(name, 0)
    producer.transition("t", trigger=["IN"], body=producer_body)

    # The generators emit to "OUT" and read value of "IN"; give the
    # consumer "OUT" as input and rewrite its EventValue reads.
    from repro.cfsm.expr import EventValue
    from repro.cfsm.sgraph import (
        Assign, Emit, If, Loop, SharedRead, SharedWrite,
    )

    def rewrite_expr(expr):
        from repro.cfsm.expr import BinaryOp, UnaryOp

        if isinstance(expr, EventValue):
            return EventValue("OUT")
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite_expr(expr.left),
                            rewrite_expr(expr.right))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite_expr(expr.operand))
        return expr

    def rewrite(statement):
        if isinstance(statement, Assign):
            return Assign(statement.target, rewrite_expr(statement.value))
        if isinstance(statement, Emit):
            value = (None if statement.value is None
                     else rewrite_expr(statement.value))
            return Emit("DONE", value)
        if isinstance(statement, If):
            return If(rewrite_expr(statement.cond),
                      [rewrite(s) for s in statement.then],
                      [rewrite(s) for s in statement.els])
        if isinstance(statement, Loop):
            return Loop(rewrite_expr(statement.count),
                        [rewrite(s) for s in statement.body])
        if isinstance(statement, SharedRead):
            return SharedRead(statement.target,
                              rewrite_expr(statement.address))
        if isinstance(statement, SharedWrite):
            return SharedWrite(rewrite_expr(statement.address),
                               rewrite_expr(statement.value))
        return statement

    consumer = net.cfsm("consumer", mapping=Implementation.HW, width=16)
    consumer.input("OUT", has_value=True)
    consumer.output("DONE", has_value=True)
    for name in ("a", "b", "c", "d"):
        consumer.var(name, 0)
    consumer.transition("t", trigger=["OUT"],
                        body=[rewrite(s) for s in consumer_body])

    net.environment_input("IN")
    net.on_bus("OUT")
    return net.build()


def stimuli(values):
    return [Event("IN", value=value, time=5_000.0 * (index + 1))
            for index, value in enumerate(values)]


def run_master(network, events, strategy=None):
    master = SimulationMaster(network, strategy, MasterConfig())
    for address in range(16):
        master.shared_memory.words[address] = address * 7 + 1
    master.run(events)
    return master


@given(sw_bodies(max_statements=3),
       hw_bodies(max_statements=3),
       st.lists(hw_values(), min_size=1, max_size=4))
@settings(max_examples=15, deadline=None)
def test_random_systems_cosimulate_deterministically(producer_body,
                                                     consumer_body, values):
    network = build_chained_network(list(producer_body), list(consumer_body))
    events = stimuli(values)

    first = run_master(network, events)
    second = run_master(network, events)

    assert first.total_energy() >= 0.0
    assert first.total_energy() == second.total_energy()
    assert first.stats.transitions == second.stats.transitions
    assert first.stats.end_time_ns == second.stats.end_time_ns


@given(sw_bodies(max_statements=3),
       hw_bodies(max_statements=2),
       st.lists(hw_values(), min_size=2, max_size=5))
@settings(max_examples=10, deadline=None)
def test_caching_preserves_behaviour_on_random_systems(producer_body,
                                                       consumer_body, values):
    network = build_chained_network(list(producer_body), list(consumer_body))
    events = stimuli(values)

    full = run_master(network, events)
    cached = run_master(network, events, CachingStrategy())

    assert cached.stats.transitions == full.stats.transitions
    # Behavioral state is identical regardless of strategy.
    for name in ("producer", "consumer"):
        assert cached.processes[name].state == full.processes[name].state
    assert cached.shared_memory.words == full.shared_memory.words


@given(sw_bodies(max_statements=3), hw_bodies(max_statements=2),
       st.lists(hw_values(), min_size=1, max_size=3))
@settings(max_examples=10, deadline=None)
def test_low_level_engines_track_reference_state(producer_body,
                                                 consumer_body, values):
    network = build_chained_network(list(producer_body), list(consumer_body))
    master = run_master(network, stimuli(values))

    producer = master.processes["producer"]
    memory_map = producer.compiled.memory_map
    for name, value in producer.state.items():
        assert producer.memory[memory_map.variables[name]] == value, name

    consumer = master.processes["consumer"]
    mask = (1 << consumer.cfsm.width) - 1
    for name, value in consumer.state.items():
        assert consumer.hw.read_variable(name) == value & mask, name

"""Property tests: s-graph optimization preserves behaviour.

The optimizer may change *cost* (macro-op counts, paths, cycles) but
never *behaviour*: for arbitrary programs and data, the optimized
s-graph must produce identical variable updates, emissions (order and
values), and shared-memory effects.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfsm.expr import BinaryOp, Const, Var
from repro.cfsm.optimize import optimize_sgraph
from repro.cfsm.sgraph import SGraph

from tests.generators import VAR_NAMES, sw_bodies, sw_values, var_bindings


class DictShared:
    def __init__(self, words=None):
        self.words = dict(words or {})

    def read(self, address):
        return self.words.get(address, 0)

    def write(self, address, value):
        self.words[address] = value


def run(graph, bindings, event_value, shared_words):
    shared = DictShared(shared_words)
    env = dict(bindings)
    env["@IN"] = event_value
    trace = graph.execute(env, shared=shared)
    return env, trace.emitted, shared.words


@given(sw_bodies(), var_bindings(sw_values()), sw_values(),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=60)
def test_optimized_behaviour_identical(body, bindings, event_value, unroll):
    original = SGraph(list(body))
    optimized, report = optimize_sgraph(original, unroll_limit=unroll)
    shared_image = {address: address * 13 + 1 for address in range(16)}

    env_a, emitted_a, shared_a = run(original, bindings, event_value,
                                     shared_image)
    env_b, emitted_b, shared_b = run(optimized, bindings, event_value,
                                     shared_image)

    for name in VAR_NAMES:
        assert env_a[name] == env_b[name], name
    assert emitted_a == emitted_b
    assert shared_a == shared_b
    assert report.total >= 0


@given(var_bindings(sw_values()))
def test_strength_reduction_is_exact(bindings):
    """x * c == optimized(x * c) for shift-friendly constants,
    including negative x."""
    for constant in (2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 20, 24,
                     31, 33, 48, 64, 96, 128):
        expr = BinaryOp("MUL", Var("a"), Const(constant))
        from repro.cfsm.optimize import SGraphOptimizer

        optimizer = SGraphOptimizer()
        reduced = optimizer.expression(expr)
        assert reduced.evaluate(bindings) == bindings["a"] * constant, constant


@given(sw_bodies(max_statements=3))
def test_optimization_is_idempotent(body):
    """Optimizing twice changes nothing further."""
    once, _ = optimize_sgraph(SGraph(list(body)))
    twice, report = optimize_sgraph(once)
    # A second pass may re-count nothing new beyond re-folding already
    # constant expressions; crucially the structures agree.
    assert repr(once.statements) == repr(twice.statements)


def test_dead_branch_and_loop_elimination():
    from repro.cfsm.expr import const, gt, var
    from repro.cfsm.sgraph import assign, if_, loop

    graph = SGraph([
        if_(gt(const(5), const(3)), [assign("a", const(1))],
            [assign("a", const(2))]),
        loop(const(0), [assign("b", const(9))]),
    ])
    optimized, report = optimize_sgraph(graph)
    assert report.dead_branches == 1
    assert report.dead_loops == 1
    env = {"a": 0, "b": 0}
    optimized.execute(env)
    assert env == {"a": 1, "b": 0}


def test_unrolling_removes_loop_overhead():
    from repro.cfsm.expr import add, const, var
    from repro.cfsm.sgraph import assign, loop

    graph = SGraph([loop(const(3), [assign("a", add(var("a"), const(1)))])])
    optimized, report = optimize_sgraph(graph, unroll_limit=4)
    assert report.unrolled_loops == 1
    env = {"a": 0}
    trace = optimized.execute(env)
    assert env["a"] == 3
    # No loop-test macro-ops remain.
    assert "TLOOPT" not in trace.op_names


def test_optimization_reduces_software_cost():
    """Strength-reduced code is measurably cheaper on the ISS while
    computing the same result."""
    from repro.cfsm.builder import CfsmBuilder
    from repro.cfsm.expr import add, const, mul, var
    from repro.cfsm.optimize import optimize_cfsm
    from repro.cfsm.sgraph import assign, loop
    from repro.sw.codegen import compile_cfsm, transition_label
    from repro.sw.iss import Iss

    def build():
        builder = CfsmBuilder("hot")
        builder.input("GO")
        builder.var("a", 1)
        builder.transition("t", trigger=["GO"], body=[
            loop(const(10), [
                assign("a", add(mul(var("a"), const(5)), const(1))),
            ]),
        ])
        return builder.build()

    def measure(cfsm):
        compiled = compile_cfsm(cfsm)
        memory = {compiled.memory_map.variables["a"]: 1}
        result = Iss(compiled.program).run(
            transition_label("hot", "t"), memory
        )
        return result, memory[compiled.memory_map.variables["a"]]

    original = build()
    optimized, report = optimize_cfsm(original, unroll_limit=0)
    assert report.strength_reduced == 1

    result_orig, value_orig = measure(original)
    result_opt, value_opt = measure(optimized)
    assert value_opt == value_orig  # same computation
    assert result_opt.cycles < result_orig.cycles  # no 4-cycle multiplies
    assert result_opt.energy < result_orig.energy


def test_hw_synthesis_of_reduced_multiply():
    """Strength reduction makes multiply-by-constant synthesizable."""
    from repro.cfsm.builder import CfsmBuilder
    from repro.cfsm.expr import const, mul, var
    from repro.cfsm.optimize import optimize_cfsm
    from repro.cfsm.sgraph import assign
    from repro.hw.synth import SynthesisError, synthesize_cfsm
    import pytest

    builder = CfsmBuilder("scaler", width=16)
    builder.input("GO", has_value=True)
    builder.var("x", 5)
    builder.transition("t", trigger=["GO"],
                       body=[assign("x", mul(var("x"), const(6)))])
    cfsm = builder.build()
    with pytest.raises(SynthesisError):
        synthesize_cfsm(cfsm)

    optimized, report = optimize_cfsm(cfsm)
    assert report.strength_reduced >= 1
    block = synthesize_cfsm(optimized)  # must not raise

    # And the hardware computes the right product.
    from repro.hw.estimator import HardwarePowerSimulator

    simulator = HardwarePowerSimulator(optimized)
    simulator.run_transition("t", {"GO": 0})
    assert simulator.read_variable("x") == 30
"""Property tests: hardware synthesis correctness.

Two layers are checked on random transition bodies:

1. the micro-program (RTL) lowering is semantics-preserving versus the
   behavioral interpreter, and
2. the gate-level netlist agrees with the behavioral interpreter
   bit-for-bit — variable registers, emitted events (order and
   values), and shared-memory traffic observed on the memory ports.
"""

from hypothesis import given, settings

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.events import Event
from repro.hw.estimator import HardwarePowerSimulator
from repro.hw.synth import (
    AluOp,
    ConstSrc,
    DoneOp,
    EmitOp,
    RegSrc,
    RtlCompiler,
    TestOp,
    _alu_semantics,
)

from tests.generators import (
    EVENT_IN,
    EVENT_OUT,
    VAR_NAMES,
    hw_bodies,
    hw_values,
    var_bindings,
)

WIDTH = 16
MASK = (1 << WIDTH) - 1

SHARED_IMAGE = {address: (address * 29 + 3) % 251 for address in range(16)}


class DictShared:
    def __init__(self, words=None):
        self.words = dict(words or {})

    def read(self, address):
        return self.words.get(address, 0)

    def write(self, address, value):
        self.words[address] = value


def build_cfsm(body):
    builder = CfsmBuilder("hprop", width=WIDTH)
    builder.input(EVENT_IN, has_value=True)
    builder.output(EVENT_OUT, has_value=True)
    for name in VAR_NAMES:
        builder.var(name, 0)
    builder.transition("t", trigger=[EVENT_IN], body=body)
    return builder.build()


def run_behavioral(cfsm, bindings, event_value):
    shared = DictShared(SHARED_IMAGE)
    buffer = cfsm.make_buffer()
    state = dict(bindings)
    buffer.deliver(Event(EVENT_IN, value=event_value, time=0.0))
    transition = cfsm.enabled_transition(buffer, state)
    trace = cfsm.react(transition, buffer, state, shared=shared)
    return state, trace, shared


def interpret_micro(program, state, inputs, read_script):
    """Reference interpretation feeding scripted shared-read values."""
    script = list(read_script)
    position = 0
    index = program.entries["t"]
    emits = []
    cycles = 0

    def read(src):
        if isinstance(src, RegSrc):
            return state.get(src.name, 0) & MASK
        if isinstance(src, ConstSrc):
            return src.value & MASK
        if src.event == "__MEMDATA":
            if position == 0 and not script:
                return 0
            return script[min(position, len(script)) - 1] & MASK
        return inputs.get(src.event, 0) & MASK

    while True:
        cycles += 1
        op = program.ops[index]
        if isinstance(op, AluOp):
            state[op.dest] = _alu_semantics(op.op, read(op.a), read(op.b), MASK)
            index = op.next
        elif isinstance(op, TestOp):
            index = op.next_taken if read(op.src) != 0 else op.next
        elif isinstance(op, EmitOp):
            emits.append((op.event, read(op.src)))
            if op.event == "__MEMRD":
                position += 1
            index = op.next
        elif isinstance(op, DoneOp):
            return cycles, emits
        else:  # pragma: no cover
            raise AssertionError("unknown op %r" % op)


@given(hw_bodies(), var_bindings(hw_values()), hw_values())
@settings(max_examples=40)
def test_micro_program_matches_behavioral(body, bindings, event_value):
    cfsm = build_cfsm(list(body))
    state, trace, _ = run_behavioral(cfsm, bindings, event_value)

    program = RtlCompiler(cfsm).compile()
    micro_state = dict(bindings)
    cycles, raw_emits = interpret_micro(
        program,
        micro_state,
        {EVENT_IN: event_value},
        [value for _, value in trace.shared_reads],
    )

    for name in VAR_NAMES:
        assert micro_state.get(name, 0) & MASK == state[name] & MASK, name
    emitted = [(e, v) for e, v in raw_emits if e == EVENT_OUT]
    assert emitted == [(e, v & MASK) for e, v in trace.emitted]
    mem_reads = [v for e, v in raw_emits if e == "__MEMRD"]
    assert mem_reads == [a & MASK for a, _ in trace.shared_reads]
    assert cycles >= 1


@given(hw_bodies(), var_bindings(hw_values()), hw_values())
@settings(max_examples=20)
def test_gate_level_matches_behavioral(body, bindings, event_value):
    cfsm = build_cfsm(list(body))
    state, trace, _ = run_behavioral(cfsm, bindings, event_value)

    simulator = HardwarePowerSimulator(cfsm)
    for name, value in bindings.items():
        simulator.poke_variable(name, value)
    result = simulator.run_transition(
        "t",
        {EVENT_IN: event_value},
        read_values=[value for _, value in trace.shared_reads],
    )

    for name in VAR_NAMES:
        assert simulator.read_variable(name) == state[name] & MASK, name
    assert result.emitted == [(e, v & MASK) for e, v in trace.emitted]
    assert result.mem_read_addresses == [a & MASK for a, _ in trace.shared_reads]
    assert result.mem_writes == [
        (a & MASK, v & MASK) for a, v in trace.shared_writes
    ]
    assert result.cycles > 0
    assert result.energy > 0.0

"""Unit tests: round-robin arbitration and voltage-scaling behaviour."""

import pytest

from repro.bus.arbiter import ArbitrationPolicy, PriorityArbiter
from repro.bus.busmodel import SharedBus
from repro.bus.model import BusParameters, BusRequest
from repro.hw.library import GateLibrary
from repro.hw.logicsim import CompiledSimulator
from repro.hw.netlist import NetlistBuilder


class TestRoundRobinArbiter:
    def make_request(self, master, time, request_id):
        return BusRequest(master, True, 0, [1], time, request_id)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            PriorityArbiter(policy="lottery")

    def test_alternation_under_contention(self):
        params = BusParameters(dma_block_words=1,
                               arbitration=ArbitrationPolicy.ROUND_ROBIN)
        bus = SharedBus(params)
        bus.submit("a", True, 0, [1] * 4, 0.0)
        bus.submit("b", True, 0x40, [2] * 4, 0.0)
        bus.advance(float("inf"))
        # Round robin shares the bus evenly regardless of names/order.
        assert bus.arbiter.grants == {"a": 1, "b": 1}
        # Fixed priority would instead let the first submitter finish.
        fixed = SharedBus(BusParameters(dma_block_words=1,
                                        priorities={"a": 0, "b": 1}))
        fixed.submit("a", True, 0, [1] * 4, 0.0)
        fixed.submit("b", True, 0x40, [2] * 4, 0.0)
        grants = fixed.advance(float("inf"))
        ends = {g.request.master: g.end_ns for g in grants}
        assert ends["a"] < ends["b"]

    def test_round_robin_wait_fairness(self):
        """Under symmetric load, round robin equalizes waiting."""
        rr = SharedBus(BusParameters(dma_block_words=2,
                                     arbitration=ArbitrationPolicy.ROUND_ROBIN))
        pr = SharedBus(BusParameters(dma_block_words=2,
                                     priorities={"a": 0, "b": 1}))
        for bus in (rr, pr):
            bus.submit("a", True, 0, [1] * 8, 0.0)
            bus.submit("b", True, 0x40, [2] * 8, 0.0)
            bus.advance(float("inf"))
        rr_spread = abs(rr.arbiter.wait_ns.get("a", 0.0)
                        - rr.arbiter.wait_ns.get("b", 0.0))
        pr_spread = abs(pr.arbiter.wait_ns.get("a", 0.0)
                        - pr.arbiter.wait_ns.get("b", 0.0))
        assert rr_spread <= pr_spread

    def test_policy_survives_parameter_copies(self):
        params = BusParameters(arbitration=ArbitrationPolicy.ROUND_ROBIN)
        assert params.with_dma(8).arbitration == ArbitrationPolicy.ROUND_ROBIN
        assert (params.with_priorities({"x": 1}).arbitration
                == ArbitrationPolicy.ROUND_ROBIN)


class TestVoltageScaling:
    def adder(self):
        builder = NetlistBuilder("adder")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 4)
        total, _ = builder.ripple_add(a, b)
        builder.output_bus("sum", total)
        return builder.build()

    def test_switching_energy_scales_quadratically(self):
        netlist = self.adder()
        high = CompiledSimulator(netlist, GateLibrary(vdd=3.3))
        low = CompiledSimulator(netlist, GateLibrary(vdd=1.65))
        stimulus = [(0, 0), (15, 15), (5, 9), (0, 0)]
        energy_high = sum(high.step({"a": a, "b": b}) for a, b in stimulus)
        energy_low = sum(low.step({"a": a, "b": b}) for a, b in stimulus)
        # Halving Vdd quarters the 1/2 C V^2 part; internal energy is
        # voltage-independent in this library, so the ratio is bounded
        # between 1x and 4x and close to 4x (caps dominate).
        assert 3.0 < energy_high / energy_low <= 4.0

    def test_bus_energy_scales_quadratically(self):
        high = BusParameters(vdd=3.3)
        low = BusParameters(vdd=1.65)
        assert high.energy_per_toggle() == pytest.approx(
            4.0 * low.energy_per_toggle()
        )

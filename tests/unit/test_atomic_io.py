"""Crash-safe writes and checkpoint file semantics."""

import json
import os
import stat

import pytest

from repro.errors import ReproError
from repro.ioutil import atomic_write_json, atomic_write_text, fsync_directory
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    resilience_signature,
    sweep_signature,
)
from repro.resilience.faults import FaultPlan


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "data")
        assert os.listdir(str(tmp_path)) == ["out.txt"]

    def test_failure_preserves_old_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "precious")

        class Explodes:
            def __str__(self):
                raise RuntimeError("mid-write failure")

        with pytest.raises(TypeError):
            atomic_write_text(path, Explodes())  # write() rejects non-str
        with open(path) as handle:
            assert handle.read() == "precious"
        assert os.listdir(str(tmp_path)) == ["out.txt"]

    def test_json_sorted_with_newline(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"b": 2, "a": 1})
        with open(path) as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}


class TestDirectoryFsync:
    """The rename itself must be durable, not just the file contents."""

    def _record_fsyncs(self, monkeypatch):
        """Route ``os.fsync`` through a recorder noting dir-vs-file."""
        calls = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            calls.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        return calls

    def test_atomic_write_fsyncs_file_then_directory(self, tmp_path,
                                                     monkeypatch):
        calls = self._record_fsyncs(monkeypatch)
        atomic_write_text(str(tmp_path / "out.txt"), "data")
        # One data-file fsync before the rename, one directory fsync
        # after it — in that order.
        assert calls == [False, True]

    def test_atomic_write_json_inherits_directory_fsync(self, tmp_path,
                                                        monkeypatch):
        calls = self._record_fsyncs(monkeypatch)
        atomic_write_json(str(tmp_path / "out.json"), {"a": 1})
        assert calls == [False, True]

    def test_fsync_directory_targets_the_directory(self, tmp_path,
                                                   monkeypatch):
        calls = self._record_fsyncs(monkeypatch)
        fsync_directory(str(tmp_path))
        assert calls == [True]

    def test_fsync_failure_tolerated(self, tmp_path, monkeypatch):
        """EINVAL from a directory fsync (network mounts) is not fatal."""

        def failing_fsync(fd):
            raise OSError("fsync not supported here")

        monkeypatch.setattr(os, "fsync", failing_fsync)
        fsync_directory(str(tmp_path))  # must not raise

    def test_missing_directory_tolerated(self, tmp_path):
        fsync_directory(str(tmp_path / "does-not-exist"))  # must not raise

    def test_empty_directory_means_cwd(self, monkeypatch, tmp_path):
        monkeypatch.chdir(str(tmp_path))
        fsync_directory("")  # must not raise


class TestResilienceSignature:
    """Resume must be refused across differing fault configurations."""

    def test_plain_dict_shape(self):
        signature = resilience_signature()
        assert signature == {
            "fault_plan": None,
            "fault_retries": None,
            "timeout_s": None,
            "degradation": True,
        }

    def test_fault_plan_serializes_deterministically(self):
        plan = FaultPlan.uniform(["hw", "iss"], 0.25, seed=7)
        a = resilience_signature(fault_plan=plan, fault_retries=1)
        b = resilience_signature(fault_plan=FaultPlan.uniform(
            ["hw", "iss"], 0.25, seed=7), fault_retries=1)
        assert a == b
        assert sweep_signature(resilience=a) == sweep_signature(resilience=b)

    @pytest.mark.parametrize(
        "other",
        [
            dict(fault_plan=FaultPlan.uniform(["hw"], 0.25, seed=7),
                 fault_retries=1),
            dict(fault_plan=FaultPlan.uniform(["hw", "iss"], 0.5, seed=7),
                 fault_retries=1),
            dict(fault_plan=FaultPlan.uniform(["hw", "iss"], 0.25, seed=8),
                 fault_retries=1),
            dict(fault_plan=FaultPlan.uniform(["hw", "iss"], 0.25, seed=7),
                 fault_retries=3),
            dict(fault_plan=None, fault_retries=None),
            dict(fault_plan=FaultPlan.uniform(["hw", "iss"], 0.25, seed=7),
                 fault_retries=1, timeout_s=5.0),
        ],
    )
    def test_differing_fault_config_changes_signature(self, other):
        base = resilience_signature(
            fault_plan=FaultPlan.uniform(["hw", "iss"], 0.25, seed=7),
            fault_retries=1,
        )
        assert sweep_signature(resilience=base) != sweep_signature(
            resilience=resilience_signature(**other)
        )

    def test_checkpoint_written_under_other_fault_plan_refused(self,
                                                               tmp_path):
        """The end-to-end satellite guarantee: ``--resume`` under a
        different fault plan or retry budget is rejected instead of
        silently mixing provenances."""
        path = str(tmp_path / "sweep.ckpt")
        faulted = sweep_signature(
            strategy="caching",
            resilience=resilience_signature(
                fault_plan=FaultPlan.uniform(["hw"], 0.1, seed=1),
                fault_retries=1,
            ),
        )
        CheckpointWriter(path, faulted).record_and_flush("dma4", 1.0)

        clean = sweep_signature(
            strategy="caching",
            resilience=resilience_signature(),
        )
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, clean)
        assert "different sweep" in str(excinfo.value)
        # The matching configuration still resumes.
        assert load_checkpoint(path, faulted) == {"dma4": 1.0}


class TestSweepSignature:
    def test_stable_and_order_independent(self):
        a = sweep_signature(builder="m:f", strategy="caching", seed=1)
        b = sweep_signature(seed=1, strategy="caching", builder="m:f")
        assert a == b

    def test_sensitive_to_values(self):
        a = sweep_signature(strategy="caching")
        b = sweep_signature(strategy="full")
        assert a != b

    def test_non_json_values_stringify_deterministically(self):
        """``default=str`` keeps odd values (tuples-in-reprs, paths)
        signable without crashing the sweep."""
        a = sweep_signature(odd={1, 2, 3})
        b = sweep_signature(odd={1, 2, 3})
        assert a == b

    def test_rejects_unserializable(self):
        class Unstringable:
            def __str__(self):
                return 42  # -> TypeError inside json.dumps

        with pytest.raises(CheckpointError):
            sweep_signature(bad=Unstringable())


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        signature = sweep_signature(strategy="caching")
        writer = CheckpointWriter(path, signature)
        writer.record_and_flush("dma4", {"energy": 1.5})
        writer.record_and_flush("dma8", {"energy": 2.5}, meta={"total": 4})

        completed = load_checkpoint(path, signature)
        assert completed == {"dma4": {"energy": 1.5}, "dma8": {"energy": 2.5}}

    def test_resume_carries_prior_results_forward(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        signature = sweep_signature(strategy="caching")
        CheckpointWriter(path, signature).record_and_flush("a", 1)

        resumed = CheckpointWriter(
            path, signature, completed=load_checkpoint(path, signature)
        )
        resumed.record_and_flush("b", 2)
        assert load_checkpoint(path, signature) == {"a": 1, "b": 2}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.ckpt"), "sig")

    def test_signature_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        CheckpointWriter(path, sweep_signature(strategy="caching")).flush()
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, sweep_signature(strategy="full"))
        assert "different sweep" in str(excinfo.value)

    def test_garbage_file_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "sig")

    def test_foreign_json_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        atomic_write_json(path, {"hello": "world"})
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "sig")

    def test_errors_are_repro_errors(self, tmp_path):
        with pytest.raises(ReproError):
            load_checkpoint(str(tmp_path / "nope.ckpt"), "sig")

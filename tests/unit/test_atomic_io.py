"""Crash-safe writes and checkpoint file semantics."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.ioutil import atomic_write_json, atomic_write_text
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    load_checkpoint,
    sweep_signature,
)


class TestAtomicWrite:
    def test_creates_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "first")
        atomic_write_text(path, "second")
        with open(path) as handle:
            assert handle.read() == "second"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "data")
        assert os.listdir(str(tmp_path)) == ["out.txt"]

    def test_failure_preserves_old_content(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "precious")

        class Explodes:
            def __str__(self):
                raise RuntimeError("mid-write failure")

        with pytest.raises(TypeError):
            atomic_write_text(path, Explodes())  # write() rejects non-str
        with open(path) as handle:
            assert handle.read() == "precious"
        assert os.listdir(str(tmp_path)) == ["out.txt"]

    def test_json_sorted_with_newline(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"b": 2, "a": 1})
        with open(path) as handle:
            text = handle.read()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')
        assert json.loads(text) == {"a": 1, "b": 2}


class TestSweepSignature:
    def test_stable_and_order_independent(self):
        a = sweep_signature(builder="m:f", strategy="caching", seed=1)
        b = sweep_signature(seed=1, strategy="caching", builder="m:f")
        assert a == b

    def test_sensitive_to_values(self):
        a = sweep_signature(strategy="caching")
        b = sweep_signature(strategy="full")
        assert a != b

    def test_non_json_values_stringify_deterministically(self):
        """``default=str`` keeps odd values (tuples-in-reprs, paths)
        signable without crashing the sweep."""
        a = sweep_signature(odd={1, 2, 3})
        b = sweep_signature(odd={1, 2, 3})
        assert a == b

    def test_rejects_unserializable(self):
        class Unstringable:
            def __str__(self):
                return 42  # -> TypeError inside json.dumps

        with pytest.raises(CheckpointError):
            sweep_signature(bad=Unstringable())


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        signature = sweep_signature(strategy="caching")
        writer = CheckpointWriter(path, signature)
        writer.record_and_flush("dma4", {"energy": 1.5})
        writer.record_and_flush("dma8", {"energy": 2.5}, meta={"total": 4})

        completed = load_checkpoint(path, signature)
        assert completed == {"dma4": {"energy": 1.5}, "dma8": {"energy": 2.5}}

    def test_resume_carries_prior_results_forward(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        signature = sweep_signature(strategy="caching")
        CheckpointWriter(path, signature).record_and_flush("a", 1)

        resumed = CheckpointWriter(
            path, signature, completed=load_checkpoint(path, signature)
        )
        resumed.record_and_flush("b", 2)
        assert load_checkpoint(path, signature) == {"a": 1, "b": 2}

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.ckpt"), "sig")

    def test_signature_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        CheckpointWriter(path, sweep_signature(strategy="caching")).flush()
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path, sweep_signature(strategy="full"))
        assert "different sweep" in str(excinfo.value)

    def test_garbage_file_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        with open(path, "w") as handle:
            handle.write("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "sig")

    def test_foreign_json_refused(self, tmp_path):
        path = str(tmp_path / "sweep.ckpt")
        atomic_write_json(path, {"hello": "world"})
        with pytest.raises(CheckpointError):
            load_checkpoint(path, "sig")

    def test_errors_are_repro_errors(self, tmp_path):
        with pytest.raises(ReproError):
            load_checkpoint(str(tmp_path / "nope.ckpt"), "sig")

"""Unit tests: bus parameters, arbiter, DMA, and the timeline model."""

import pytest

from repro.bus.arbiter import PriorityArbiter
from repro.bus.busmodel import SharedBus
from repro.bus.dma import block_sizes, blocks_needed
from repro.bus.model import BusParameters, BusRequest
from repro.bus.power import average_bus_power, bus_power_report


class TestBusParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            BusParameters(addr_width=0)
        with pytest.raises(ValueError):
            BusParameters(dma_block_words=0)

    def test_with_dma_preserves_other_fields(self):
        base = BusParameters(addr_width=12, priorities={"a": 0})
        changed = base.with_dma(64)
        assert changed.dma_block_words == 64
        assert changed.addr_width == 12
        assert changed.priorities == {"a": 0}
        assert base.dma_block_words != 64 or base.dma_block_words == 64

    def test_with_priorities(self):
        base = BusParameters()
        changed = base.with_priorities({"x": 2})
        assert changed.priorities == {"x": 2}
        assert base.priorities == {}

    def test_energy_per_toggle(self):
        params = BusParameters(vdd=2.0, line_capacitance_f=1e-9)
        assert params.energy_per_toggle() == pytest.approx(0.5 * 1e-9 * 4.0)

    def test_paper_figure7_point(self):
        params = BusParameters.paper_figure7(dma_block_words=128)
        assert params.vdd == 3.3
        assert params.line_capacitance_f == 10e-9
        assert params.addr_width == 8
        assert params.data_width == 8
        assert params.dma_block_words == 128


class TestDma:
    def test_block_sizes_cover_words(self):
        assert list(block_sizes(10, True, 4)) == [4, 4, 2]
        assert list(block_sizes(10, False, 4)) == [1] * 10
        assert list(block_sizes(0, True, 4)) == []

    def test_blocks_needed(self):
        assert blocks_needed(10, True, 4) == 3
        assert blocks_needed(0, True, 4) == 0
        assert blocks_needed(5, False, 4) == 5

    def test_negative_words_rejected(self):
        with pytest.raises(ValueError):
            list(block_sizes(-1, True, 4))


class TestArbiter:
    def make_request(self, master, time, request_id=0):
        return BusRequest(master, True, 0, [1], time, request_id)

    def test_priority_wins(self):
        arbiter = PriorityArbiter({"hi": 0, "lo": 5})
        pending = [self.make_request("lo", 0.0, 0), self.make_request("hi", 1.0, 1)]
        assert arbiter.pick(pending).master == "hi"

    def test_fifo_among_equal_priorities(self):
        arbiter = PriorityArbiter({})
        pending = [self.make_request("a", 5.0, 1), self.make_request("b", 2.0, 0)]
        assert arbiter.pick(pending).master == "b"

    def test_empty_pick_rejected(self):
        with pytest.raises(ValueError):
            PriorityArbiter().pick([])

    def test_wait_accounting(self):
        arbiter = PriorityArbiter()
        request = self.make_request("m", 10.0)
        arbiter.record_grant(request, 25.0)
        assert arbiter.wait_ns["m"] == 15.0
        assert arbiter.grants["m"] == 1


class TestSharedBus:
    def test_dma_size_reduces_arbitrations(self):
        words = list(range(32))
        small = SharedBus(BusParameters(dma_block_words=2))
        large = SharedBus(BusParameters(dma_block_words=16))
        small.submit("m", True, 0, words, 0.0)
        large.submit("m", True, 0, words, 0.0)
        small.advance(float("inf"))
        large.advance(float("inf"))
        assert small.total_grants == 16
        assert large.total_grants == 2
        assert small.total_busy_cycles > large.total_busy_cycles

    def test_priority_preemption_between_bursts(self):
        """A higher-priority master grabs the bus at a burst boundary."""
        params = BusParameters(dma_block_words=2,
                               priorities={"hi": 0, "lo": 1})
        bus = SharedBus(params)
        bus.submit("lo", True, 0, list(range(8)), 0.0)
        burst_ns = (params.handshake_cycles + params.memory_latency_cycles
                    + 2) * params.clock_period_ns
        bus.submit("hi", True, 0x40, [1, 2], burst_ns * 0.5)
        grants = bus.advance(float("inf"))
        by_master = {g.request.master: g for g in grants}
        # hi finishes before lo despite arriving later.
        assert by_master["hi"].end_ns < by_master["lo"].end_ns

    def test_grant_wait_time(self):
        bus = SharedBus(BusParameters(dma_block_words=8))
        bus.submit("a", True, 0, [1] * 8, 0.0)
        bus.submit("b", True, 0, [1] * 8, 0.0)
        grants = bus.advance(float("inf"))
        second = max(grants, key=lambda g: g.end_ns)
        assert second.wait_ns > 0

    def test_empty_transfer_rejected(self):
        bus = SharedBus()
        with pytest.raises(ValueError):
            bus.submit("m", True, 0, [], 0.0)

    def test_advance_respects_horizon(self):
        bus = SharedBus(BusParameters(dma_block_words=4))
        bus.submit("m", True, 0, [1] * 4, 1000.0)
        assert bus.advance(500.0) == []
        assert len(bus.advance(2000.0)) == 1

    def test_line_activity_shape(self):
        params = BusParameters(addr_width=6, data_width=10)
        bus = SharedBus(params)
        activity = bus.line_activity()
        assert len(activity["addr"]) == 6
        assert len(activity["data"]) == 10


class TestBusPower:
    def test_formula(self):
        params = BusParameters(vdd=2.0, clock_period_ns=10.0,
                               line_capacitance_f=1e-12)
        # One line toggling every cycle: P = 1/2 V^2 f C.
        power = average_bus_power(params, [100], 100)
        assert power == pytest.approx(0.5 * 4.0 * 1e8 * 1e-12)

    def test_zero_cycles(self):
        assert average_bus_power(BusParameters(), [5], 0) == 0.0

    def test_capacitance_list_mismatch(self):
        with pytest.raises(ValueError):
            average_bus_power(BusParameters(), [1, 2], 10,
                              line_capacitance_f=[1e-12])

    def test_report_keys(self):
        bus = SharedBus()
        bus.submit("m", True, 0, [3, 5], 0.0)
        bus.advance(float("inf"))
        report = bus_power_report(bus, 1000.0)
        for key in ("energy_j", "avg_power_w", "utilization", "grants", "words"):
            assert key in report

"""Unit tests: cache simulator configuration, RTOS scheduler, tracing."""

import pytest

from repro.cache.cachesim import CacheConfig, CacheConfigError, CacheSimulator
from repro.master.rtos import RtosConfig, RtosScheduler, SchedulingPolicy
from repro.master.tracing import EnergyAccountant


class TestCacheConfig:
    def test_power_of_two_enforced(self):
        with pytest.raises(CacheConfigError):
            CacheConfig(size_bytes=1000)
        with pytest.raises(CacheConfigError):
            CacheConfig(associativity=3)

    def test_line_bounds(self):
        with pytest.raises(CacheConfigError):
            CacheConfig(size_bytes=16, line_bytes=32)
        with pytest.raises(CacheConfigError):
            CacheConfig(line_bytes=2, word_bytes=4)

    def test_num_sets(self):
        config = CacheConfig(size_bytes=1024, line_bytes=32, associativity=4)
        assert config.num_sets == 8


class TestCacheBehaviour:
    def test_lru_eviction(self):
        # Direct-mapped-ish: 2 sets, 1 way, 4-byte lines of 1 word.
        config = CacheConfig(size_bytes=8, line_bytes=4, associativity=1,
                             word_bytes=4)
        cache = CacheSimulator(config)
        cache.access(0, False)   # set 0
        cache.access(2, False)   # set 0, evicts word 0
        result = cache.access(0, False)
        assert not result.hit

    def test_writeback_on_dirty_eviction(self):
        config = CacheConfig(size_bytes=8, line_bytes=4, associativity=1,
                             word_bytes=4, write_back=True)
        cache = CacheSimulator(config)
        cache.access(0, True)    # dirty
        result = cache.access(2, False)  # evicts dirty line
        assert result.writeback
        assert cache.writebacks == 1

    def test_write_through_never_writes_back(self):
        config = CacheConfig(size_bytes=8, line_bytes=4, associativity=1,
                             word_bytes=4, write_back=False)
        cache = CacheSimulator(config)
        cache.access(0, True)
        result = cache.access(2, False)
        assert not result.writeback

    def test_miss_penalty_and_energy(self):
        cache = CacheSimulator()
        miss = cache.access(0, False)
        hit = cache.access(0, False)
        assert miss.stall_cycles == cache.config.miss_penalty_cycles
        assert hit.stall_cycles == 0
        assert miss.energy_j > hit.energy_j

    def test_reset_statistics_keeps_contents(self):
        cache = CacheSimulator()
        cache.access(0, False)
        cache.reset_statistics()
        assert cache.accesses == 0
        assert cache.access(0, False).hit  # contents survived


class TestRtos:
    def test_static_priority_order(self):
        scheduler = RtosScheduler(RtosConfig(priorities={"a": 5, "b": 1}))
        scheduler.make_ready("a")
        scheduler.make_ready("b")
        assert scheduler.pick() == "b"
        assert scheduler.pick() == "a"
        assert scheduler.pick() is None

    def test_fifo_order(self):
        scheduler = RtosScheduler(RtosConfig(policy=SchedulingPolicy.FIFO))
        scheduler.make_ready("z")
        scheduler.make_ready("a")
        assert scheduler.pick() == "z"

    def test_round_robin_rotates(self):
        scheduler = RtosScheduler(RtosConfig(policy=SchedulingPolicy.ROUND_ROBIN))
        scheduler.make_ready("a")
        scheduler.make_ready("b")
        first = scheduler.pick()
        scheduler.make_ready(first)
        second = scheduler.pick()
        assert {first, second} == {"a", "b"}

    def test_context_switch_overhead(self):
        config = RtosConfig(dispatch_cycles=10, context_switch_cycles=40)
        scheduler = RtosScheduler(config)
        scheduler.make_ready("a")
        scheduler.pick()
        assert scheduler.last_overhead_cycles == 10  # first dispatch
        scheduler.make_ready("a")
        scheduler.pick()
        assert scheduler.last_overhead_cycles == 10  # same task: no switch
        scheduler.make_ready("b")
        scheduler.pick()
        assert scheduler.last_overhead_cycles == 50  # switch a -> b
        assert scheduler.context_switches == 1

    def test_ready_is_idempotent(self):
        scheduler = RtosScheduler()
        scheduler.make_ready("a")
        scheduler.make_ready("a")
        assert scheduler.ready_processes == ["a"]

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            RtosConfig(policy="lottery")


class TestEnergyAccountant:
    def test_totals_by_component_and_category(self):
        accountant = EnergyAccountant()
        accountant.add("p", "sw", 0.0, 10.0, 1e-9)
        accountant.add("p", "sw", 10.0, 20.0, 2e-9)
        accountant.add("q", "hw", 0.0, 5.0, 4e-9)
        assert accountant.component_energy("p") == pytest.approx(3e-9)
        assert accountant.by_category["hw"] == pytest.approx(4e-9)
        assert accountant.total_energy == pytest.approx(7e-9)

    def test_negative_energy_rejected(self):
        accountant = EnergyAccountant()
        with pytest.raises(ValueError):
            accountant.add("p", "sw", 0.0, 1.0, -1e-9)

    def test_waveform_conserves_energy(self):
        accountant = EnergyAccountant()
        accountant.add("p", "sw", 0.0, 100.0, 5e-9)
        accountant.add("p", "sw", 250.0, 260.0, 1e-9)
        waveform = accountant.power_waveform(bin_ns=50.0)
        total = sum(power * 50e-9 for _, power in waveform)
        assert total == pytest.approx(6e-9, rel=1e-9)

    def test_waveform_component_filter(self):
        accountant = EnergyAccountant()
        accountant.add("p", "sw", 0.0, 10.0, 5e-9)
        accountant.add("q", "hw", 0.0, 10.0, 50e-9)
        waveform_p = accountant.power_waveform(10.0, component="p")
        total_p = sum(power * 10e-9 for _, power in waveform_p)
        assert total_p == pytest.approx(5e-9, rel=1e-9)

    def test_peak_power(self):
        accountant = EnergyAccountant()
        accountant.add("p", "sw", 0.0, 10.0, 1e-9)
        accountant.add("p", "sw", 20.0, 30.0, 9e-9)
        time, peak = accountant.peak_power(10.0)
        assert time == 20.0
        assert peak > 0

    def test_disabled_samples_forbid_waveforms(self):
        accountant = EnergyAccountant(keep_samples=False)
        accountant.add("p", "sw", 0.0, 1.0, 1e-9)
        with pytest.raises(RuntimeError):
            accountant.power_waveform(1.0)

"""Unit tests: the ``python -m repro`` command-line interface."""

import os

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["describe", "warp-core"])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "fig1",
                                       "--strategy", "magic"])


class TestCommands:
    def test_describe(self, capsys):
        assert main(["describe", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "producer" in out and "SW" in out
        assert "watching" in out

    def test_describe_with_sizes(self, capsys):
        assert main(["describe", "fig1", "--sizes"]) == 0
        out = capsys.readouterr().out
        assert "gates=" in out
        assert "code_bytes=" in out

    def test_estimate_with_exports(self, tmp_path, capsys):
        csv_path = os.path.join(str(tmp_path), "power.csv")
        vcd_path = os.path.join(str(tmp_path), "power.vcd")
        code = main([
            "estimate", "fig1", "--strategy", "macromodel",
            "--waveform-csv", csv_path, "--waveform-vcd", vcd_path,
            "--bin-ns", "5000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "total energy" in out
        with open(csv_path) as handle:
            assert handle.readline().startswith("time_ns,")
        with open(vcd_path) as handle:
            assert "$timescale" in handle.read()

    def test_estimate_with_telemetry_exports(self, tmp_path, capsys):
        import json

        trace_path = os.path.join(str(tmp_path), "trace.json")
        metrics_path = os.path.join(str(tmp_path), "metrics.json")
        code = main([
            "estimate", "fig1", "--strategy", "caching",
            "--trace", trace_path, "--metrics", metrics_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Telemetry report" in out
        assert "Hottest spans" in out
        with open(trace_path) as handle:
            events = json.load(handle)
        assert isinstance(events, list) and events
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event
        assert any(event["ph"] == "C" for event in events)
        with open(metrics_path) as handle:
            snapshot = json.load(handle)
        assert snapshot["gauges"]["strategy.cache_hit_rate"] > 0.0

    def test_estimate_telemetry_report_only(self, capsys):
        assert main(["estimate", "fig1", "--telemetry-report"]) == 0
        out = capsys.readouterr().out
        assert "Telemetry report" in out
        assert "wrote" not in out.split("Telemetry report")[1]

    def test_characterize_to_file(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "params.txt")
        assert main(["characterize", "--output", path]) == 0
        with open(path) as handle:
            text = handle.read()
        assert ".time AVV" in text
        assert ".energy AEMIT" in text

    def test_explore_small(self, capsys):
        code = main(["explore", "--dma", "8", "32", "--packets", "1",
                     "--strategy", "macromodel"])
        assert code == 0
        out = capsys.readouterr().out
        assert "minimum: dma=32" in out

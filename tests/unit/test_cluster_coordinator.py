"""Unit tests of the coordinator core (repro.cluster.coordinator).

The transport is a fake — no sockets, no worker processes — so the
routing, re-dispatch, and cache-tier machinery is exercised directly.
"""

import threading

import pytest

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.membership import DEAD, LIMPLOCKED, MembershipConfig
from repro.cluster.protocol import TransportError
from repro.service.api import parse_request
from repro.systems import system_names


def make_request(system="fig1", **extra):
    body = {"system": system, "strategy": "caching"}
    body.update(extra)
    return parse_request(body, known_systems=system_names())


def make_coordinator(transport, **config):
    config.setdefault("backoff_base_s", 0.0)  # no sleeping in unit tests
    return ClusterCoordinator(
        ClusterConfig(membership=MembershipConfig(), **config),
        transport=transport,
    )


def test_estimate_routes_and_wraps_the_reply():
    seen = []

    def transport(url, path, body, timeout_s):
        seen.append((url, path, body["kind"]))
        return 200, {"status": "ok", "total_energy_j": 1.5}

    coordinator = make_coordinator(transport)
    coordinator.register_worker("w0", "http://a:1")
    pending, coalesced = coordinator.submit(make_request())
    assert not coalesced
    assert pending.status == 200
    assert pending.body["total_energy_j"] == 1.5
    assert pending.body["cluster"]["worker"] == "w0"
    assert pending.body["cluster"]["redispatches"] == 0
    assert pending.body["fingerprint"]
    assert seen == [("http://a:1", "/run", "estimate")]


def test_identical_requests_land_on_the_same_worker():
    targets = []

    def transport(url, path, body, timeout_s):
        targets.append(url)
        return 200, {"status": "ok"}

    coordinator = make_coordinator(transport)
    for worker in ("w0", "w1", "w2"):
        coordinator.register_worker(worker, "http://%s" % worker)
    for _ in range(4):
        coordinator.submit(make_request())
    assert len(set(targets)) == 1  # same fingerprint ⇒ same shard


def test_transport_failure_marks_dead_and_redispatches():
    dead_urls = set()

    def transport(url, path, body, timeout_s):
        if url in dead_urls:
            raise TransportError("connection refused")
        return 200, {"status": "ok"}

    coordinator = make_coordinator(transport)
    coordinator.register_worker("w0", "http://w0")
    coordinator.register_worker("w1", "http://w1")
    primary = coordinator._ring_preference(
        "fingerprint-probe"
    )  # warm call; actual primary found below
    request = make_request()
    # Kill whichever worker owns this request's shard.
    pending, _ = coordinator.submit(request)
    owner = pending.body["cluster"]["worker"]
    dead_urls.add("http://%s" % owner)
    survivor = "w1" if owner == "w0" else "w0"

    pending, _ = coordinator.submit(make_request())
    assert pending.status == 200
    assert pending.body["cluster"]["worker"] == survivor
    assert pending.body["cluster"]["redispatches"] == 1
    assert coordinator.membership.states()[owner] == DEAD
    assert coordinator.membership.get(owner).redispatched_jobs == 1
    assert coordinator._counters()["redispatches"] == 1
    assert primary  # silences the warm-call variable


def test_redispatch_budget_exhaustion_answers_502():
    def transport(url, path, body, timeout_s):
        raise TransportError("everything is down")

    coordinator = make_coordinator(transport, redispatch_budget=2)
    for worker in ("w0", "w1", "w2", "w3"):
        coordinator.register_worker(worker, "http://%s" % worker)
    pending, _ = coordinator.submit(make_request())
    assert pending.status == 502
    assert pending.body["reason"] == "redispatch_budget_exhausted"


def test_no_workers_answers_503():
    coordinator = make_coordinator(lambda *a: (_ for _ in ()).throw(
        AssertionError("must not dispatch")))
    pending, _ = coordinator.submit(make_request())
    assert pending.status == 503
    assert pending.body["reason"] == "no_workers"


def test_worker_error_reply_is_never_redispatched():
    """An HTTP-level error means the job ran; re-running a completed
    computation would be a duplicate, not a retry."""
    calls = []

    def transport(url, path, body, timeout_s):
        calls.append(url)
        return 500, {"status": "error", "reason": "estimation_failed"}

    coordinator = make_coordinator(transport)
    coordinator.register_worker("w0", "http://w0")
    coordinator.register_worker("w1", "http://w1")
    pending, _ = coordinator.submit(make_request())
    assert pending.status == 500
    assert len(calls) == 1
    assert coordinator._counters()["failed"] == 1
    assert coordinator._counters()["redispatches"] == 0


def test_draining_worker_hands_off_without_penalty():
    drained = {"w": None}

    def transport(url, path, body, timeout_s):
        if path == "/decommission":
            return 200, {"status": "draining"}
        if drained["w"] is not None and url == "http://%s" % drained["w"]:
            return 503, {"status": "rejected", "reason": "draining"}
        return 200, {"status": "ok"}

    coordinator = make_coordinator(transport)
    coordinator.register_worker("w0", "http://w0")
    coordinator.register_worker("w1", "http://w1")
    pending, _ = coordinator.submit(make_request())
    owner = pending.body["cluster"]["worker"]
    drained["w"] = owner
    pending, _ = coordinator.submit(make_request())
    assert pending.status == 200
    assert pending.body["cluster"]["worker"] != owner
    assert coordinator.membership.states()[owner] == "decommissioned"
    # A drain is planned, not a failure: no redispatch counted.
    assert coordinator._counters()["redispatches"] == 0


def test_concurrent_identical_requests_coalesce():
    release = threading.Event()
    dispatched = threading.Event()
    calls = []

    def transport(url, path, body, timeout_s):
        calls.append(url)
        dispatched.set()
        assert release.wait(10)
        return 200, {"status": "ok", "total_energy_j": 2.0}

    coordinator = make_coordinator(transport)
    coordinator.register_worker("w0", "http://w0")
    primary_result = {}

    def run_primary():
        pending, coalesced = coordinator.submit(make_request())
        primary_result["pending"] = pending
        primary_result["coalesced"] = coalesced

    thread = threading.Thread(target=run_primary, daemon=True)
    thread.start()
    assert dispatched.wait(10)
    follower, coalesced = coordinator.submit(make_request())
    assert coalesced is True
    release.set()
    thread.join(10)
    assert primary_result["coalesced"] is False
    assert follower is primary_result["pending"]  # same completion handle
    assert follower.wait(10)
    assert follower.body["total_energy_j"] == 2.0
    assert len(calls) == 1  # one dispatch served both clients
    assert coordinator.dedup.snapshot()["coalesced"] == 1


def test_draining_coordinator_rejects_submissions():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    coordinator.register_worker("w0", "http://w0")
    coordinator.drain_controller.request_drain("test")
    with pytest.raises(Exception) as excinfo:
        coordinator.submit(make_request())
    assert getattr(excinfo.value, "status", None) == 503


def test_readyz_reports_membership_states():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    status, body = coordinator.readyz_snapshot()
    assert status == 503 and body["status"] == "no_workers"
    coordinator.register_worker("w0", "http://w0")
    coordinator.register_worker("w1", "http://w1")
    coordinator.membership.quarantine("w1", "test quarantine")
    status, body = coordinator.readyz_snapshot()
    assert status == 200 and body["status"] == "ready"
    assert body["routable"] == ["w0"]
    assert body["states"]["live"] == ["w0"]
    assert body["states"]["limplocked"] == ["w1"]
    assert body["workers"]["w1"]["quarantine_reason"] == "test quarantine"
    assert coordinator.membership.states()["w1"] == LIMPLOCKED
    coordinator.drain_controller.request_drain("bye")
    status, body = coordinator.readyz_snapshot()
    assert status == 503 and body["status"] == "draining"


def test_quarantine_transition_counts_and_unroutes():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    coordinator.register_worker("w0", "http://w0")
    coordinator.register_worker("w1", "http://w1")
    assert sorted(coordinator.ring.nodes) == ["w0", "w1"]
    coordinator.membership.quarantine("w1", "slow")
    assert coordinator.ring.nodes == ["w0"]  # transition synced the ring
    assert coordinator._counters()["quarantines"] == 1


def make_cache_state(fingerprints, entry_count):
    return {
        "fingerprints": fingerprints,
        "cache": {
            "config": {},
            "entries": [
                {"key": "k%d" % index, "count": 1, "mean_energy": 1.0,
                 "m2_energy": 0.0, "mean_cycles": 10.0, "m2_cycles": 0.0}
                for index in range(entry_count)
            ],
        },
    }


def test_cache_tier_put_get_roundtrip():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    status, body = coordinator.cache_get("builder/caching")
    assert status == 200 and body["state"] is None
    state = make_cache_state({"cfsm": "abc"}, 3)
    status, body = coordinator.cache_put(
        {"key": "builder/caching", "state": state, "worker": "w0"}
    )
    assert status == 200 and body["adopted"] is True
    assert body["entries"] == 3
    status, body = coordinator.cache_get("builder/caching")
    assert body["state"]["fingerprints"] == {"cfsm": "abc"}
    assert len(body["state"]["cache"]["entries"]) == 3


def test_cache_tier_keeps_the_more_converged_snapshot():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    coordinator.cache_put({"key": "k", "worker": "w0",
                           "state": make_cache_state({"f": "1"}, 5)})
    # Fewer entries under the same fingerprints: rejected.
    status, body = coordinator.cache_put(
        {"key": "k", "worker": "w1",
         "state": make_cache_state({"f": "1"}, 2)})
    assert body["adopted"] is False
    # Different fingerprints (the design changed): newest wins even
    # with fewer entries — stale convergence is worthless.
    status, body = coordinator.cache_put(
        {"key": "k", "worker": "w1",
         "state": make_cache_state({"f": "2"}, 1)})
    assert body["adopted"] is True
    _, body = coordinator.cache_get("k")
    assert body["state"]["fingerprints"] == {"f": "2"}


def test_cache_tier_rejects_malformed_state():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    status, _ = coordinator.cache_put({"key": "", "state": {}})
    assert status == 400
    status, _ = coordinator.cache_put({"key": "k", "state": {"cache": {}}})
    assert status == 400


def test_sweep_rejects_bad_parameters():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    for params in (
        {"dma": []},
        {"dma": [0]},
        {"dma": "2"},
        {"packets": 0},
        {"period_ns": -1},
        {"strategy": "warp"},
        {"warm_start": "yes"},
        {"resume": True},  # resume without checkpoint
        {"checkpoint": 7},
    ):
        status, body = coordinator.run_sweep(params)
        assert status == 400, params
        assert body["status"] == "error"


def test_stats_snapshot_shape():
    coordinator = make_coordinator(lambda *a: (200, {"status": "ok"}))
    coordinator.register_worker("w0", "http://w0")
    coordinator.submit(make_request())
    stats = coordinator.stats_snapshot()
    assert stats["cluster"]["completed"] == 1
    assert stats["cluster"]["state"] == "ready"
    assert stats["cluster"]["workers_by_state"]["live"] == 1
    assert "w0" in stats["workers"]
    assert stats["dedup"]["primaries"] == 1
    exposition = coordinator.metrics_exposition()
    assert 'repro_cluster_workers{state="live"} 1' in exposition
    assert "repro_cluster_heartbeat_age_seconds" in exposition

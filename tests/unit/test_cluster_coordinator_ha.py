"""Unit tests of the coordinator's high-availability layer.

Roles, election, journal replication, epoch fencing, and the HA
observability surface — all against fake transports and a fake wall
clock (the lease never waits out a real TTL here).
"""

import pytest

from repro.cluster.coordinator import (
    ROLE_FENCED,
    ROLE_LEADER,
    ROLE_STANDBY,
    ClusterConfig,
    ClusterCoordinator,
)
from repro.cluster.journal import (
    KIND_LEADER_ELECTED,
    KIND_LEADER_RESIGNED,
    KIND_SWEEP_STARTED,
    KIND_WORKER_REGISTERED,
)
from repro.cluster.membership import DEAD, LIVE, MembershipConfig
from repro.cluster.protocol import (
    REASON_NOT_LEADER,
    REASON_STALE_EPOCH,
    STATUS_STALE_EPOCH,
)
from repro.obs.prometheus import validate_exposition
from repro.service.api import parse_request
from repro.systems import system_names


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def ok_transport(url, path, body, timeout_s):
    return 200, {"status": "ok", "total_energy_j": 1.0}


def make_request():
    return parse_request({"system": "fig1", "strategy": "caching"},
                         known_systems=system_names())


def make_ha_coordinator(tmp_path, coordinator_id, clock,
                        transport=ok_transport, **config):
    config.setdefault("backoff_base_s", 0.0)
    config.setdefault("orphan_grace_s", 0.0)
    config.setdefault("recover_orphan_sweeps", False)
    return ClusterCoordinator(
        ClusterConfig(
            membership=MembershipConfig(),
            coordinator_id=coordinator_id,
            control_dir=str(tmp_path / "control"),
            **config,
        ),
        transport=transport,
        wall_clock=clock,
    )


def replicate(source, replica):
    """One standby tail step, without HTTP: feed the wire entries."""
    status, body = source.journal_entries_since(replica.journal.tip_seq())
    assert status == 200
    return replica.apply_replicated(body["entries"])


# -- roles -------------------------------------------------------------


def test_control_dir_boots_as_standby_and_rejects_the_data_plane(tmp_path):
    coordinator = make_ha_coordinator(tmp_path, "a", FakeClock())
    assert coordinator.ha_enabled
    assert coordinator.role == ROLE_STANDBY
    assert not coordinator.is_leader

    with pytest.raises(Exception) as excinfo:
        coordinator.submit(make_request())
    assert getattr(excinfo.value, "status", None) == 503
    assert getattr(excinfo.value, "reason", None) == REASON_NOT_LEADER

    status, body = coordinator.run_sweep({"dma": [2], "packets": 1})
    assert status == 503 and body["reason"] == REASON_NOT_LEADER
    status, body = coordinator.register_worker("w0", "http://w0")
    assert status == 503 and body["reason"] == REASON_NOT_LEADER
    status, body = coordinator.heartbeat({"worker_id": "w0"})
    assert status == 503 and body["reason"] == REASON_NOT_LEADER
    status, body = coordinator.readyz_snapshot()
    assert status == 503 and body["status"] == ROLE_STANDBY
    assert body["reason"] == REASON_NOT_LEADER


def test_without_control_dir_ha_is_inert(tmp_path):
    coordinator = ClusterCoordinator(
        ClusterConfig(membership=MembershipConfig(), backoff_base_s=0.0),
        transport=ok_transport,
    )
    assert not coordinator.ha_enabled
    assert coordinator.is_leader  # single-coordinator mode leads always
    assert coordinator.ha_snapshot() == {"enabled": False}
    status, body = coordinator.journal_entries_since(0)
    assert status == 404 and body["reason"] == "ha_disabled"


def test_election_claims_the_lease_and_journals_the_term(tmp_path):
    clock = FakeClock()
    coordinator = make_ha_coordinator(tmp_path, "a", clock)
    coordinator.set_url("http://a")
    assert coordinator.try_elect()
    assert coordinator.role == ROLE_LEADER
    assert coordinator.epoch == 1
    assert coordinator.try_elect() is False  # already leading

    status, body = coordinator.register_worker("w0", "http://w0")
    assert status == 200
    assert body["epoch"] == 1 and body["leader"] == "a"

    kinds = [entry.kind for entry in coordinator.journal.entries()]
    assert kinds == [KIND_LEADER_ELECTED, KIND_WORKER_REGISTERED]
    elected = coordinator.journal.entries()[0]
    assert elected.payload["coordinator_id"] == "a"
    assert elected.payload["takeover"] is False
    assert elected.epoch == 1


# -- replication + takeover --------------------------------------------


def make_cache_state(fingerprints, entry_count):
    return {
        "cache": {"entries": [{"n": i} for i in range(entry_count)],
                  "capacity": 64},
        "fingerprints": dict(fingerprints),
    }


def test_takeover_replays_membership_cache_and_orphans(tmp_path):
    clock = FakeClock()
    active = make_ha_coordinator(tmp_path, "a", clock)
    active.set_url("http://a")
    assert active.try_elect()
    active.register_worker("w0", "http://w0")
    active.register_worker("w1", "http://w1")
    active.membership.mark_dead("w1", "lost")
    status, body = active.cache_put({
        "key": "builder/caching", "worker": "w0",
        "state": make_cache_state({"model": "1"}, 3),
    })
    assert status == 200 and body["adopted"]
    # A sweep the dying leader started but never completed.
    active.journal.append(KIND_SWEEP_STARTED, {
        "sweep_id": "feedbeefcafe",
        "params": {"dma": [2], "packets": 1, "period_ns": 30000.0,
                   "strategy": "caching", "warm_start": False,
                   "checkpoint": None},
    }, epoch=active.epoch)

    standby = make_ha_coordinator(tmp_path, "b", clock)
    standby.set_url("http://b")
    assert replicate(active, standby) == len(active.journal)
    assert replicate(active, standby) == 0  # idempotent tail

    clock.advance(10.0)  # the active dies: its lease expires
    assert standby.try_elect()
    assert standby.role == ROLE_LEADER
    assert standby.epoch == 2  # strictly above every journaled epoch

    # Membership, the warm tier, and the orphan list all survived.
    assert standby.membership.states()["w0"] == LIVE
    assert standby.membership.url_of("w0") == "http://w0"
    assert standby.membership.states()["w1"] == DEAD
    status, reply = standby.cache_get("builder/caching")
    assert reply["state"] is not None
    assert len(reply["state"]["cache"]["entries"]) == 3

    snapshot = standby.ha_snapshot()
    assert snapshot["role"] == ROLE_LEADER
    assert snapshot["leader"] == "b"
    assert snapshot["failovers"] == 1
    assert snapshot["orphaned_sweeps"] == ["feedbeefcafe"]
    assert snapshot["last_replay_s"] >= 0.0

    elected = standby.journal.entries()[-1]
    assert elected.kind == KIND_LEADER_ELECTED
    assert elected.payload["takeover"] is True
    assert elected.epoch == 2


def test_recovery_skips_sweeps_a_client_already_resubmitted(tmp_path):
    clock = FakeClock()
    active = make_ha_coordinator(tmp_path, "a", clock)
    assert active.try_elect()
    active.journal.append(KIND_SWEEP_STARTED, {
        "sweep_id": "abc123abc123", "params": {"dma": [2]},
    }, epoch=1)
    standby = make_ha_coordinator(tmp_path, "b", clock)
    replicate(active, standby)
    clock.advance(10.0)
    assert standby.try_elect()
    assert standby.ha_snapshot()["orphaned_sweeps"] == ["abc123abc123"]
    # The failover client resubmitted (and finished) it first.
    standby._completed_sweeps.add("abc123abc123")
    assert standby.recover_orphaned_sweeps(grace_s=0.0) == []


# -- epoch fencing -----------------------------------------------------


def test_heartbeat_with_a_newer_epoch_fences_the_leader(tmp_path):
    clock = FakeClock()
    coordinator = make_ha_coordinator(tmp_path, "a", clock)
    assert coordinator.try_elect()
    coordinator.register_worker("w0", "http://w0")
    status, body = coordinator.heartbeat({"worker_id": "w0", "epoch": 9})
    assert status == STATUS_STALE_EPOCH
    assert body["reason"] == REASON_STALE_EPOCH
    assert coordinator.role == ROLE_FENCED
    assert coordinator.ha_snapshot()["stale_epoch_rejections"] == 1
    # Fenced means out of the data plane entirely.
    status, body = coordinator.run_sweep({"dma": [2], "packets": 1})
    assert status == 503 and body["reason"] == REASON_NOT_LEADER


def test_worker_409_fences_the_estimate_path(tmp_path):
    def fencing_transport(url, path, body, timeout_s):
        return STATUS_STALE_EPOCH, {
            "status": "error", "reason": REASON_STALE_EPOCH, "epoch": 5,
        }

    clock = FakeClock()
    coordinator = make_ha_coordinator(tmp_path, "a", clock,
                                      transport=fencing_transport)
    assert coordinator.try_elect()
    coordinator.register_worker("w0", "http://w0")
    pending, coalesced = coordinator.submit(make_request())
    assert not coalesced
    assert pending.status == 503
    assert pending.body["reason"] == REASON_NOT_LEADER
    assert coordinator.role == ROLE_FENCED


def test_plain_epochs_do_not_fence_the_leader(tmp_path):
    clock = FakeClock()
    coordinator = make_ha_coordinator(tmp_path, "a", clock)
    assert coordinator.try_elect()
    coordinator.register_worker("w0", "http://w0")
    status, body = coordinator.heartbeat({"worker_id": "w0", "epoch": 1})
    assert status == 200
    assert body["epoch"] == 1 and body["leader"] == "a"
    assert coordinator.role == ROLE_LEADER


# -- resignation -------------------------------------------------------


def test_drain_resigns_releases_the_lease_for_the_successor(tmp_path):
    clock = FakeClock()
    active = make_ha_coordinator(tmp_path, "a", clock)
    assert active.try_elect()
    standby = make_ha_coordinator(tmp_path, "b", clock)
    replicate(active, standby)

    active.drain_controller.request_drain("rollout")
    resigned = active.journal.entries()[-1]
    assert resigned.kind == KIND_LEADER_RESIGNED
    assert resigned.payload["reason"] == "rollout"
    lease = active.lease.read()
    assert lease is not None and lease.holder == ""

    # No TTL wait: the successor elects immediately after the release.
    assert standby.try_elect()
    assert standby.epoch == 2


# -- observability -----------------------------------------------------


def test_ha_sections_and_metrics_expose_the_takeover(tmp_path):
    clock = FakeClock()
    active = make_ha_coordinator(tmp_path, "a", clock)
    active.set_url("http://a")
    assert active.try_elect()
    active.register_worker("w0", "http://w0")
    standby = make_ha_coordinator(tmp_path, "b", clock)
    standby.set_url("http://b")
    replicate(active, standby)
    clock.advance(10.0)
    assert standby.try_elect()

    stats = standby.stats_snapshot()
    ha = stats["ha"]
    assert ha["enabled"] and ha["epoch"] == 2 and ha["failovers"] == 1
    status, readyz = standby.readyz_snapshot()
    assert readyz["ha"]["role"] == ROLE_LEADER

    exposition = standby.metrics_exposition()
    assert validate_exposition(exposition) == [], exposition
    assert "repro_cluster_epoch 2" in exposition
    assert "repro_cluster_failovers_total 1" in exposition
    assert "repro_cluster_journal_entries" in exposition
    assert "repro_cluster_lease_remaining_seconds" in exposition
    assert "repro_cluster_takeover_replay_seconds" in exposition


def test_stale_epoch_counter_reaches_the_exposition(tmp_path):
    clock = FakeClock()
    coordinator = make_ha_coordinator(tmp_path, "a", clock)
    assert coordinator.try_elect()
    coordinator.register_worker("w0", "http://w0")
    coordinator.heartbeat({"worker_id": "w0", "epoch": 9})
    exposition = coordinator.metrics_exposition()
    assert validate_exposition(exposition) == [], exposition
    assert "repro_cluster_stale_epoch_rejections_total 1" in exposition

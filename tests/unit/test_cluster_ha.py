"""Unit tests of leases and failover clients (repro.cluster.ha).

All time flows through an injected fake wall clock, so lease expiry,
renewal, and the claim tiebreak are exercised deterministically.
"""

import pytest

from repro.cluster.ha import Lease, LeaseFile, failover_request
from repro.cluster.protocol import TransportError


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def lease_file(tmp_path, holder, clock, **kwargs):
    kwargs.setdefault("ttl_s", 3.0)
    return LeaseFile(str(tmp_path), holder, clock=clock, **kwargs)


# -- leases ------------------------------------------------------------


def test_acquire_renew_and_block_other_candidates(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock, url="http://a")
    beta = lease_file(tmp_path, "beta", clock)

    lease = alpha.try_acquire()
    assert lease is not None
    assert lease.holder == "alpha" and lease.epoch == 1
    assert lease.url == "http://a"
    assert lease.remaining(clock()) == pytest.approx(3.0)

    # A valid lease blocks everyone else, and renewal keeps it valid.
    clock.advance(2.0)
    assert beta.try_acquire() is None
    renewed = alpha.renew()
    assert renewed is not None and renewed.epoch == 1
    clock.advance(2.0)  # 4s after acquire, 2s after renew: still valid
    assert beta.try_acquire() is None


def test_expired_lease_is_taken_over_with_a_higher_epoch(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock)
    beta = lease_file(tmp_path, "beta", clock)
    assert alpha.try_acquire().epoch == 1
    clock.advance(3.5)  # past the TTL: alpha stopped renewing
    taken = beta.try_acquire()
    assert taken is not None
    assert taken.holder == "beta" and taken.epoch == 2
    # The deposed holder can no longer renew.
    assert alpha.renew() is None


def test_epoch_floor_keeps_takeovers_ahead_of_the_journal(tmp_path):
    clock = FakeClock()
    beta = lease_file(tmp_path, "beta", clock)
    taken = beta.try_acquire(epoch_floor=7)
    assert taken is not None and taken.epoch == 8


def test_release_lets_the_successor_elect_immediately(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock)
    beta = lease_file(tmp_path, "beta", clock)
    assert alpha.try_acquire() is not None
    alpha.release()
    # No TTL wait: the released lease is immediately free.
    taken = beta.try_acquire()
    assert taken is not None
    assert taken.holder == "beta" and taken.epoch == 2


def test_claim_tiebreak_smallest_id_wins_deterministically(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock)
    beta = lease_file(tmp_path, "beta", clock)
    # Both race for the free lease: alpha has already published its
    # claim when beta decides.  beta concedes to the smaller id.
    alpha._write_claim(clock())
    assert beta.try_acquire() is None
    won = alpha.try_acquire()
    assert won is not None and won.holder == "alpha"


def test_claims_expire_after_one_ttl(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock)
    beta = lease_file(tmp_path, "beta", clock)
    alpha._write_claim(clock())
    clock.advance(3.5)  # the stale claim no longer counts
    won = beta.try_acquire()
    assert won is not None and won.holder == "beta"


def test_unparseable_lease_reads_as_absent(tmp_path):
    clock = FakeClock()
    alpha = lease_file(tmp_path, "alpha", clock)
    with open(alpha.path, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    assert alpha.read() is None
    assert alpha.try_acquire() is not None  # safe recovery: elect


def test_lease_payload_round_trip():
    lease = Lease(holder="a", url="http://a", epoch=3,
                  acquired_at=10.0, expires_at=13.0)
    assert Lease.from_payload(lease.to_payload()) == lease
    assert Lease.from_payload({"holder": "a"}) is None


# -- the failover client -----------------------------------------------


def make_transport(answers, calls):
    """``answers[url]`` is a (status, body) pair, an exception, or a
    list consumed one element per call."""

    def transport(method, url, path, body=None, timeout_s=30.0):
        calls.append(url)
        answer = answers[url]
        if isinstance(answer, list):
            answer = answer.pop(0)
        if isinstance(answer, Exception):
            raise answer
        return answer

    return transport


def test_failover_walks_past_unreachable_and_standby_peers():
    calls = []
    transport = make_transport({
        "http://a": TransportError("down"),
        "http://b": (503, {"status": "rejected", "reason": "not_leader"}),
        "http://c": (200, {"status": "ok"}),
    }, calls)
    status, body, peer = failover_request(
        ["http://a", "http://b", "http://c"], "POST", "/sweep",
        body={}, transport=transport,
    )
    assert (status, peer) == (200, "http://c")
    assert calls == ["http://a", "http://b", "http://c"]


def test_failover_follows_the_leader_hint_first():
    calls = []
    transport = make_transport({
        "http://standby": (503, {"reason": "not_leader",
                                 "leader_url": "http://leader"}),
        "http://leader": (200, {"status": "ok"}),
        "http://other": (200, {"status": "ok"}),
    }, calls)
    status, body, peer = failover_request(
        ["http://standby", "http://other"], "GET", "/stats",
        transport=transport,
    )
    assert (status, peer) == (200, "http://leader")
    assert calls == ["http://standby", "http://leader"]


def test_failover_returns_non_leadership_errors_verbatim():
    calls = []
    transport = make_transport({
        "http://a": (400, {"status": "error", "reason": "bad request"}),
    }, calls)
    status, body, peer = failover_request(
        ["http://a"], "POST", "/estimate", body={}, transport=transport,
    )
    assert status == 400  # authoritative answer, not a failover signal


def test_failover_raises_when_no_peer_leads():
    transport = make_transport({
        "http://a": TransportError("down"),
        "http://b": (503, {"reason": "not_leader"}),
    }, [])
    with pytest.raises(TransportError):
        failover_request(["http://a", "http://b"], "GET", "/readyz",
                         transport=transport)
    with pytest.raises(TransportError):
        failover_request([], "GET", "/readyz", transport=transport)

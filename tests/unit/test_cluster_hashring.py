"""Unit tests of the consistent-hash ring (repro.cluster.hashring)."""

from collections import Counter

import pytest

from repro.cluster.hashring import HashRing


def test_empty_ring_routes_nothing():
    ring = HashRing()
    assert ring.node_for("anything") is None
    assert ring.preference("anything") == []
    assert len(ring) == 0


def test_single_node_takes_everything():
    ring = HashRing()
    ring.add("only")
    for key in ("a", "b", "dma=2,x > y > z", ""):
        assert ring.node_for(key) == "only"
        assert ring.preference(key) == ["only"]


def test_routing_is_deterministic():
    ring_a = HashRing()
    ring_b = HashRing()
    for node in ("w0", "w1", "w2"):
        ring_a.add(node)
    for node in ("w2", "w0", "w1"):  # insertion order must not matter
        ring_b.add(node)
    keys = ["key-%d" % index for index in range(200)]
    assert [ring_a.node_for(key) for key in keys] == \
        [ring_b.node_for(key) for key in keys]


def test_preference_lists_distinct_nodes_primary_first():
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    for key in ("alpha", "beta", "gamma"):
        preference = ring.preference(key)
        assert preference[0] == ring.node_for(key)
        assert sorted(preference) == ["w0", "w1", "w2"]
        assert len(set(preference)) == 3


def test_preference_count_truncates():
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    assert len(ring.preference("key", count=2)) == 2


def test_removal_only_moves_keys_of_the_removed_node():
    """The consistent-hashing contract: removing one node reassigns
    only the keys that lived on it."""
    ring = HashRing()
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    keys = ["job-%d" % index for index in range(300)]
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("w1")
    after = {key: ring.node_for(key) for key in keys}
    for key in keys:
        if before[key] != "w1":
            assert after[key] == before[key], key
        else:
            assert after[key] in ("w0", "w2")


def test_distribution_is_roughly_balanced():
    ring = HashRing(replicas=64)
    for node in ("w0", "w1", "w2"):
        ring.add(node)
    counts = Counter(ring.node_for("key-%d" % index)
                     for index in range(3000))
    for node in ("w0", "w1", "w2"):
        # 64 virtual replicas per node keep the spread well inside
        # [10%, 60%] for three nodes (ideal: 33%).
        assert 300 <= counts[node] <= 1800, counts


def test_add_and_remove_are_idempotent():
    ring = HashRing()
    ring.add("w0")
    ring.add("w0")
    assert len(ring) == 1
    ring.remove("w0")
    ring.remove("w0")
    assert len(ring) == 0
    assert ring.node_for("key") is None


def test_contains_and_nodes_view():
    ring = HashRing()
    ring.add("w1")
    ring.add("w0")
    assert "w0" in ring and "w1" in ring and "w9" not in ring
    assert ring.nodes == ["w0", "w1"]


def test_rejects_blank_node():
    ring = HashRing()
    with pytest.raises(ValueError):
        ring.add("")

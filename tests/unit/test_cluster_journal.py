"""Unit tests of the control-plane journal (repro.cluster.journal).

The crash contract is the point: an acknowledged entry survives, a
torn tail from a crash mid-append is discarded (it was never
acknowledged), and corruption anywhere *else* refuses to run.
"""

import json
import os

import pytest

from repro.cluster.journal import (
    KIND_CACHE_ADOPTED,
    KIND_LEADER_ELECTED,
    KIND_LEADER_RESIGNED,
    KIND_SWEEP_COMPLETED,
    KIND_SWEEP_STARTED,
    KIND_WORKER_REGISTERED,
    KIND_WORKER_STATE,
    ControlPlaneJournal,
    JournalEntry,
    JournalError,
    entries_to_wire,
)


def journal_at(tmp_path, name="journal", **kwargs):
    return ControlPlaneJournal(str(tmp_path / name), **kwargs)


def segment_files(journal):
    return sorted(
        name for name in os.listdir(journal.directory)
        if name.startswith("segment-")
    )


def test_append_and_reopen_round_trips(tmp_path):
    journal = journal_at(tmp_path)
    first = journal.append(KIND_LEADER_ELECTED,
                           {"coordinator_id": "a"}, epoch=1)
    second = journal.append(KIND_WORKER_REGISTERED,
                            {"worker_id": "w0", "url": "http://w0"},
                            epoch=1)
    assert (first.seq, second.seq) == (1, 2)
    assert journal.tip_seq() == 2
    assert journal.tip_epoch() == 1

    reopened = journal_at(tmp_path)
    assert len(reopened) == 2
    assert [e.kind for e in reopened.entries()] == [
        KIND_LEADER_ELECTED, KIND_WORKER_REGISTERED,
    ]
    assert reopened.entries()[1].payload["url"] == "http://w0"
    assert reopened.discarded_tail_entries == 0


def test_entries_since_is_the_tail_query(tmp_path):
    journal = journal_at(tmp_path)
    for index in range(4):
        journal.append(KIND_WORKER_STATE, {"worker_id": "w%d" % index},
                       epoch=1)
    assert [e.seq for e in journal.entries_since(2)] == [3, 4]
    assert journal.entries_since(4) == []


def test_wire_round_trip_and_checksum_rejects_tampering(tmp_path):
    entry = JournalEntry(seq=3, epoch=2, kind=KIND_SWEEP_STARTED,
                         payload={"sweep_id": "abc"})
    wire = entry.to_wire()
    assert JournalEntry.from_wire(wire) == entry
    tampered = dict(wire, payload={"sweep_id": "evil"})
    with pytest.raises(JournalError):
        JournalEntry.from_wire(tampered)


def test_crash_mid_write_discards_only_the_torn_tail(tmp_path):
    """Satellite: a torn final line (crash between write and fsync) is
    dropped on replay, and the segment is rewritten so the torn bytes
    never shadow a future append."""
    journal = journal_at(tmp_path)
    journal.append(KIND_LEADER_ELECTED, {"coordinator_id": "a"}, epoch=1)
    journal.append(KIND_SWEEP_STARTED, {"sweep_id": "s1"}, epoch=1)
    segment = os.path.join(journal.directory, segment_files(journal)[-1])
    with open(segment, "a", encoding="utf-8") as handle:
        handle.write('{"seq": 3, "epoch": 1, "kind": "sweep-comp')  # torn

    reopened = journal_at(tmp_path)
    assert len(reopened) == 2
    assert reopened.tip_seq() == 2
    assert reopened.discarded_tail_entries == 1
    # The segment was rewritten: no torn bytes remain on disk.
    with open(segment, encoding="utf-8") as handle:
        lines = handle.readlines()
    assert len(lines) == 2
    assert all(json.loads(line)["crc"] for line in lines)
    # The freed sequence number is reusable.
    entry = reopened.append(KIND_SWEEP_COMPLETED, {"sweep_id": "s1"},
                            epoch=1)
    assert entry.seq == 3
    assert len(journal_at(tmp_path)) == 3


def test_corrupt_entry_mid_journal_refuses_to_run(tmp_path):
    journal = journal_at(tmp_path, segment_entries=2)
    for index in range(5):  # three segments: 2 + 2 + 1
        journal.append(KIND_WORKER_STATE, {"worker_id": "w%d" % index},
                       epoch=1)
    first_segment = os.path.join(journal.directory,
                                 segment_files(journal)[0])
    with open(first_segment, encoding="utf-8") as handle:
        lines = handle.readlines()
    document = json.loads(lines[0])
    document["payload"] = {"worker_id": "forged"}  # crc now wrong
    lines[0] = json.dumps(document) + "\n"
    with open(first_segment, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.raises(JournalError):
        journal_at(tmp_path)


def test_segments_roll_over_and_reload_in_order(tmp_path):
    journal = journal_at(tmp_path, segment_entries=2)
    for index in range(5):
        journal.append(KIND_WORKER_STATE, {"worker_id": "w%d" % index},
                       epoch=index + 1)
    assert segment_files(journal) == [
        "segment-00000001.jsonl",
        "segment-00000002.jsonl",
        "segment-00000003.jsonl",
    ]
    reopened = journal_at(tmp_path, segment_entries=2)
    assert [e.seq for e in reopened.entries()] == [1, 2, 3, 4, 5]
    assert reopened.tip_epoch() == 5


def test_append_replicated_preserves_numbering_idempotently(tmp_path):
    leader = journal_at(tmp_path, "leader")
    for index in range(3):
        leader.append(KIND_WORKER_STATE, {"worker_id": "w%d" % index},
                      epoch=2)
    replica = journal_at(tmp_path, "replica")
    wire = entries_to_wire(leader.entries())
    assert [replica.append_replicated(doc) for doc in wire] == [
        True, True, True,
    ]
    assert [e.seq for e in replica.entries()] == [1, 2, 3]
    assert replica.tip_epoch() == 2
    # Tailing the same window again appends nothing (idempotent).
    assert [replica.append_replicated(doc) for doc in wire] == [
        False, False, False,
    ]
    assert len(replica) == 3


def test_append_replicated_refuses_gaps(tmp_path):
    leader = journal_at(tmp_path, "leader")
    for index in range(3):
        leader.append(KIND_WORKER_STATE, {"worker_id": "w%d" % index},
                      epoch=1)
    replica = journal_at(tmp_path, "replica")
    wire = entries_to_wire(leader.entries())
    replica.append_replicated(wire[0])
    with pytest.raises(JournalError):
        replica.append_replicated(wire[2])  # seq 3 after tip 1


def test_state_fold_tracks_membership_cache_and_sweeps(tmp_path):
    journal = journal_at(tmp_path)
    journal.append(KIND_LEADER_ELECTED, {"coordinator_id": "a"}, epoch=1)
    journal.append(KIND_WORKER_REGISTERED,
                   {"worker_id": "w0", "url": "http://w0"}, epoch=1)
    journal.append(KIND_WORKER_REGISTERED,
                   {"worker_id": "w1", "url": "http://w1"}, epoch=1)
    journal.append(KIND_WORKER_STATE,
                   {"worker_id": "w1", "state": "dead"}, epoch=1)
    cache_state = {"cache": {"entries": [1]}, "fingerprints": {"f": "1"}}
    journal.append(KIND_CACHE_ADOPTED,
                   {"key": "k", "state": cache_state, "entries": 1,
                    "worker": "w0", "updates": 1}, epoch=1)
    journal.append(KIND_SWEEP_STARTED,
                   {"sweep_id": "s1", "params": {"dma": [2]}}, epoch=1)
    journal.append(KIND_SWEEP_STARTED,
                   {"sweep_id": "s2", "params": {"dma": [8]}}, epoch=1)
    journal.append(KIND_SWEEP_COMPLETED, {"sweep_id": "s2"}, epoch=1)

    state = journal.replay()
    assert state.leader_id == "a"
    assert state.epoch == 1
    assert state.workers["w0"] == {"url": "http://w0", "state": "live"}
    assert state.workers["w1"]["state"] == "dead"
    assert state.cache_tier["k"]["entries"] == 1
    assert set(state.sweeps) == {"s1", "s2"}
    assert set(state.orphaned_sweeps()) == {"s1"}
    assert state.orphaned_sweeps()["s1"]["params"] == {"dma": [2]}


def test_state_fold_leadership_history(tmp_path):
    journal = journal_at(tmp_path)
    journal.append(KIND_LEADER_ELECTED, {"coordinator_id": "a"}, epoch=1)
    journal.append(KIND_LEADER_RESIGNED, {"coordinator_id": "a"}, epoch=1)
    journal.append(KIND_LEADER_ELECTED, {"coordinator_id": "b"}, epoch=2)
    state = journal.replay()
    assert state.leader_id == "b"
    assert state.epoch == 2
    assert state.previous_leaders("b") == ["a"]
    assert state.previous_leaders("c") == ["a", "b"]
    assert state.previous_leaders("a") == ["b"]


def test_unknown_entry_kinds_are_skipped_not_fatal(tmp_path):
    journal = journal_at(tmp_path)
    journal.append("future-kind", {"anything": True}, epoch=7)
    state = journal.replay()
    assert state.applied == 1
    assert state.epoch == 7
    assert state.workers == {} and state.sweeps == {}

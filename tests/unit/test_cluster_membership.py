"""Unit tests of the membership state machine (repro.cluster.membership).

Everything runs on a fake clock — no sleeping, no timing flakes."""

import pytest

from repro.cluster.membership import (
    DEAD,
    DECOMMISSIONED,
    LIMPLOCKED,
    LIVE,
    SUSPECT,
    MembershipConfig,
    MembershipTable,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_table(clock, transitions=None, **config):
    defaults = dict(suspect_after_s=3.0, dead_after_s=10.0,
                    limp_factor=4.0, limp_min_samples=3)
    defaults.update(config)
    return MembershipTable(
        MembershipConfig(**defaults), clock=clock,
        on_transition=(
            (lambda *args: transitions.append(args))
            if transitions is not None else None
        ),
    )


def test_register_and_routable():
    clock = FakeClock()
    transitions = []
    table = make_table(clock, transitions)
    table.register("w0", "http://a:1")
    table.register("w1", "http://b:2")
    assert table.routable() == ["w0", "w1"]
    assert ("w0", "", LIVE, "registered") in transitions


def test_heartbeat_known_and_unknown():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a:1")
    assert table.heartbeat("w0", queue_depth=2, completed=5) is True
    assert table.get("w0").queue_depth == 2
    assert table.heartbeat("ghost") is False


def test_stale_heartbeat_walks_suspect_then_dead():
    clock = FakeClock()
    transitions = []
    table = make_table(clock, transitions)
    table.register("w0", "http://a:1")
    clock.advance(4.0)  # > suspect_after
    table.refresh()
    assert table.states()["w0"] == SUSPECT
    assert table.routable() == []
    clock.advance(7.0)  # total 11 > dead_after
    table.refresh()
    assert table.states()["w0"] == DEAD
    assert [t[2] for t in transitions if t[0] == "w0"] == \
        [LIVE, SUSPECT, DEAD]


def test_heartbeat_revives_suspect_but_not_dead():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a:1")
    clock.advance(4.0)
    table.refresh()
    assert table.states()["w0"] == SUSPECT
    assert table.heartbeat("w0") is True  # suspect ⇒ revived
    assert table.states()["w0"] == LIVE
    clock.advance(11.0)
    table.refresh()
    assert table.states()["w0"] == DEAD
    # Dead workers must re-register; their heartbeat is refused.
    assert table.heartbeat("w0") is False
    table.register("w0", "http://a:1")
    assert table.states()["w0"] == LIVE


def test_limplock_quarantines_the_slow_peer():
    clock = FakeClock()
    transitions = []
    table = make_table(clock, transitions)
    for worker in ("w0", "w1", "w2"):
        table.register(worker, "http://%s" % worker)
    for _ in range(3):
        table.observe_run("w0", 0.1)
        table.observe_run("w1", 0.1)
        table.observe_run("w2", 2.0)  # 20x the peer median
    table.refresh()
    assert table.states() == {"w0": LIVE, "w1": LIVE, "w2": LIMPLOCKED}
    assert table.routable() == ["w0", "w1"]
    reason = [t[3] for t in transitions if t[2] == LIMPLOCKED][0]
    assert "limp factor" in reason
    # Quarantine is sticky: heartbeats are refused until re-registration.
    assert table.heartbeat("w2") is False


def test_limplock_needs_minimum_samples_and_peers():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a")
    table.register("w1", "http://b")
    table.observe_run("w0", 0.1)
    table.observe_run("w1", 5.0)  # only 1 sample (< limp_min_samples)
    table.refresh()
    assert table.states()["w1"] == LIVE
    # Enough samples on w1 but none on w0: only one judged worker,
    # so there is no peer median to compare against.
    table.observe_run("w1", 5.0)
    table.observe_run("w1", 5.0)
    table.refresh()
    assert table.states()["w1"] == LIVE


def test_limp_min_gap_protects_fast_jobs():
    """Microsecond-scale jitter can never quarantine anyone."""
    clock = FakeClock()
    table = make_table(clock, limp_min_gap_s=0.05)
    table.register("w0", "http://a")
    table.register("w1", "http://b")
    for _ in range(3):
        table.observe_run("w0", 0.000_01)
        table.observe_run("w1", 0.000_09)  # 9x, but only 80µs apart
    table.refresh()
    assert table.states() == {"w0": LIVE, "w1": LIVE}


def test_mark_dead_and_redispatch_accounting():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a")
    assert table.mark_dead("w0", "socket refused") is True
    assert table.mark_dead("w0", "again") is False
    table.count_redispatch("w0", 3)
    assert table.get("w0").redispatched_jobs == 3


def test_decommission_is_terminal_until_reregistration():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a")
    assert table.decommission("w0", "scale-down") is True
    assert table.states()["w0"] == DECOMMISSIONED
    assert table.heartbeat("w0") is False
    assert table.routable() == []
    table.register("w0", "http://a")
    assert table.states()["w0"] == LIVE


def test_reregistration_resets_statistics():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a")
    for _ in range(5):
        table.observe_run("w0", 9.0)
    table.register("w0", "http://a")  # resurrect: clean latency record
    info = table.get("w0")
    assert info.run_samples == 0
    assert info.observed_run_s == 0.0


def test_snapshot_shape():
    clock = FakeClock()
    table = make_table(clock)
    table.register("w0", "http://a:1")
    table.heartbeat("w0", queue_depth=1, in_flight=1, completed=4,
                    reported_run_s=0.25)
    clock.advance(1.5)
    document = table.snapshot()
    assert document["w0"]["state"] == LIVE
    assert document["w0"]["heartbeat_age_s"] == pytest.approx(1.5)
    assert document["w0"]["queue_depth"] == 1
    assert document["w0"]["completed"] == 4
    assert table.heartbeat_ages()["w0"] == pytest.approx(1.5)


def test_config_validation():
    with pytest.raises(ValueError):
        MembershipConfig(suspect_after_s=5.0, dead_after_s=4.0)
    with pytest.raises(ValueError):
        MembershipConfig(limp_factor=1.0)
    with pytest.raises(ValueError):
        MembershipConfig(limp_min_samples=0)

"""Unit tests of the cluster wire layer (repro.cluster.protocol)."""

import json
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.cluster.protocol import (
    ProtocolError,
    TransportError,
    get_json,
    post_json,
)
from repro.errors import ReproError


class _Handler(BaseHTTPRequestHandler):
    def log_message(self, fmt, *args):
        pass

    def _send(self, status, payload, content_type="application/json"):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):
        if self.path == "/json":
            self._send(200, b'{"status": "ok", "n": 7}')
        elif self.path == "/notjson":
            self._send(200, b"<html>nope</html>", "text/html")
        elif self.path == "/list":
            self._send(200, b"[1, 2, 3]")
        elif self.path == "/empty":
            self._send(200, b"")
        else:
            self._send(404, b'{"status": "error"}')

    def do_POST(self):
        length = int(self.headers.get("Content-Length") or 0)
        body = json.loads(self.rfile.read(length))
        self._send(200, json.dumps({"echo": body}).encode())


@pytest.fixture(scope="module")
def server_url():
    httpd = HTTPServer(("127.0.0.1", 0), _Handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield "http://127.0.0.1:%d" % httpd.server_address[1]
    httpd.shutdown()
    httpd.server_close()


def test_get_json_roundtrip(server_url):
    status, body = get_json(server_url, "/json")
    assert status == 200
    assert body == {"status": "ok", "n": 7}


def test_post_json_echo(server_url):
    status, body = post_json(server_url, "/anything", {"a": [1, 2]})
    assert status == 200
    assert body == {"echo": {"a": [1, 2]}}


def test_http_error_status_is_returned_not_raised(server_url):
    status, body = get_json(server_url, "/missing")
    assert status == 404
    assert body["status"] == "error"


def test_empty_body_reads_as_empty_object(server_url):
    status, body = get_json(server_url, "/empty")
    assert status == 200 and body == {}


def test_non_json_response_raises_protocol_error(server_url):
    with pytest.raises(ProtocolError):
        get_json(server_url, "/notjson")


def test_non_object_json_raises_protocol_error(server_url):
    with pytest.raises(ProtocolError):
        get_json(server_url, "/list")


def test_connection_refused_raises_transport_error():
    with pytest.raises(TransportError):
        get_json("http://127.0.0.1:9", "/x", timeout_s=2.0)


def test_bad_url_raises_protocol_error():
    with pytest.raises(ProtocolError):
        get_json("ftp://example", "/x")


def test_errors_are_repro_errors():
    assert issubclass(TransportError, ReproError)
    assert issubclass(ProtocolError, ReproError)

"""Unit tests of the worker's high-availability behaviour.

Epoch fencing in ``handle_run``, leader adoption, peer-walking
re-registration, and the capped (overflow-proof) registration backoff.
Coordinator answers are faked by monkeypatching the wire functions.
"""

import pytest

from repro.cluster.protocol import (
    JOB_KIND_SPEC,
    REASON_NOT_LEADER,
    REASON_STALE_EPOCH,
    STATUS_STALE_EPOCH,
    TransportError,
)
from repro.cluster.worker import ClusterWorker, WorkerConfig


def make_worker(**kwargs):
    kwargs.setdefault("coordinator_url", "http://a")
    kwargs.setdefault("worker_id", "w0")
    kwargs.setdefault("warm_tier", False)
    kwargs.setdefault("register_backoff_s", 0.0)
    return ClusterWorker(WorkerConfig(**kwargs))


def spec_body(epoch=0, leader=""):
    body = {
        "kind": JOB_KIND_SPEC,
        "job": {
            "fn": "repro.parallel.runners:run_noop",
            "payload": {},
            "label": "probe",
            "seed": 1,
        },
    }
    if epoch:
        body["epoch"] = epoch
        body["leader"] = leader
    return body


# -- epoch fencing in the run path -------------------------------------


def test_stale_epoch_dispatch_is_fenced_never_run():
    worker = make_worker()
    worker.epoch = 5
    status, reply = worker.handle_run(spec_body(epoch=3, leader="old"))
    assert status == STATUS_STALE_EPOCH
    assert reply["reason"] == REASON_STALE_EPOCH
    assert reply["epoch"] == 5  # tells the deposed leader what beat it
    assert reply["worker"] == "w0"
    assert worker.load_snapshot()["completed"] == 0
    assert worker.load_snapshot()["failed"] == 0  # fencing is not a job


def test_newer_epoch_is_adopted_with_its_leader():
    worker = make_worker()
    worker.epoch = 1
    worker.leader_id = "a"
    status, reply = worker.handle_run(spec_body(epoch=2, leader="b"))
    assert worker.epoch == 2
    assert worker.leader_id == "b"
    # The job itself ran (or failed) normally — fencing only ever
    # applies to *older* epochs.
    assert status in (200, 500)


def test_epoch_zero_means_ha_disabled_no_fencing():
    worker = make_worker()
    worker.epoch = 5
    status, reply = worker.handle_run(spec_body())
    assert status != STATUS_STALE_EPOCH
    assert worker.epoch == 5


# -- registration backoff (satellite: overflow-proof cap) --------------


def test_register_backoff_is_capped_and_overflow_proof():
    worker = make_worker(register_backoff_s=0.1, register_backoff_cap_s=2.0)
    values = [worker.register_backoff_s(attempt)
              for attempt in (1, 2, 3, 10, 32)]
    assert all(0.0 <= value <= 2.0 for value in values)
    # The unbounded re-registration loop can push the attempt counter
    # arbitrarily high; 2.0 ** attempt must never be evaluated raw.
    for huge in (10 ** 3, 10 ** 6, 10 ** 9):
        assert 0.0 <= worker.register_backoff_s(huge) <= 2.0
    assert worker.register_backoff_s(10 ** 9) == \
        worker.register_backoff_s(32)  # clamped to the same exponent


# -- leader adoption + peer walking ------------------------------------


def test_register_walks_peers_and_adopts_the_answering_leader(monkeypatch):
    worker = make_worker(peers=["http://b", "http://c"])
    calls = []

    def fake_post(url, path, body, timeout_s=5.0):
        calls.append(url)
        assert path == "/cluster/register"
        if url == "http://a":
            raise TransportError("down")
        if url == "http://b":
            return 503, {"status": "rejected",
                         "reason": REASON_NOT_LEADER,
                         "leader_url": "http://c"}
        return 200, {"status": "ok", "epoch": 4, "leader": "c",
                     "heartbeat_interval_s": 1.0}

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    assert worker.register()
    assert calls == ["http://a", "http://b", "http://c"]
    assert worker.coordinator_url == "http://c"
    assert worker.epoch == 4
    assert worker.leader_id == "c"


def test_initial_registration_is_bounded(monkeypatch):
    worker = make_worker(register_retries=3)
    calls = []

    def fake_post(url, path, body, timeout_s=5.0):
        calls.append(url)
        raise TransportError("down")

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    assert worker.register() is False
    assert len(calls) == 3  # one candidate URL, three bounded passes


def test_reregistration_is_unbounded_until_drain(monkeypatch):
    worker = make_worker()
    attempts = {"n": 0}

    def fake_post(url, path, body, timeout_s=5.0):
        attempts["n"] += 1
        if attempts["n"] < 40:  # far beyond the initial retry budget
            raise TransportError("still down")
        return 200, {"status": "ok", "epoch": 2, "leader": "a"}

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    assert worker.reregister()
    assert attempts["n"] == 40
    assert worker.epoch == 2


def test_reregistration_stops_when_the_worker_drains(monkeypatch):
    worker = make_worker()

    def fake_post(url, path, body, timeout_s=5.0):
        worker.drain.request_drain("shutdown mid-retry")
        raise TransportError("down")

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    assert worker.reregister() is False


# -- heartbeats across a failover --------------------------------------


def test_heartbeat_not_leader_answer_triggers_reregistration(monkeypatch):
    worker = make_worker(peers=["http://b"])

    def fake_post(url, path, body, timeout_s=5.0):
        if path == "/cluster/heartbeat":
            assert body["epoch"] == worker.epoch
            return 503, {"status": "rejected",
                         "reason": REASON_NOT_LEADER,
                         "leader_url": "http://b"}
        assert path == "/cluster/register"
        if url == "http://b":
            return 200, {"status": "ok", "epoch": 3, "leader": "b"}
        return 503, {"status": "rejected", "reason": REASON_NOT_LEADER,
                     "leader_url": "http://b"}

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    worker.heartbeat_once()
    assert worker.coordinator_url == "http://b"
    assert worker.epoch == 3 and worker.leader_id == "b"


def test_heartbeat_misses_accumulate_to_the_limit_then_walk(monkeypatch):
    worker = make_worker(peers=["http://b"], heartbeat_miss_limit=3)
    registrations = []

    def fake_post(url, path, body, timeout_s=5.0):
        if path == "/cluster/register":
            registrations.append(url)
            return 200, {"status": "ok", "epoch": 2, "leader": "b"}
        raise TransportError("coordinator gone")

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    worker.heartbeat_once()
    worker.heartbeat_once()
    assert registrations == []  # tolerated: it may just be restarting
    worker.heartbeat_once()  # third consecutive miss: walk the peers
    assert registrations  # re-registered through the peer list
    assert worker.epoch == 2


def test_heartbeat_adopts_epoch_and_reregisters_when_unknown(monkeypatch):
    worker = make_worker()
    registrations = []

    def fake_post(url, path, body, timeout_s=5.0):
        if path == "/cluster/register":
            registrations.append(url)
            return 200, {"status": "ok", "epoch": 6, "leader": "a"}
        return 200, {"status": "unknown", "epoch": 6, "leader": "a",
                     "leader_url": "http://a"}

    monkeypatch.setattr("repro.cluster.worker.post_json", fake_post)
    worker.heartbeat_once()
    assert worker.epoch == 6
    assert registrations == ["http://a"]

"""Unit tests: the s-graph to instruction compiler."""

import pytest

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.expr import add, const, eq, event_value, land, lnot, lt, mod, var
from repro.cfsm.sgraph import assign, emit, if_, loop, shared_read, shared_write
from repro.sw.codegen import (
    CodegenError,
    MemoryMap,
    SHARED_MEMORY_BASE,
    compile_cfsm,
    transition_label,
)
from repro.sw.iss import Iss


def make_cfsm(body, variables=None, name="unit"):
    builder = CfsmBuilder(name)
    builder.input("GO", has_value=True)
    builder.output("OUT", has_value=True)
    for var_name, initial in (variables or {"a": 0, "b": 0}).items():
        builder.var(var_name, initial)
    builder.transition("t", trigger=["GO"], body=body)
    return builder.build()


def run(cfsm, mailbox_value=0, extra_memory=None):
    compiled = compile_cfsm(cfsm)
    memory = {
        compiled.memory_map.variables[name]: value
        for name, value in cfsm.initial_state().items()
    }
    memory[compiled.memory_map.event_mailboxes["GO"]] = mailbox_value
    memory.update(extra_memory or {})
    iss = Iss(compiled.program)
    result = iss.run(transition_label(cfsm.name, "t"), memory)
    return compiled, memory, result


class TestMemoryMap:
    def test_layout_is_deterministic(self):
        cfsm = make_cfsm([assign("a", const(1))], {"a": 0, "b": 0})
        map_one = MemoryMap.for_cfsm(cfsm)
        map_two = MemoryMap.for_cfsm(cfsm)
        assert map_one.variables == map_two.variables
        assert map_one.size_words == len(map_one.variables) + 1 + 2

    def test_base_offsets(self):
        cfsm = make_cfsm([assign("a", const(1))])
        layout = MemoryMap.for_cfsm(cfsm, base=0x100)
        assert all(addr >= 0x100 for addr in layout.variables.values())

    def test_unknown_lookups_raise(self):
        cfsm = make_cfsm([assign("a", const(1))])
        layout = MemoryMap.for_cfsm(cfsm)
        with pytest.raises(KeyError):
            layout.variable_address("nope")
        with pytest.raises(KeyError):
            layout.mailbox_address("nope")


class TestCompilation:
    def test_assignment(self):
        cfsm = make_cfsm([assign("a", add(var("b"), const(3)))], {"a": 0, "b": 4})
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.variables["a"]] == 7

    def test_emit_writes_value_and_doorbell(self):
        cfsm = make_cfsm([emit("OUT", const(5))])
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.emit_values["OUT"]] == 5
        assert memory[compiled.memory_map.emit_doorbells["OUT"]] == 1

    def test_if_else(self):
        body = [if_(eq(event_value("GO"), const(1)),
                    [assign("a", const(10))],
                    [assign("a", const(20))])]
        cfsm = make_cfsm(body)
        compiled, memory, _ = run(cfsm, mailbox_value=1)
        assert memory[compiled.memory_map.variables["a"]] == 10
        compiled, memory, _ = run(cfsm, mailbox_value=2)
        assert memory[compiled.memory_map.variables["a"]] == 20

    def test_comparison_materialization(self):
        cfsm = make_cfsm([assign("a", lt(var("b"), const(5)))], {"a": 9, "b": 3})
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.variables["a"]] == 1

    def test_logical_ops(self):
        cfsm = make_cfsm(
            [assign("a", land(var("b"), lnot(var("a"))))], {"a": 0, "b": 7}
        )
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.variables["a"]] == 1

    def test_mod_matches_semantics(self):
        cfsm = make_cfsm([assign("a", mod(const(-7), const(3)))])
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.variables["a"]] == -7 - int(-7 / 3) * 3

    def test_nested_loops(self):
        body = [loop(const(3), [loop(const(4), [
            assign("a", add(var("a"), const(1)))])])]
        cfsm = make_cfsm(body)
        compiled, memory, _ = run(cfsm)
        assert memory[compiled.memory_map.variables["a"]] == 12

    def test_loop_nesting_limit(self):
        body = [loop(const(1), [loop(const(1), [loop(const(1), [loop(const(1), [
            loop(const(1), [assign("a", const(1))])])])])])]
        cfsm = make_cfsm(body)
        with pytest.raises(CodegenError):
            compile_cfsm(cfsm)

    def test_shared_access_addressing(self):
        body = [
            shared_write(const(3), const(9)),
            shared_read("a", const(3)),
        ]
        cfsm = make_cfsm(body)
        compiled, memory, _ = run(cfsm)
        assert memory[SHARED_MEMORY_BASE + 3] == 9
        assert memory[compiled.memory_map.variables["a"]] == 9

    def test_each_transition_gets_entry_label(self):
        builder = CfsmBuilder("two")
        builder.input("A").input("B")
        builder.var("x", 0)
        builder.transition("ta", trigger=["A"], body=[assign("x", const(1))])
        builder.transition("tb", trigger=["B"], body=[assign("x", const(2))])
        compiled = compile_cfsm(builder.build())
        assert compiled.program.entry(transition_label("two", "ta")) >= 0
        assert compiled.program.entry(transition_label("two", "tb")) >= 0

    def test_generated_code_is_reasonably_sized(self):
        cfsm = make_cfsm([assign("a", add(var("b"), const(1)))])
        compiled = compile_cfsm(cfsm)
        # Naive codegen: load, seti, add, store, ret — about 5-8 words.
        assert 4 <= len(compiled.program.instructions) <= 12

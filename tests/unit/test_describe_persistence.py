"""Unit tests: network description and energy-cache persistence."""

import pytest

from repro.cfsm.describe import (
    describe_network,
    implementation_statistics,
    transition_summary,
)
from repro.core.caching import EnergyCache, EnergyCacheConfig
from repro.systems import producer_consumer, tcpip


class TestDescribe:
    @pytest.fixture(scope="class")
    def network(self):
        return producer_consumer.build_network(num_packets=2)

    def test_lists_every_process_and_mapping(self, network):
        text = describe_network(network)
        assert "producer" in text and "SW" in text
        assert "consumer" in text and "HW" in text
        assert "timer" in text

    def test_shows_wiring_and_reset(self, network):
        text = describe_network(network)
        assert "env inputs" in text
        assert "watching" in text and "RESET" in text

    def test_transition_summary_shape(self, network):
        lines = transition_summary(network.cfsms["producer"])
        assert len(lines) == 1
        assert "compute_chksum" in lines[0]
        assert "[guarded]" in lines[0]
        assert "END_COMP" in lines[0]

    def test_implementation_statistics(self, network):
        stats = implementation_statistics(network)
        assert stats["producer"]["code_bytes"] > 0
        assert stats["consumer"]["gates"] > 100
        assert stats["consumer"]["dffs"] > 10
        text = describe_network(network, stats)
        assert "gates=" in text
        assert "code_bytes=" in text

    def test_bus_events_listed(self):
        network = tcpip.build_network(8)
        text = describe_network(network)
        assert "bus events" in text
        assert "CHK_GO" in text


class TestCachePersistence:
    def build_cache(self):
        cache = EnergyCache(EnergyCacheConfig(thresh_iss_calls=2))
        key_a = ("p", "t", ((1, "T"), (4, "F")))
        key_b = ("q", "u", ())
        for energy in (1e-9, 1.1e-9, 0.9e-9):
            cache.update(key_a, energy, 12)
        cache.update(key_b, 5e-9, 40)
        return cache, key_a, key_b

    def test_round_trip_preserves_statistics(self):
        cache, key_a, key_b = self.build_cache()
        restored = EnergyCache.from_json(cache.to_json())
        original = cache.path_statistics(key_a)
        loaded = restored.path_statistics(key_a)
        assert loaded is not None
        assert loaded.count == original.count
        assert loaded.mean_energy == pytest.approx(original.mean_energy)
        assert loaded.variance_energy == pytest.approx(original.variance_energy)
        assert restored.path_statistics(key_b).count == 1

    def test_round_trip_preserves_config(self):
        cache, _, _ = self.build_cache()
        restored = EnergyCache.from_json(cache.to_json())
        assert restored.config.thresh_iss_calls == 2
        assert restored.config.granularity == "path"

    def test_restored_cache_serves_lookups(self):
        cache, key_a, _ = self.build_cache()
        restored = EnergyCache.from_json(cache.to_json())
        served = restored.lookup(key_a)
        assert served is not None
        assert served[1] == 12

    def test_warm_cache_accelerates_second_session(self):
        """A cache persisted from one co-estimation seeds the next."""
        from repro.core import PowerCoEstimator
        from repro.core.caching import CachingStrategy

        bundle = tcpip.build_system(dma_block_words=4, num_packets=2)
        estimator = PowerCoEstimator(bundle.network, bundle.config)

        first = CachingStrategy()
        estimator.estimate(bundle.stimuli(), strategy=first)
        saved = first.cache.to_json()

        second = CachingStrategy()
        second.cache = EnergyCache.from_json(saved)
        run = estimator.estimate(bundle.stimuli(), strategy=second)
        cold_calls = first.cache.low_level_calls
        # The restored cache starts with zeroed counters, so its
        # low_level_calls are exactly the warm session's fresh calls.
        warm_calls = run.report.strategy_stats["low_level_calls"]
        assert warm_calls < cold_calls
        assert run.report.strategy_stats["cache_hits"] > 0

"""The unified ReproError hierarchy and its structured context."""

import pytest

from repro import ReproError
from repro.cache.cachesim import CacheConfigError
from repro.cfsm.sgraph import SGraphError
from repro.cfsm.validate import NetworkValidationError
from repro.core.macromodel import CharacterizationError
from repro.hw.estimator import HwEstimatorError
from repro.hw.netlist import NetlistError
from repro.hw.synth import SynthesisError
from repro.master.master import MasterError
from repro.parallel.jobs import JobError
from repro.resilience import (
    CheckpointError,
    CorruptedEstimate,
    EstimatorUnavailable,
    InjectedFault,
    WatchdogTimeout,
)
from repro.sw.codegen import CodegenError
from repro.sw.iss import IssError
from repro.sw.program import ProgramError

FRAMEWORK_ERRORS = [
    MasterError,
    IssError,
    HwEstimatorError,
    SynthesisError,
    NetlistError,
    CodegenError,
    ProgramError,
    CacheConfigError,
    JobError,
    NetworkValidationError,
    SGraphError,
    CharacterizationError,
    InjectedFault,
    WatchdogTimeout,
    CorruptedEstimate,
    EstimatorUnavailable,
    CheckpointError,
]


@pytest.mark.parametrize("error_type", FRAMEWORK_ERRORS)
def test_every_framework_error_is_a_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    assert issubclass(error_type, Exception)


@pytest.mark.parametrize(
    "error_type",
    # NetworkValidationError keeps its issue-list constructor.
    [e for e in FRAMEWORK_ERRORS if e is not NetworkValidationError],
)
def test_plain_raise_still_works(error_type):
    """The historical one-argument form is untouched by the re-parent."""
    with pytest.raises(error_type) as excinfo:
        raise error_type("boom")
    assert str(excinfo.value) == "boom"
    assert excinfo.value.context == {}


def test_network_validation_error_keeps_issue_list():
    error = NetworkValidationError(["a is bad", "b is bad"])
    assert error.issues == ["a is bad", "b is bad"]
    assert "a is bad" in str(error)
    assert isinstance(error, ReproError)


def test_structured_context():
    error = IssError(
        "unknown opcode",
        component="consumer",
        path_id=("consumer", "t1"),
        sim_time_ns=1250.0,
    )
    assert error.component == "consumer"
    assert error.path_id == ("consumer", "t1")
    assert error.sim_time_ns == 1250.0
    assert error.context == {
        "component": "consumer",
        "path_id": ("consumer", "t1"),
        "sim_time_ns": 1250.0,
    }
    described = error.describe()
    assert described.startswith("unknown opcode [")
    assert "component='consumer'" in described
    assert "sim_time_ns=1250.0" in described


def test_describe_without_context_is_the_message():
    assert MasterError("deadlock").describe() == "deadlock"


def test_one_except_clause_catches_everything():
    for error_type in FRAMEWORK_ERRORS:
        try:
            raise error_type("x")
        except ReproError as caught:
            assert isinstance(caught, error_type)

"""FIFO regression tests for the deterministic event queue.

Items scheduled at equal timestamps must pop in scheduling order, and
the tie-break must never compare payloads (payloads are arbitrary —
dicts, events, closures — and most are not orderable).
"""

import pytest

from repro.master.kernel import EventQueue


class _Opaque:
    """Deliberately unorderable payload."""

    def __lt__(self, other):  # pragma: no cover - must never be called
        raise AssertionError("payloads must not be compared")


def test_equal_times_pop_in_scheduling_order():
    queue = EventQueue()
    for index in range(10):
        queue.schedule(5.0, "tick", index)
    assert [queue.pop().payload for index in range(10)] == list(range(10))


def test_tie_break_never_compares_payloads():
    queue = EventQueue()
    payloads = [_Opaque() for _ in range(6)]
    for payload in payloads:
        queue.schedule(1.0, "tick", payload)
    # dict payloads are not comparable either
    queue.schedule(1.0, "tick", {"a": 1})
    queue.schedule(1.0, "tick", {"b": 2})
    popped = [queue.pop().payload for _ in range(8)]
    assert popped[:6] == payloads
    assert popped[6:] == [{"a": 1}, {"b": 2}]


def test_fifo_within_time_and_order_across_times():
    queue = EventQueue()
    queue.schedule(2.0, "late", "c")
    queue.schedule(1.0, "early", "a")
    queue.schedule(1.0, "early", "b")
    queue.schedule(0.5, "first", "z")
    order = [queue.pop().payload for _ in range(4)]
    assert order == ["z", "a", "b", "c"]


def test_interleaved_schedule_and_pop_keeps_fifo():
    queue = EventQueue()
    queue.schedule(1.0, "k", 1)
    queue.schedule(1.0, "k", 2)
    assert queue.pop().payload == 1
    queue.schedule(1.0, "k", 3)
    assert [queue.pop().payload, queue.pop().payload] == [2, 3]


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.schedule(-1.0, "bad")

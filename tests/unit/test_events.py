"""Unit tests: event types, occurrences, one-place buffers."""

import pytest

from repro.cfsm.events import Event, EventBuffer, EventType


class TestEventType:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            EventType("")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            EventType("E", width=0)

    def test_defaults(self):
        event_type = EventType("E")
        assert not event_type.has_value
        assert event_type.width == 16


class TestEvent:
    def test_at_stamps_time(self):
        event = Event("E", value=3)
        stamped = event.at(12.5)
        assert stamped.time == 12.5
        assert stamped.value == 3
        assert event.time is None  # original untouched

    def test_with_value(self):
        event = Event("E", value=1, time=2.0, source="p")
        changed = event.with_value(9)
        assert changed.value == 9
        assert changed.time == 2.0
        assert changed.source == "p"


class TestEventBuffer:
    def make(self):
        return EventBuffer(inputs=["A", "B"])

    def test_deliver_and_present(self):
        buffer = self.make()
        buffer.deliver(Event("A", value=5, time=1.0))
        assert buffer.present("A")
        assert not buffer.present("B")
        assert buffer.value("A") == 5

    def test_unknown_event_rejected(self):
        buffer = self.make()
        with pytest.raises(KeyError):
            buffer.deliver(Event("X", time=0.0))

    def test_overwrite_counts(self):
        buffer = self.make()
        buffer.deliver(Event("A", value=1, time=0.0))
        buffer.deliver(Event("A", value=2, time=1.0))
        assert buffer.value("A") == 2
        assert buffer.overwrite_count == 1

    def test_consume_returns_values(self):
        buffer = self.make()
        buffer.deliver(Event("A", value=7, time=0.0))
        consumed = buffer.consume(["A", "B"])
        assert consumed == {"A": 7}
        assert not buffer.present("A")

    def test_value_of_absent_event_raises(self):
        buffer = self.make()
        with pytest.raises(KeyError):
            buffer.value("A")

    def test_clear(self):
        buffer = self.make()
        buffer.deliver(Event("A", time=0.0))
        buffer.deliver(Event("B", time=0.0))
        buffer.clear()
        assert buffer.pending_names() == []

    def test_snapshot_is_copy(self):
        buffer = self.make()
        buffer.deliver(Event("A", value=4, time=0.0))
        snapshot = buffer.snapshot()
        snapshot["A"] = 99
        assert buffer.value("A") == 4

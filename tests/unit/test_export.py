"""Unit tests: CSV/VCD/report export of power waveforms."""

import pytest

from repro.master.export import (
    export_energy_breakdown,
    export_power_csv,
    export_power_vcd,
    _vcd_identifier,
)
from repro.master.tracing import EnergyAccountant


@pytest.fixture
def accountant():
    acc = EnergyAccountant()
    acc.add("cpu", "sw", 0.0, 100.0, 4e-9)
    acc.add("cpu", "sw", 150.0, 250.0, 2e-9)
    acc.add("asic", "hw", 50.0, 150.0, 8e-9)
    acc.add("_bus", "bus", 90.0, 110.0, 1e-9)
    return acc


class TestCsv:
    def test_header_and_columns(self, accountant):
        text = export_power_csv(accountant, bin_ns=50.0)
        lines = text.strip().splitlines()
        assert lines[0] == "time_ns,_bus,asic,cpu"
        assert len(lines) > 2
        for line in lines[1:]:
            assert len(line.split(",")) == 4

    def test_component_filter(self, accountant):
        text = export_power_csv(accountant, bin_ns=50.0, components=["cpu"])
        assert text.splitlines()[0] == "time_ns,cpu"

    def test_energy_conserved_in_csv(self, accountant):
        text = export_power_csv(accountant, bin_ns=50.0, components=["cpu"])
        total = 0.0
        for line in text.strip().splitlines()[1:]:
            total += float(line.split(",")[1]) * 50e-9
        assert total == pytest.approx(6e-9, rel=1e-6)


class TestVcd:
    def test_structure(self, accountant):
        text = export_power_vcd(accountant, bin_ns=50.0)
        assert "$timescale 1ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$var integer 32" in text
        assert "cpu_uW" in text
        assert "#0" in text

    def test_value_changes_only_on_change(self, accountant):
        text = export_power_vcd(accountant, bin_ns=50.0, components=["cpu"])
        # The cpu is quiet in bins 2 (100-150ns): its value must change
        # (to something near zero), then change again when it resumes.
        changes = [line for line in text.splitlines()
                   if line.startswith("b")]
        assert len(changes) >= 3

    def test_identifier_uniqueness(self):
        codes = {_vcd_identifier(i) for i in range(300)}
        assert len(codes) == 300


class TestBreakdown:
    def test_contains_all_entries(self, accountant):
        text = export_energy_breakdown(accountant)
        for name in ("cpu", "asic", "_bus", "sw", "hw", "bus", "total"):
            assert name in text

    def test_total_value(self, accountant):
        text = export_energy_breakdown(accountant)
        assert "0.015 uJ" in text  # 15e-9 J total

"""Unit + round-trip tests: BLIF and Verilog netlist writers.

The strongest check re-implements a miniature BLIF evaluator in the
test and verifies that evaluating the exported ``.names`` covers
reproduces the compiled simulator's combinational behaviour on random
inputs — a true semantic round trip through the exchange format.
"""

import random

import pytest

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.expr import add, const, event_value, gt, var
from repro.cfsm.sgraph import assign, emit, if_
from repro.hw.export import to_blif, to_verilog
from repro.hw.logicsim import CompiledSimulator
from repro.hw.netlist import NetlistBuilder
from repro.hw.synth import synthesize_cfsm


def adder_netlist(width=4):
    builder = NetlistBuilder("add%d" % width)
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_add(a, b)
    builder.output_bus("sum", total)
    builder.output_bus("carry", [carry])
    return builder.build()


def synth_block():
    builder = CfsmBuilder("exp", width=8)
    builder.input("GO", has_value=True)
    builder.output("OUT", has_value=True)
    builder.var("acc", 0)
    builder.transition("t", trigger=["GO"], body=[
        assign("acc", add(var("acc"), event_value("GO"))),
        if_(gt(var("acc"), const(100)), [emit("OUT", var("acc"))]),
    ])
    return synthesize_cfsm(builder.build())


class _BlifModel:
    """Minimal BLIF reader/evaluator for combinational round-trips."""

    def __init__(self, text):
        self.inputs = []
        self.outputs = []
        self.tables = []  # (input signal names, output name, covers)
        self.latches = []
        lines = [line for line in text.splitlines()
                 if line and not line.startswith("#")]
        index = 0
        while index < len(lines):
            line = lines[index]
            if line.startswith(".inputs"):
                self.inputs = line.split()[1:]
            elif line.startswith(".outputs"):
                self.outputs = line.split()[1:]
            elif line.startswith(".latch"):
                parts = line.split()
                self.latches.append((parts[1], parts[2], int(parts[-1])))
            elif line.startswith(".names"):
                signals = line.split()[1:]
                covers = []
                index += 1
                while index < len(lines) and not lines[index].startswith("."):
                    covers.append(lines[index])
                    index += 1
                self.tables.append((signals[:-1], signals[-1], covers))
                continue
            index += 1

    def evaluate(self, input_values):
        values = dict(input_values)
        for latch_d, latch_q, init in self.latches:
            values.setdefault(latch_q, init)
        for in_names, out_name, covers in self.tables:
            result = 0
            for cover in covers:
                if cover == "1" and not in_names:
                    result = 1
                    break
                pattern = cover.split()[0] if " " in cover else cover
                if not in_names:
                    continue
                bits = [values[name] for name in in_names]
                matches = all(
                    p == "-" or int(p) == bit
                    for p, bit in zip(pattern, bits)
                )
                if matches:
                    result = 1
                    break
            values[out_name] = result
        return values


class TestBlif:
    def test_structure(self):
        text = to_blif(synth_block().netlist)
        assert text.startswith(".model")
        assert ".inputs" in text and ".outputs" in text
        assert ".latch" in text and text.rstrip().endswith(".end")

    def test_combinational_round_trip(self):
        """BLIF evaluation == compiled simulation on random vectors."""
        netlist = adder_netlist()
        simulator = CompiledSimulator(netlist)
        model = _BlifModel(to_blif(netlist))
        rng = random.Random(4)
        for _ in range(25):
            a = rng.randint(0, 15)
            b = rng.randint(0, 15)
            simulator.step({"a": a, "b": b})
            inputs = {"const0": 0, "const1": 1}
            for port, value in (("a", a), ("b", b)):
                for bit, net in enumerate(netlist.input_ports[port]):
                    from repro.hw.export import _net_name
                    inputs[_net_name(netlist, net)] = (value >> bit) & 1
            values = model.evaluate(inputs)
            total = 0
            for bit, net in enumerate(netlist.output_ports["sum"]):
                from repro.hw.export import _net_name
                total |= values[_net_name(netlist, net)] << bit
            assert total == simulator.peek("sum")

    def test_names_count_matches_gates(self):
        block = synth_block()
        text = to_blif(block.netlist)
        assert text.count(".names") == block.netlist.gate_count + 2
        assert text.count(".latch") == block.netlist.dff_count


class TestVerilog:
    def test_module_structure(self):
        block = synth_block()
        text = to_verilog(block.netlist)
        assert text.startswith("module")
        assert "input clk;" in text
        assert "input [7:0] in_GO;" in text
        assert "output [7:0] val_OUT;" in text
        assert "always @(posedge clk)" in text
        assert text.rstrip().endswith("endmodule")

    def test_every_gate_becomes_assign(self):
        block = synth_block()
        text = to_verilog(block.netlist)
        # gate assigns + output port drivers + input aliases
        assert text.count("assign") >= block.netlist.gate_count

    def test_initial_values_present(self):
        netlist = NetlistBuilder("init")
        data = netlist.input_bus("d", 2)
        netlist.output_bus("q", netlist.register(data, 1, init=0b10))
        text = to_verilog(netlist.build())
        assert "= 1'b0;" in text and "= 1'b1;" in text

    def test_custom_module_name(self):
        text = to_verilog(adder_netlist(), module_name="my_adder")
        assert text.startswith("module my_adder")

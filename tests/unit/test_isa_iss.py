"""Unit tests: ISA, program container, and the ISS timing model."""

import pytest

from repro.sw.isa import BASE_CYCLES, Instruction, InstructionClass, Opcode, class_of
from repro.sw.iss import Iss, IssError, PIPELINE_FILL_CYCLES
from repro.sw.program import Program, ProgramBuilder, ProgramError
from repro.sw.power_model import InstructionPowerModel


class TestInstruction:
    def test_classification(self):
        assert class_of(Opcode.ADD) == InstructionClass.ALU
        assert class_of(Opcode.LD) == InstructionClass.LOAD
        assert class_of(Opcode.BA) == InstructionClass.BRANCH
        assert class_of(Opcode.SMUL) == InstructionClass.MUL

    def test_multi_cycle_opcodes(self):
        assert BASE_CYCLES[Opcode.SMUL] == 4
        assert BASE_CYCLES[Opcode.SDIV] == 12
        assert BASE_CYCLES[Opcode.ADD] == 1

    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BE)

    def test_reads_and_writes(self):
        add = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
        assert set(add.reads()) == {1, 2}
        assert add.writes() == 3
        store = Instruction(Opcode.ST, rd=4, rs1=5, imm=0)
        assert set(store.reads()) == {4, 5}
        assert store.writes() is None

    def test_r0_never_written(self):
        inst = Instruction(Opcode.ADD, rd=0, rs1=1, rs2=2)
        assert inst.writes() is None

    def test_disassembly(self):
        assert repr(Instruction(Opcode.NOP)) == "nop"
        assert "ld r3" in repr(Instruction(Opcode.LD, rd=3, rs1=0, imm=8))


class TestProgramBuilder:
    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("x")
        with pytest.raises(ProgramError):
            builder.label("x")

    def test_undefined_target_rejected_at_build(self):
        builder = ProgramBuilder()
        builder.branch(Opcode.BA, "nowhere")
        builder.label("nowhere_else")
        with pytest.raises(ProgramError):
            builder.build()

    def test_size_bytes(self):
        builder = ProgramBuilder()
        builder.label("e")
        builder.nop()
        builder.ret()
        program = builder.build()
        assert program.size_bytes == 8

    def test_disassemble_contains_labels(self):
        builder = ProgramBuilder()
        builder.label("entry")
        builder.nop()
        listing = builder.build().disassemble()
        assert "entry:" in listing


def assemble(body):
    builder = ProgramBuilder()
    builder.label("main")
    body(builder)
    builder.ret()
    return builder.build()


class TestIssTiming:
    def test_pipeline_fill_charged(self):
        program = assemble(lambda b: b.nop())
        result = Iss(program).run("main", {})
        assert result.cycles == PIPELINE_FILL_CYCLES + 1 + BASE_CYCLES[Opcode.RET]

    def test_load_use_interlock(self):
        def with_stall(builder):
            builder.load(8, 0, 0)
            builder.alu(Opcode.ADD, 9, 8, imm=1)  # uses r8 immediately

        def without_stall(builder):
            builder.load(8, 0, 0)
            builder.nop()
            builder.alu(Opcode.ADD, 9, 8, imm=1)

        stalled = Iss(assemble(with_stall)).run("main", {})
        clean = Iss(assemble(without_stall)).run("main", {})
        assert stalled.stall_cycles == 1
        assert clean.stall_cycles == 0
        # Both paths take the same cycles (the NOP fills the stall).
        assert stalled.cycles + 1 == clean.cycles + 1

    def test_delay_slot_executes_before_branch(self):
        def body(builder):
            builder.seti(8, 1)
            builder.cmp(8, imm=1)
            builder.append(Instruction(Opcode.BE, target="skip"))
            builder.seti(9, 42)  # delay slot: executes although branch taken
            builder.seti(10, 7)  # skipped
            builder.label("skip")

        iss = Iss(assemble(body))
        iss.run("main", {})
        assert iss.registers[9] == 42
        assert iss.registers[10] == 0

    def test_branch_in_delay_slot_rejected(self):
        def body(builder):
            builder.append(Instruction(Opcode.BA, target="main"))
            builder.append(Instruction(Opcode.BA, target="main"))

        with pytest.raises(IssError):
            Iss(assemble(body)).run("main", {})

    def test_runaway_guard(self):
        def body(builder):
            builder.label("spin")
            builder.branch(Opcode.BA, "spin")

        with pytest.raises(IssError):
            Iss(assemble(body), max_instructions=100).run("main", {})

    def test_call_and_ret(self):
        builder = ProgramBuilder()
        builder.label("main")
        builder.call("sub")
        builder.seti(9, 5)
        builder.ret()
        builder.label("sub")
        builder.seti(8, 4)
        builder.ret()
        iss = Iss(builder.build())
        iss.run("main", {})
        assert iss.registers[8] == 4
        assert iss.registers[9] == 5

    def test_breakpoint_stops_execution(self):
        builder = ProgramBuilder()
        builder.label("main")
        builder.seti(8, 1)
        builder.label("bp")
        builder.seti(8, 2)
        builder.ret()
        iss = Iss(builder.build())
        result = iss.run("main", {}, breakpoints={"bp"})
        assert result.stopped_at_breakpoint == "bp"
        assert iss.registers[8] == 1


class TestIssEnergy:
    def test_energy_positive_and_class_counts(self):
        def body(builder):
            builder.seti(8, 3)
            builder.load(9, 0, 0)
            builder.store(9, 0, 1)

        result = Iss(assemble(body)).run("main", {})
        assert result.energy > 0
        assert result.class_counts[InstructionClass.ALU] >= 1
        assert result.class_counts[InstructionClass.LOAD] == 1
        assert result.class_counts[InstructionClass.STORE] == 1

    def test_data_dependent_model_varies_with_values(self):
        def body(builder):
            builder.load(8, 0, 0)
            builder.alu(Opcode.ADD, 9, 8, rs2=8)

        model = InstructionPowerModel.dsp_like()
        low = Iss(assemble(body), model).run("main", {0: 0})
        high = Iss(assemble(body), model).run("main", {0: 0xFFFF})
        assert high.energy > low.energy

    def test_sparclite_model_is_data_independent(self):
        def body(builder):
            builder.load(8, 0, 0)
            builder.alu(Opcode.ADD, 9, 8, rs2=8)

        low = Iss(assemble(body)).run("main", {0: 0})
        high = Iss(assemble(body)).run("main", {0: 0xFFFF})
        assert low.energy == high.energy

    def test_run_sequence_straight_line(self):
        instructions = [
            Instruction(Opcode.SETI, rd=8, imm=1),
            Instruction(Opcode.ADD, rd=9, rs1=8, rs2=8),
            Instruction(Opcode.BA, target="x"),  # charged, not followed
        ]
        builder = ProgramBuilder()
        builder.label("x")
        builder.ret()
        iss = Iss(builder.build())
        result = iss.run_sequence(instructions)
        assert result.instruction_count == 3
        assert result.cycles >= 3

"""Unit tests: the ``repro lint`` command and the pre-flight gate."""

import argparse
import json
import os

import pytest

from repro.__main__ import _preflight, _preflight_service, build_parser, main
from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.expr import const
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import assign


class TestParser:
    def test_lint_requires_known_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "warp-core"])

    def test_lint_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "fig1", "--format", "xml"])

    def test_no_preflight_flags_exist(self):
        estimate = build_parser().parse_args(
            ["estimate", "fig1", "--no-preflight"])
        assert estimate.no_preflight
        explore = build_parser().parse_args(["explore", "--no-preflight"])
        assert explore.no_preflight

    def test_service_no_preflight_flags_exist(self):
        serve = build_parser().parse_args(["serve", "--no-preflight"])
        assert serve.no_preflight
        cluster = build_parser().parse_args(["cluster", "--no-preflight"])
        assert cluster.no_preflight
        assert not build_parser().parse_args(["serve"]).no_preflight

    def test_lint_cost_flags(self):
        args = build_parser().parse_args(
            ["lint", "fig1", "--cost", "--cost-output", "cost.json"])
        assert args.cost
        assert args.cost_output == "cost.json"
        assert not build_parser().parse_args(["lint", "fig1"]).cost

    def test_transvalidate_flags(self):
        args = build_parser().parse_args(["transvalidate"])
        assert args.format == "json"
        assert args.output is None
        sarif = build_parser().parse_args(
            ["transvalidate", "--format", "sarif", "--output", "tv.sarif"])
        assert sarif.format == "sarif"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transvalidate", "--format", "xml"])


class TestLintCommand:
    def test_text_report_and_exit_code(self, capsys):
        # All bundled systems lint clean (notes only → exit 0).
        assert main(["lint", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "lint: fig1_example" in out
        assert "0 error(s), 0 warning(s)" in out

    def test_json_report(self, capsys):
        assert main(["lint", "fig1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro-lint"
        assert payload["max_severity"] in (None, "note")

    def test_sarif_report(self, capsys):
        assert main(["lint", "fig1", "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_output_file(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "report.sarif")
        assert main(["lint", "fig1", "--format", "sarif",
                     "--output", path]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(path) as handle:
            assert json.load(handle)["version"] == "2.1.0"

    def test_fast_subset_skips_netlist_rules(self, capsys):
        assert main(["lint", "fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "NL304" not in out  # netlist pass did not run

    def test_baseline_workflow(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "lint.base.json")
        assert main(["lint", "fig1", "--write-baseline", path]) == 0
        capsys.readouterr()
        assert main(["lint", "fig1", "--baseline", path]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s), 0 note(s)" in out
        assert "suppressed by baseline" in out

    def test_metrics_export(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "metrics.json")
        assert main(["lint", "fig1", "--metrics", path]) == 0
        with open(path) as handle:
            snapshot = json.load(handle)
        counters = snapshot["counters"]
        assert counters["lint.rule.NET109"] >= 1
        assert counters["lint.rule.NL304"] >= 1

    def test_dataflow_rules_hit_the_metrics_counters(self, tmp_path, capsys):
        # The tcpip checksum datapath has dead upper bits (DF501) and a
        # provable energy bound (DF502): both must surface as
        # ``lint.rule.<CODE>`` counters for dashboards.
        path = os.path.join(str(tmp_path), "metrics.json")
        assert main(["lint", "tcpip", "--metrics", path]) == 0
        with open(path) as handle:
            counters = json.load(handle)["counters"]
        assert counters["lint.rule.DF501"] >= 1
        assert counters["lint.rule.DF502"] >= 1

    def test_cost_report_appended(self, capsys):
        assert main(["lint", "automotive", "--cost"]) == 0
        out = capsys.readouterr().out
        assert "lint: automotive_dashboard" in out  # the lint ran too
        assert "Static cost report: automotive_dashboard" in out
        assert "cost units" in out
        assert "cache table" in out

    def test_cost_output_file(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "cost.json")
        assert main(["lint", "automotive", "--cost-output", path]) == 0
        assert "wrote %s" % path in capsys.readouterr().out
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["system"] == "automotive_dashboard"
        assert payload["cost_units"] == 1.2446
        assert payload["cache_table_size"] == 17
        assert payload["components"]


def broken_network():
    """A network whose fast lint finds an ERROR (undeclared variable)."""
    net = NetworkBuilder("broken")
    proc = net.cfsm("p", mapping=Implementation.SW)
    proc.input("GO")
    proc.transition("t", trigger=["GO"],
                    body=[assign("ghost", const(1))])
    net.environment_input("GO")
    return net.build(validate=False)


class TestPreflight:
    def args(self, no_preflight=False):
        return argparse.Namespace(no_preflight=no_preflight)

    def test_errors_abort(self, capsys):
        with pytest.raises(SystemExit) as info:
            _preflight(broken_network(), self.args())
        assert "--no-preflight" in str(info.value)
        assert "CFSM004" in capsys.readouterr().err

    def test_opt_out_skips(self):
        _preflight(broken_network(), self.args(no_preflight=True))

    def test_advisory_findings_do_not_abort(self, capsys):
        from repro.systems import producer_consumer

        bundle = producer_consumer.build_system(num_packets=1)
        _preflight(bundle.network, self.args(), label="fig1")
        out = capsys.readouterr().out
        assert "advisory" in out
        assert "repro lint fig1" in out

    def test_estimate_runs_preflight(self, capsys):
        assert main(["estimate", "fig1", "--strategy", "macromodel"]) == 0
        out = capsys.readouterr().out
        assert "pre-flight lint" in out

    def test_estimate_no_preflight_is_silent(self, capsys):
        assert main(["estimate", "fig1", "--strategy", "macromodel",
                     "--no-preflight"]) == 0
        assert "pre-flight" not in capsys.readouterr().out


class TestTransvalidateCommand:
    def test_registry_proves_sound_and_exits_zero(self, capsys):
        assert main(["transvalidate"]) == 0
        out = capsys.readouterr().out
        assert "all sound and exercised" in out
        assert "UNSOUND" not in out
        assert "DEAD" not in out
        # One status line per registered rule, each with its vectors.
        assert out.count("SOUND") == out.count("vector(s), ")

    def test_json_output(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "tv.json")
        assert main(["transvalidate", "--output", path]) == 0
        assert "wrote %s" % path in capsys.readouterr().out
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["all_sound"] is True
        assert payload["all_exercised"] is True
        assert payload["total_vectors"] >= 5000

    def test_sarif_output(self, tmp_path, capsys):
        path = os.path.join(str(tmp_path), "tv.sarif")
        assert main(["transvalidate", "--format", "sarif",
                     "--output", path]) == 0
        with open(path) as handle:
            log = json.load(handle)
        assert log["version"] == "2.1.0"
        # A sound registry yields an empty result set — the SARIF file
        # is the CI artifact proving the check ran and found nothing.
        assert log["runs"][0]["results"] == []


class TestServicePreflight:
    """``serve``/``cluster`` refuse to start on error-severity designs."""

    def args(self, no_preflight=False):
        return argparse.Namespace(no_preflight=no_preflight)

    def _poison_bundles(self, monkeypatch):
        import repro.__main__ as cli

        class Bundle:
            network = broken_network()

        monkeypatch.setattr(cli, "system_names", lambda: ["broken"])
        monkeypatch.setattr(cli, "_bundle", lambda name: Bundle())

    def test_error_design_refuses_startup(self, monkeypatch, capsys):
        self._poison_bundles(monkeypatch)
        with pytest.raises(SystemExit) as info:
            _preflight_service(self.args(), "serve")
        message = str(info.value)
        assert "refuses to start" in message
        assert "serve" in message
        assert "--no-preflight" in message
        assert "CFSM004" in capsys.readouterr().err

    def test_opt_out_skips_even_with_errors(self, monkeypatch):
        self._poison_bundles(monkeypatch)
        _preflight_service(self.args(no_preflight=True), "serve")

    def test_clean_systems_pass_silently(self, monkeypatch, capsys):
        import repro.__main__ as cli

        # Restrict to one real bundled system to keep the test fast;
        # all of them lint clean, so the gate must not raise.
        monkeypatch.setattr(cli, "system_names", lambda: ["fig1"])
        _preflight_service(self.args(), "cluster")
        captured = capsys.readouterr()
        assert captured.err == ""

"""Static cost model: bounds really bound, reports round-trip.

The two bound walks mirror real execution engines, so each is checked
against its engine on random programs:

* the hardware cycle bound against the RTL micro-program interpreter
  (one micro-op per cycle, the same machine
  ``tests/property/test_prop_synth.py`` proves equivalent to the
  behavioral semantics), and
* the software macro-op bound against the s-graph interpreter's
  actual macro-operation stream.
"""

from hypothesis import given, settings

from repro.cfsm.builder import CfsmBuilder, NetworkBuilder
from repro.cfsm.expr import Const, Var, add, const, event_value, mul, var
from repro.cfsm.sgraph import Assign, Loop, assign, emit
from repro.hw.synth import RtlCompiler
from repro.lint.cost import (
    ComponentCost,
    CostReport,
    compute_cost_report,
    hw_transition_cycle_bound,
    sw_transition_op_bound,
)

from tests.generators import (
    EVENT_IN,
    VAR_NAMES,
    hw_bodies,
    hw_values,
    sw_bodies,
    sw_values,
    var_bindings,
)
from tests.property.test_prop_synth import (
    SHARED_IMAGE,
    DictShared,
    build_cfsm,
    interpret_micro,
    run_behavioral,
)


# ---------------------------------------------------------------------------
# Hardware: the cycle bound dominates the micro-program interpreter
# ---------------------------------------------------------------------------


@given(hw_bodies(), var_bindings(hw_values()), hw_values())
@settings(max_examples=40)
def test_hw_cycle_bound_dominates_micro_program(body, bindings, event_value_):
    cfsm = build_cfsm(list(body))
    bound = hw_transition_cycle_bound(cfsm, 0)
    assert bound is not None and bound >= 1

    _, trace, _ = run_behavioral(cfsm, bindings, event_value_)
    program = RtlCompiler(cfsm).compile()
    cycles, _ = interpret_micro(
        program,
        dict(bindings),
        {EVENT_IN: event_value_},
        [value for _, value in trace.shared_reads],
    )
    assert cycles <= bound, (
        "micro-program ran %d cycles past the static bound %d"
        % (cycles, bound)
    )


def test_hw_bound_none_for_unsynthesizable_body():
    builder = CfsmBuilder("mulproc")
    builder.input(EVENT_IN, has_value=True)
    builder.var("a", 0)
    builder.transition("t", trigger=[EVENT_IN],
                       body=[assign("a", mul(var("a"), var("a")))])
    assert hw_transition_cycle_bound(builder.build(), 0) is None


def test_hw_loop_bound_uses_intervals_not_the_mask():
    """A loop whose count is a constant-valued variable is priced at
    that constant, not at the 2^width-1 datapath mask."""
    builder = CfsmBuilder("looper", width=16)
    builder.input(EVENT_IN)
    builder.var("n", 3)
    builder.var("x", 0)
    builder.transition("t", trigger=[EVENT_IN], body=[
        Loop(Var("n"), [Assign("x", add(var("x"), const(1)))]),
    ])
    bound = hw_transition_cycle_bound(builder.build(), 0)
    assert bound is not None
    # counter init + 3 * (test + body + decrement) + exit test + done:
    # far below the 65535-iteration mask fallback.
    assert bound < 100


# ---------------------------------------------------------------------------
# Software: the macro-op bound dominates the interpreter's stream
# ---------------------------------------------------------------------------


def _build_sw_cfsm(body):
    builder = CfsmBuilder("sprop")
    builder.input(EVENT_IN, has_value=True)
    builder.output("OUT", has_value=True)
    for name in VAR_NAMES:
        builder.var(name, 0)
    builder.transition("t", trigger=[EVENT_IN], body=body)
    return builder.build()


@given(sw_bodies(), var_bindings(sw_values()), sw_values())
@settings(max_examples=40)
def test_sw_op_bound_dominates_interpreter(body, bindings, event_value_):
    cfsm = _build_sw_cfsm(list(body))
    ops_bound, _ = sw_transition_op_bound(cfsm, 0)

    env = dict(bindings)
    env["@" + EVENT_IN] = event_value_
    trace = cfsm.transitions[0].body.execute(env,
                                             shared=DictShared(SHARED_IMAGE))
    assert len(trace.ops) <= ops_bound, (
        "interpreter emitted %d macro-ops past the static bound %d"
        % (len(trace.ops), ops_bound)
    )


def test_sw_bound_marks_cap_assumed_loops():
    builder = CfsmBuilder("capper")
    builder.input(EVENT_IN, has_value=True)
    builder.var("x", 0)
    builder.transition("t", trigger=[EVENT_IN], body=[
        # The count arrives from the event: unbounded interval, so the
        # walk must fall back to the interpreter's iteration cap.
        Loop(event_value(EVENT_IN),
             [Assign("x", add(var("x"), const(1)))]),
    ])
    cfsm = builder.build()
    ops, capped = sw_transition_op_bound(cfsm, 0)
    assert capped
    assert ops > cfsm.transitions[0].body.max_iterations


def test_sw_bound_exact_for_straight_line_code():
    builder = CfsmBuilder("straight")
    builder.input(EVENT_IN, has_value=True)
    builder.output("OUT", has_value=True)
    builder.var("x", 0)
    builder.transition("t", trigger=[EVENT_IN], body=[
        assign("x", add(event_value(EVENT_IN), const(1))),
        emit("OUT", var("x")),
    ])
    cfsm = builder.build()
    ops_bound, capped = sw_transition_op_bound(cfsm, 0)
    assert not capped
    env = {"x": 0, "@" + EVENT_IN: 7}
    trace = cfsm.transitions[0].body.execute(env)
    # Straight-line code has a single path: the bound is tight.
    assert ops_bound == len(trace.ops)


# ---------------------------------------------------------------------------
# The report object
# ---------------------------------------------------------------------------


def _tiny_network(copies=1):
    net = NetworkBuilder("tiny")
    net.environment_input("GO")
    for index in range(copies):
        proc = net.cfsm("p%d" % index, "hw")
        proc.input("GO", has_value=True)
        proc.output("DONE", has_value=True)
        proc.var("x", 0)
        proc.transition("t", trigger=["GO"], body=[
            assign("x", add(var("x"), event_value("GO"))),
            emit("DONE", var("x")),
        ])
        net.on_bus("DONE")
    return net.build()


def test_cost_report_fields_and_determinism():
    report = compute_cost_report(_tiny_network())
    again = compute_cost_report(_tiny_network())
    assert report.to_payload() == again.to_payload()
    assert report.cost_units >= 1.0
    assert report.cycles_per_event_bound is not None
    assert report.cycles_per_event_bound >= 1
    assert report.energy_per_event_bound_j is not None
    assert report.energy_per_event_bound_j > 0.0
    assert report.clock_energy_per_cycle_j > 0.0
    component = report.component("p0")
    assert component.implementation == "hw"
    assert component.gate_count > 0
    assert component.logic_depth > 0


def test_cost_units_monotone_in_design_size():
    small = compute_cost_report(_tiny_network(copies=1))
    large = compute_cost_report(_tiny_network(copies=3))
    assert large.cost_units > small.cost_units


def test_cost_report_payload_round_trip():
    report = compute_cost_report(_tiny_network(copies=2))
    rebuilt = CostReport.from_payload(report.to_payload())
    assert rebuilt.system == report.system
    assert rebuilt.cost_units == report.cost_units
    assert rebuilt.cache_table_size == report.cache_table_size
    assert rebuilt.cache_table_unbounded == report.cache_table_unbounded
    assert len(rebuilt.components) == len(report.components)
    for mine, theirs in zip(rebuilt.components, report.components):
        assert mine.to_payload() == theirs.to_payload()


def test_component_lookup_raises_for_unknown_name():
    import pytest

    report = compute_cost_report(_tiny_network())
    with pytest.raises(KeyError):
        report.component("ghost")


def test_none_bounds_propagate_to_system_level():
    report = CostReport(system="s", components=[
        ComponentCost(name="ok", implementation="hw",
                      cycles_per_event_bound=10,
                      energy_per_event_bound_j=1e-9),
        ComponentCost(name="unbounded", implementation="hw",
                      cycles_per_event_bound=None,
                      energy_per_event_bound_j=None,
                      gate_count=200),
    ])
    assert report.cycles_per_event_bound is None
    assert report.energy_per_event_bound_j is None
    # ...but the admission weight stays finite: unknown hardware is
    # priced at the cycle cap, never refused.
    assert report.cost_units > 1.0


def test_render_mentions_the_key_bounds():
    report = compute_cost_report(_tiny_network())
    text = report.render()
    assert "Static cost report: tiny" in text
    assert "cost units" in text
    assert "[hw] p0" in text
    assert "cycles <=" in text


def test_const_templates_do_not_share_state():
    """Two reports from separately built equal networks are equal —
    no hidden global state in the walks."""
    a = compute_cost_report(_tiny_network(copies=2)).to_payload()
    b = compute_cost_report(_tiny_network(copies=2)).to_payload()
    assert a == b
    assert Const(0) == Const(0)  # dataclass equality, not identity

"""Unit tests: lint diagnostics framework, baselines, and emitters."""

import json

import pytest

from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.lint.diagnostics import (
    RULES,
    Diagnostic,
    Location,
    Severity,
    exit_code,
    make,
    max_severity,
    rule,
    sort_diagnostics,
)
from repro.lint.emitters import (
    EMITTERS,
    SARIF_VERSION,
    render_json,
    render_sarif,
    render_text,
    sarif_report,
)

#: The published rule catalog.  Codes are a stable public contract:
#: they appear in baselines, SARIF reports, and telemetry counters, so
#: removing or renumbering one is a breaking change.  Adding rules is
#: fine — extend this snapshot in the same commit.
EXPECTED_CODES = [
    "CFSM001", "CFSM002", "CFSM003", "CFSM004", "CFSM005", "CFSM006",
    "CFSM007", "CFSM008", "CFSM009", "CFSM010", "CFSM011", "CFSM012",
    "CFSM013",
    "DF501", "DF502", "DF503", "DF504",
    "MM401",
    "NET101", "NET102", "NET103", "NET104", "NET105", "NET106",
    "NET107", "NET108", "NET109",
    "NL300", "NL301", "NL302", "NL303", "NL304", "NL305", "NL306",
    "SG201", "SG202", "SG203", "SG204", "SG205",
    "TV601", "TV602", "TV603",
]


def diag(code="NET109", message="m", **location):
    return make(code, message, Location(**location))


class TestRuleCatalog:
    def test_rule_codes_are_stable(self):
        assert sorted(RULES) == EXPECTED_CODES

    def test_every_rule_is_complete(self):
        for code, entry in RULES.items():
            assert entry.code == code
            assert entry.title
            assert entry.rationale
            assert entry.severity in Severity.ORDER

    def test_validate_subset_is_error_only(self):
        # The legacy validate() contract aborts builds, so everything
        # it re-renders must be an ERROR.
        for entry in RULES.values():
            if entry.in_validate:
                assert entry.severity == Severity.ERROR

    def test_rule_lookup(self):
        assert rule("NET108").severity == Severity.WARNING
        with pytest.raises(KeyError):
            rule("XX999")


class TestSeverity:
    def test_ordering(self):
        assert Severity.rank(Severity.NOTE) \
            < Severity.rank(Severity.WARNING) \
            < Severity.rank(Severity.ERROR)

    def test_max(self):
        assert Severity.max([Severity.NOTE, Severity.ERROR,
                             Severity.WARNING]) == Severity.ERROR
        assert Severity.max([]) is None

    def test_exit_codes(self):
        assert exit_code([]) == 0
        assert exit_code([diag("NET109")]) == 0          # note
        assert exit_code([diag("NET108")]) == 1          # warning
        assert exit_code([diag("NET108"), diag("NET101")]) == 2  # error

    def test_max_severity_of_diagnostics(self):
        assert max_severity([diag("NET109"), diag("NET108")]) \
            == Severity.WARNING


class TestLocation:
    def test_qualified_name_composition(self):
        location = Location(system="sys", cfsm="p", transition="t",
                            node=3, event="GO")
        assert location.qualified_name() == "sys/p/t@n3[event:GO]"

    def test_netlist_locations(self):
        location = Location(system="sys", netlist="ctrl", net=7)
        assert location.qualified_name() == "sys/netlist:ctrl@net7"

    def test_empty_location(self):
        assert Location().qualified_name() == "<design>"


class TestFingerprints:
    def test_deterministic(self):
        a = diag(cfsm="p", transition="t")
        b = diag(cfsm="p", transition="t")
        assert a.fingerprint == b.fingerprint
        assert len(a.fingerprint) == 20
        int(a.fingerprint, 16)  # hex

    def test_sensitive_to_code_location_message(self):
        base = diag(cfsm="p")
        assert diag("NET108", cfsm="p").fingerprint != base.fingerprint
        assert diag(cfsm="q").fingerprint != base.fingerprint
        assert diag(message="other", cfsm="p").fingerprint \
            != base.fingerprint

    def test_insensitive_to_data(self):
        a = make("NET109", "m", Location(cfsm="p"), data={"k": 1})
        b = make("NET109", "m", Location(cfsm="p"), data={"k": 2})
        assert a.fingerprint == b.fingerprint


class TestSorting:
    def test_severity_first_then_code(self):
        ordered = sort_diagnostics([
            diag("NET109", cfsm="a"),   # note
            diag("NET101", cfsm="b"),   # error
            diag("SG201", cfsm="c"),    # warning
            diag("NET108", cfsm="d"),   # warning
        ])
        assert [d.code for d in ordered] \
            == ["NET101", "NET108", "SG201", "NET109"]

    def test_stable_within_code(self):
        ordered = sort_diagnostics([diag(cfsm="z"), diag(cfsm="a")])
        assert [d.location.cfsm for d in ordered] == ["a", "z"]


class TestSeverityOverride:
    def test_make_default_and_override(self):
        assert make("NET109", "m", Location()).severity == Severity.NOTE
        promoted = make("NET109", "m", Location(),
                        severity=Severity.ERROR)
        assert promoted.severity == Severity.ERROR

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make("BOGUS99", "m", Location())


class TestBaseline:
    def findings(self):
        return [diag("NET108", message="race", cfsm="a"),
                diag("NET109", message="unused", cfsm="b")]

    def test_round_trip(self):
        baseline = Baseline.from_diagnostics(self.findings())
        restored = Baseline.from_json(baseline.to_json())
        assert restored.entries == baseline.entries
        for finding in self.findings():
            assert restored.suppresses(finding)

    def test_apply_splits(self):
        known, fresh = self.findings()
        baseline = Baseline.from_diagnostics([known])
        kept, suppressed = baseline.apply([known, fresh])
        assert kept == [fresh]
        assert suppressed == [known]

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "lint.base.json")
        write_baseline(path, self.findings())
        restored = load_baseline(path)
        assert all(restored.suppresses(d) for d in self.findings())

    def test_version_mismatch_rejected(self):
        payload = json.dumps({"version": BASELINE_VERSION + 1,
                              "suppress": []})
        with pytest.raises(BaselineError):
            Baseline.from_json(payload)

    def test_malformed_rejected(self):
        with pytest.raises(BaselineError):
            Baseline.from_json("not json at all {")
        with pytest.raises(BaselineError):
            Baseline.from_json(json.dumps(
                {"version": BASELINE_VERSION, "suppress": [{"code": "X"}]}
            ))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(BaselineError):
            load_baseline(str(tmp_path / "absent.json"))


class TestTextEmitter:
    def test_summary_counts(self):
        text = render_text([diag("NET101"), diag("NET108"), diag()],
                           suppressed=2, title="sys")
        assert text.startswith("lint: sys\n")
        assert "1 error(s), 1 warning(s), 1 note(s)" in text
        assert "2 suppressed by baseline" in text

    def test_most_severe_first(self):
        text = render_text([diag("NET109"), diag("NET101")])
        assert text.index("NET101") < text.index("NET109")


class TestJsonEmitter:
    def test_payload_shape(self):
        payload = json.loads(render_json([diag(cfsm="p")], suppressed=1,
                                         title="sys"))
        assert payload["tool"] == "repro-lint"
        assert payload["title"] == "sys"
        assert payload["suppressed"] == 1
        (entry,) = payload["diagnostics"]
        assert set(entry) == {"code", "severity", "message", "location",
                              "fingerprint", "data"}

    def test_data_is_json_safe(self):
        finding = make("NET108", "m", Location(),
                       data={"addresses": frozenset({2, 1}),
                             "other": ("a", "b")})
        payload = json.loads(render_json([finding]))
        assert payload["diagnostics"][0]["data"]["addresses"] == [1, 2]


class TestSarifEmitter:
    def report(self):
        return sarif_report([diag("NET108", message="race", cfsm="p")],
                            title="sys")

    def test_log_shell(self):
        log = self.report()
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"].endswith("sarif-2.1.0.json")
        assert len(log["runs"]) == 1

    def test_driver_rules_cover_catalog(self):
        driver = self.report()["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert [r["id"] for r in driver["rules"]] == EXPECTED_CODES
        for entry in driver["rules"]:
            assert entry["shortDescription"]["text"]
            assert entry["defaultConfiguration"]["level"] in (
                "note", "warning", "error")

    def test_result_shape(self):
        run = self.report()["runs"][0]
        (result,) = run["results"]
        assert result["ruleId"] == "NET108"
        rules = run["tool"]["driver"]["rules"]
        assert rules[result["ruleIndex"]]["id"] == "NET108"
        assert result["level"] == "warning"
        assert result["message"]["text"] == "race"
        logical = result["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "p"
        assert result["partialFingerprints"]["reproLint/v1"]

    def test_render_is_valid_json(self):
        log = json.loads(render_sarif([diag()]))
        assert log["runs"][0]["results"]

    def test_expression_findings_get_hierarchical_locations(self):
        """DF/TV findings anchored at a sub-expression carry it as a
        child logical location, not squashed into the flat name."""
        finding = diag("DF504", message="decided", cfsm="p",
                       transition="t", expr="GT(Var(x), Const(0))")
        (result,) = sarif_report([finding])["runs"][0]["results"]
        locations = result["locations"][0]["logicalLocations"]
        assert len(locations) == 2
        parent, child = locations
        assert "expr" not in parent
        assert child["name"] == "GT(Var(x), Const(0))"
        assert child["kind"] == "expression"
        assert child["parentIndex"] == 0

    def test_expressionless_findings_stay_flat(self):
        (result,) = sarif_report([diag("NET108", cfsm="p")]
                                 )["runs"][0]["results"]
        assert len(result["locations"][0]["logicalLocations"]) == 1

    def test_emitter_registry(self):
        assert set(EMITTERS) == {"text", "json", "sarif"}
        for emitter in EMITTERS.values():
            assert emitter([diag()], suppressed=0, title="t")

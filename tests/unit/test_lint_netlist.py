"""Unit tests: gate-level structural lint and NetlistError context."""

import pytest

from repro.cfsm.builder import NetworkBuilder
from repro.cfsm.expr import const, event_value
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import assign, emit
from repro.hw.netlist import Dff, Gate, Netlist, NetlistError
from repro.lint.netlist_rules import check_hw_blocks, lint_netlist


def codes(diagnostics):
    return {d.code for d in diagnostics}


def one(diagnostics, code):
    matches = [d for d in diagnostics if d.code == code]
    assert len(matches) == 1, "expected one %s, got %r" % (code, matches)
    return matches[0]


def netlist(gates=(), dffs=(), inputs=None, outputs=None, num_nets=16):
    return Netlist(
        name="t",
        num_nets=num_nets,
        gates=list(gates),
        dffs=list(dffs),
        input_ports=dict(inputs or {}),
        output_ports=dict(outputs or {}),
    )


class TestStructuralRules:
    def test_clean_netlist(self):
        built = netlist(
            gates=[Gate("INV", (2,), 3)],
            inputs={"a": [2]},
            outputs={"y": [3]},
        )
        assert lint_netlist(built) == []

    def test_undriven_net(self):
        built = netlist(gates=[Gate("INV", (5,), 6)], outputs={"y": [6]})
        finding = one(lint_netlist(built), "NL302")
        assert finding.location.net == 5

    def test_shorted_drivers(self):
        built = netlist(
            gates=[Gate("INV", (2,), 4), Gate("BUF", (2,), 4)],
            inputs={"a": [2]},
            outputs={"y": [4]},
        )
        finding = one(lint_netlist(built), "NL303")
        assert finding.location.net == 4
        assert finding.data["drivers"] == 2

    def test_combinational_loop(self):
        built = netlist(
            gates=[Gate("INV", (5,), 4), Gate("INV", (4,), 5)],
            outputs={"y": [4]},
        )
        finding = one(lint_netlist(built), "NL301")
        assert finding.data["nets"] == [4, 5]
        assert finding.data["cells"] == ["INV"]
        # A loop is an error: the simulator would never settle.
        assert finding.severity == "error"

    def test_loop_not_confused_with_floating_inputs(self):
        # A gate waiting on a truly undriven net is NL302, not NL301.
        built = netlist(gates=[Gate("INV", (9,), 4)], outputs={"y": [4]})
        found = codes(lint_netlist(built))
        assert "NL302" in found
        assert "NL301" not in found

    def test_dead_gates_aggregated(self):
        built = netlist(
            gates=[
                Gate("INV", (2,), 4),   # reaches output: live
                Gate("INV", (2,), 5),   # feeds only gate 6: dead pair
                Gate("BUF", (5,), 6),
            ],
            inputs={"a": [2]},
            outputs={"y": [4]},
        )
        finding = one(lint_netlist(built), "NL304")
        assert finding.data["dead_gates"] == 2
        assert finding.data["gates"] == 3

    def test_dff_keeps_fanin_alive(self):
        built = netlist(
            gates=[Gate("INV", (2,), 4)],
            dffs=[Dff(d=4, q=5)],
            inputs={"a": [2]},
            outputs={"y": [5]},
        )
        assert "NL304" not in codes(lint_netlist(built))

    def test_invalid_dff_init(self):
        built = netlist(
            dffs=[Dff(d=2, q=4, init=7)],
            inputs={"a": [2]},
            outputs={"y": [4]},
        )
        finding = one(lint_netlist(built), "NL306")
        assert finding.location.net == 4
        assert finding.data["init"] == 7


def hw_network(consumer_width=16):
    """HW producer emitting a valued event to a HW consumer."""
    net = NetworkBuilder("hwsys")
    producer = net.cfsm("prod", mapping=Implementation.HW)
    producer.input("GO").output("DATA", has_value=True)
    producer.transition("t", trigger=["GO"], body=[emit("DATA", const(3))])
    consumer = net.cfsm("cons", mapping=Implementation.HW,
                        width=consumer_width)
    consumer.input("DATA", has_value=True).var("x", 0)
    consumer.transition("t", trigger=["DATA"],
                        body=[assign("x", event_value("DATA"))])
    net.environment_input("GO")
    return net.build(validate=False)


class TestHwBlocks:
    def test_synthesized_blocks_linted(self):
        diagnostics = check_hw_blocks(hw_network())
        # Real synthesis output must carry no structural errors.
        assert not any(d.severity == "error" for d in diagnostics)

    def test_width_mismatch_reported(self):
        diagnostics = check_hw_blocks(hw_network(consumer_width=8))
        finding = one(diagnostics, "NL305")
        assert finding.location.event == "DATA"
        assert finding.data["producer_width"] == 16
        assert finding.data["consumer_width"] == 8

    def test_software_only_network_skips_synthesis(self):
        net = NetworkBuilder("swsys")
        proc = net.cfsm("p", mapping=Implementation.SW)
        proc.input("GO")
        proc.transition("t", trigger=["GO"], body=[])
        net.environment_input("GO")
        assert check_hw_blocks(net.build(validate=False)) == []


class TestNetlistErrorContext:
    """Netlist.check() failures carry structured error context."""

    def test_gate_reading_undefined_net(self):
        built = netlist(gates=[Gate("INV", (9,), 4)])
        with pytest.raises(NetlistError) as info:
            built.check()
        assert info.value.context["component"] == "t"
        assert info.value.context["net"] == 9
        assert "INV" in str(info.value)

    def test_dff_with_undefined_d(self):
        built = netlist(dffs=[Dff(d=9, q=4)])
        with pytest.raises(NetlistError) as info:
            built.check()
        assert info.value.context["net"] == 9

    def test_output_port_on_undefined_net(self):
        built = netlist(outputs={"y": [9]})
        with pytest.raises(NetlistError) as info:
            built.check()
        assert info.value.context["component"] == "t"
        assert info.value.context["net"] == 9
        assert "'y'" in str(info.value)

    def test_gate_order_is_evaluation_order(self):
        # Using a net before the gate that drives it is rejected even
        # though a driver exists later in the list.
        built = netlist(
            gates=[Gate("INV", (4,), 5), Gate("INV", (2,), 4)],
            inputs={"a": [2]},
        )
        with pytest.raises(NetlistError) as info:
            built.check()
        assert info.value.context["net"] == 4

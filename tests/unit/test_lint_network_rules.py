"""Unit tests: per-CFSM and cross-CFSM lint rules."""

from repro.cfsm.builder import CfsmBuilder, NetworkBuilder
from repro.cfsm.expr import const, event_value, gt, var
from repro.cfsm.model import Implementation, Transition
from repro.cfsm.sgraph import (
    SGraph,
    assign,
    emit,
    shared_write,
)
from repro.cfsm.validate import validate_cfsm, validate_network
from repro.lint.network_rules import check_cfsm, check_network


def codes(diagnostics):
    return {d.code for d in diagnostics}


def one(diagnostics, code):
    matches = [d for d in diagnostics if d.code == code]
    assert len(matches) == 1, "expected one %s, got %r" % (code, matches)
    return matches[0]


class TestCfsmRules:
    def test_clean_cfsm(self):
        builder = CfsmBuilder("ok")
        builder.input("GO", has_value=True).output("DONE", has_value=True)
        builder.var("x", 0)
        builder.transition("t", trigger=["GO"], body=[
            assign("x", event_value("GO")),
            emit("DONE", var("x")),
        ])
        assert check_cfsm(builder.build()) == []

    def test_duplicate_transition_name(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[])
        builder.transition("t", trigger=["GO"], body=[])
        finding = one(check_cfsm(builder.build()), "CFSM001")
        assert finding.location.transition == "t"

    def test_missing_trigger(self):
        builder = CfsmBuilder("p")
        builder.transition("t", trigger=[], body=[])
        assert "CFSM002" in codes(check_cfsm(builder.build()))

    def test_undeclared_trigger(self):
        # The fluent builder rejects this at declaration time, so
        # splice the transition in the way a hand-built model could.
        builder = CfsmBuilder("p")
        builder.input("GO")
        cfsm = builder.build()
        cfsm.transitions.append(Transition(
            name="bad", trigger=("GHOST",), body=SGraph([]),
        ))
        finding = one(check_cfsm(cfsm), "CFSM003")
        assert finding.data["event"] == "GHOST"

    def test_assign_undeclared_variable(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"],
                           body=[assign("ghost", const(1))])
        finding = one(check_cfsm(builder.build()), "CFSM004")
        assert finding.data["variable"] == "ghost"
        assert finding.location.node == 1

    def test_emit_undeclared_output(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[emit("NOPE")])
        assert "CFSM005" in codes(check_cfsm(builder.build()))

    def test_value_on_pure_event(self):
        builder = CfsmBuilder("p")
        builder.input("GO").output("PURE")
        builder.transition("t", trigger=["GO"],
                           body=[emit("PURE", const(1))])
        assert "CFSM006" in codes(check_cfsm(builder.build()))

    def test_valueless_emit_on_valued_event(self):
        builder = CfsmBuilder("p")
        builder.input("GO").output("DATA", has_value=True)
        builder.transition("t", trigger=["GO"], body=[emit("DATA")])
        assert "CFSM012" in codes(check_cfsm(builder.build()))

    def test_reads_undeclared_variable(self):
        builder = CfsmBuilder("p")
        builder.input("GO").output("DATA", has_value=True)
        builder.transition("t", trigger=["GO"],
                           body=[emit("DATA", var("ghost"))])
        assert "CFSM007" in codes(check_cfsm(builder.build()))

    def test_reads_undeclared_event_value(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.var("x", 0)
        builder.transition("t", trigger=["GO"],
                           body=[assign("x", event_value("OTHER"))])
        assert "CFSM008" in codes(check_cfsm(builder.build()))

    def test_reads_pure_event_value(self):
        builder = CfsmBuilder("p")
        builder.input("GO")  # pure
        builder.var("x", 0)
        builder.transition("t", trigger=["GO"],
                           body=[assign("x", event_value("GO"))])
        assert "CFSM009" in codes(check_cfsm(builder.build()))

    def test_undeclared_shared_variable(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[])
        cfsm = builder.build()
        cfsm.shared_variables.add("ghost")
        finding = one(check_cfsm(cfsm), "CFSM010")
        assert finding.location.variable == "ghost"

    def test_guard_reads_undeclared_variable(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[],
                           guard=gt(var("ghost"), const(0)))
        assert "CFSM011" in codes(check_cfsm(builder.build()))

    def test_consumes_undeclared_event(self):
        builder = CfsmBuilder("p")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[],
                           consumes=["OTHER"])
        assert "CFSM013" in codes(check_cfsm(builder.build()))


def network(validate=False, environment=("GO",), **kwargs):
    """Two-process network: env-driven ``a`` emits ``MID`` to ``b``."""
    net = NetworkBuilder("sys")
    a = net.cfsm("a", mapping=Implementation.SW)
    a.input("GO").output("MID", has_value=True)
    a.transition("t", trigger=["GO"], body=[emit("MID", const(1))])
    b = net.cfsm("b", mapping=Implementation.SW)
    b.input("MID", has_value=True).var("x", 0)
    b.transition("t", trigger=["MID"],
                 body=[assign("x", event_value("MID"))])
    net.environment_input(*environment)
    return net, net.build(validate=validate)


class TestNetworkRules:
    def test_clean_network(self):
        _, built = network()
        assert check_network(built) == []

    def test_unmapped_cfsm(self):
        _, built = network()
        del built.mapping["b"]
        finding = one(check_network(built), "NET101")
        assert finding.location.cfsm == "b"

    def test_undriven_input(self):
        _, built = network(environment=())
        finding = one(check_network(built), "NET102")
        assert finding.location.event == "GO"
        assert "'a'" in finding.message or "[a]" in finding.message

    def test_unknown_bus_event(self):
        _, built = network()
        built.bus_events.add("PHANTOM")
        finding = one(check_network(built), "NET103")
        assert finding.location.event == "PHANTOM"

    def test_unwatched_reset_event(self):
        _, built = network()
        built.reset_events.add("RESET")
        assert "NET104" in codes(check_network(built))

    def test_trigger_on_reset_event(self):
        _, built = network()
        built.reset_events.add("GO")
        built.environment_inputs.add("GO")
        finding = one(check_network(built), "NET105")
        assert finding.location.cfsm == "a"
        assert finding.location.transition == "t"

    def test_event_type_conflict(self):
        _, built = network()
        # b declares MID as an 8-bit input while a emits 16-bit values.
        built.cfsms["b"].inputs["MID"] = type(
            built.cfsms["b"].inputs["MID"]
        )("MID", has_value=True, width=8)
        finding = one(check_network(built), "NET106")
        assert finding.location.event == "MID"
        assert "width=8" in finding.message
        assert "width=16" in finding.message

    def test_multi_producer_event(self):
        net = NetworkBuilder("sys")
        for name in ("p1", "p2"):
            producer = net.cfsm(name, mapping=Implementation.SW)
            producer.input("GO").output("OUT", has_value=True)
            producer.transition("t", trigger=["GO"],
                                body=[emit("OUT", const(1))])
        consumer = net.cfsm("c", mapping=Implementation.SW)
        consumer.input("OUT", has_value=True).var("x", 0)
        consumer.transition("t", trigger=["OUT"],
                            body=[assign("x", event_value("OUT"))])
        net.environment_input("GO")
        finding = one(check_network(net.build(validate=False)), "NET107")
        assert finding.data["producers"] == ["p1", "p2"]

    def test_unconsumed_output(self):
        _, built = network()
        built.cfsms["a"].outputs["SPARE"] = type(
            built.cfsms["a"].outputs["MID"]
        )("SPARE", has_value=False, width=16)
        finding = one(check_network(built), "NET109")
        assert finding.location.event == "SPARE"


def racy_pair(handshake=False):
    """Two processes writing shared address 0x40; optionally ordered
    by an emit→trigger handshake from ``w1`` to ``w2``."""
    net = NetworkBuilder("race")
    w1 = net.cfsm("w1", mapping=Implementation.SW)
    w1.input("GO")
    body = [shared_write(const(0x40), const(1))]
    if handshake:
        w1.output("STORED")
        body.append(emit("STORED"))
    w1.transition("t", trigger=["GO"], body=body)
    w2 = net.cfsm("w2", mapping=Implementation.SW)
    w2.input("STORED" if handshake else "GO")
    w2.transition(
        "t", trigger=["STORED" if handshake else "GO"],
        body=[shared_write(const(0x40), const(2))],
    )
    net.environment_input("GO")
    return net.build(validate=False)


class TestSharedWriteRaces:
    def test_unordered_writes_reported(self):
        finding = one(check_network(racy_pair()), "NET108")
        assert finding.data["addresses"] == [0x40]
        assert finding.data["other"] == "w2"
        assert "0x40" in finding.message

    def test_handshake_suppresses(self):
        diagnostics = check_network(racy_pair(handshake=True))
        assert "NET108" not in codes(diagnostics)

    def test_distinct_addresses_do_not_race(self):
        built = racy_pair()
        [stmt] = built.cfsms["w2"].transitions[0].body.statements
        stmt.address = const(0x41)
        assert "NET108" not in codes(check_network(built))


class TestValidateFacade:
    """The legacy validate API rides on the lint rules."""

    def test_validate_cfsm_renders_strings(self):
        builder = CfsmBuilder("bad")
        builder.input("GO")
        builder.transition("t", trigger=["GO"],
                           body=[assign("ghost", const(1))])
        issues = validate_cfsm(builder.build())
        assert any("ghost" in issue for issue in issues)
        assert all(isinstance(issue, str) for issue in issues)

    def test_advisory_rules_not_in_validate(self):
        # NET108/NET109 are advisory: strict builds must not fail on
        # designs that validated before the lint subsystem existed.
        issues = validate_network(racy_pair(), strict=False)
        assert issues == []

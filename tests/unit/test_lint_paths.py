"""Unit tests: path enumeration, cacheability, and macro coverage."""

import pytest

from repro.cfsm.actions import MacroOpKind, all_macro_op_names
from repro.cfsm.builder import CfsmBuilder, NetworkBuilder
from repro.cfsm.expr import add, const, event_value, gt, var
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import SGraph, assign, emit, if_, loop, shared_read
from repro.core.macromodel import MacroCost, ParameterFile
from repro.lint.paths import (
    BLOWUP_THRESHOLD,
    SIGNATURE_CAP,
    TOP,
    PathSet,
    cacheability_report,
    check_macro_coverage,
    check_paths,
    compute_value_sets,
    enumerate_paths,
    shadowing_transition,
    static_macro_ops,
    static_value,
)


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestPathSet:
    def test_identity(self):
        empty = PathSet()
        assert empty.count == 1
        assert empty.signatures == ((),)

    def test_sequence_multiplies(self):
        two = PathSet().prefixed(1, "T").union(PathSet().prefixed(1, "F"))
        combined = two.sequence(two)
        assert combined.count == 4
        assert len(combined.signatures) == 4
        assert ((1, "T"), (1, "T")) in combined.signatures

    def test_union_adds(self):
        two = PathSet().union(PathSet())
        assert two.count == 2

    def test_power(self):
        two = PathSet().prefixed(1, "T").union(PathSet().prefixed(1, "F"))
        cubed = two.power(3)
        assert cubed.count == 8
        assert len(cubed.signatures) == 8
        assert two.power(0).count == 1

    def test_signature_cap_keeps_count_exact(self):
        two = PathSet().prefixed(1, "T").union(PathSet().prefixed(1, "F"))
        big = two.power(20)  # 2^20 >> SIGNATURE_CAP
        assert big.count == 2 ** 20 > SIGNATURE_CAP
        assert big.capped
        assert big.signatures is None


class TestValueSets:
    def build(self):
        builder = CfsmBuilder("p")
        builder.input("GO", has_value=True)
        builder.var("mode", 0).var("data", 0).var("mem", 0)
        builder.transition("t", trigger=["GO"], body=[
            assign("mode", const(2)),
            assign("data", event_value("GO")),
            shared_read("mem", const(0x10)),
        ])
        return builder.build()

    def test_constants_collected(self):
        values = compute_value_sets(self.build())
        assert values["mode"] == frozenset({0, 2})

    def test_data_dependence_widens_to_top(self):
        values = compute_value_sets(self.build())
        assert values["data"] is TOP
        assert values["mem"] is TOP

    def test_static_value(self):
        values = {"a": frozenset({3}), "b": frozenset({1, 2})}
        assert static_value(add(var("a"), const(1)), values) == 4
        assert static_value(var("b"), values) is None  # not a singleton
        assert static_value(event_value("GO"), values) is None


class TestEnumeratePaths:
    def test_straight_line_is_one_path(self):
        result = enumerate_paths([assign("x", const(1))],
                                 {"x": frozenset({0})})
        assert result.count == 1
        assert result.paths.signatures == ((),)

    def test_unknown_branch_doubles(self):
        body = [if_(gt(var("x"), const(0)), [emit("A")], [emit("B")])]
        result = enumerate_paths(body, {"x": TOP})
        assert result.count == 2
        assert result.constant_branches == []

    def test_static_branch_prunes(self):
        # Wrap in an SGraph so statements get their depth-first node
        # ids, the way check_paths sees transition bodies.
        body = SGraph(
            [if_(gt(var("x"), const(0)), [emit("A")], [emit("B")])]
        ).statements
        result = enumerate_paths(body, {"x": frozenset({5})})
        assert result.count == 1
        assert result.constant_branches == [(1, True)]

    def test_counted_loop_powers(self):
        body = [loop(const(3), [
            if_(gt(var("x"), const(0)), [emit("A")], []),
        ])]
        result = enumerate_paths(body, {"x": TOP})
        assert result.count == 2 ** 3
        assert not result.paths.unbounded

    def test_data_bound_over_branching_body_is_unbounded(self):
        body = [loop(var("n"), [
            if_(gt(var("x"), const(0)), [emit("A")], []),
        ])]
        result = enumerate_paths(body, {"n": TOP, "x": TOP})
        assert result.paths.unbounded

    def test_data_bound_over_straight_body_is_fine(self):
        # Loop iterations leave no trace in the path signature, so a
        # data-dependent bound around branch-free code is one path.
        body = [loop(var("n"), [assign("x", add(var("x"), const(1)))])]
        result = enumerate_paths(body, {"n": TOP, "x": TOP})
        assert result.count == 1
        assert not result.paths.unbounded


def build_network(transitions, variables=(), inputs=("GO",), name="sys"):
    net = NetworkBuilder(name)
    proc = net.cfsm("p", mapping=Implementation.SW)
    for event in inputs:
        proc.input(event, has_value=True)
    proc.output("OUT", has_value=True)
    for var_name, initial in variables:
        proc.var(var_name, initial)
    for args in transitions:
        proc.transition(**args)
    net.environment_input(*inputs)
    return net.build(validate=False)


class TestLivenessRules:
    def test_shadowed_transition(self):
        built = build_network([
            dict(name="first", trigger=["GO"], body=[]),
            dict(name="second", trigger=["GO"], body=[emit("OUT", const(1))]),
        ])
        cfsm = built.cfsms["p"]
        values = compute_value_sets(cfsm)
        assert shadowing_transition(cfsm, 1, values).name == "first"
        finding = [d for d in check_paths(built) if d.code == "SG201"]
        assert finding and finding[0].location.transition == "second"
        assert finding[0].data["shadowed_by"] == "first"

    def test_guarded_earlier_transition_does_not_shadow(self):
        built = build_network(
            [
                dict(name="first", trigger=["GO"], body=[],
                     guard=gt(var("x"), const(0))),
                dict(name="second", trigger=["GO"], body=[]),
            ],
            variables=[("x", 0)],
        )
        cfsm = built.cfsms["p"]
        # x is TOP-free but {0}: the guard is statically false, so
        # "first" never fires — SG202 on it, no SG201 on "second"...
        values = compute_value_sets(cfsm)
        assert shadowing_transition(cfsm, 1, values) is None
        found = codes(check_paths(built))
        assert "SG202" in found
        assert "SG201" not in found

    def test_statically_false_guard(self):
        built = build_network(
            [dict(name="t", trigger=["GO"], body=[],
                  guard=gt(var("x"), const(9)))],
            variables=[("x", 1)],
        )
        assert "SG202" in codes(check_paths(built))

    def test_constant_branch_noted(self):
        built = build_network(
            [dict(name="t", trigger=["GO"], body=[
                if_(gt(var("x"), const(0)), [emit("OUT", const(1))], []),
            ])],
            variables=[("x", 4)],
        )
        finding = [d for d in check_paths(built) if d.code == "SG203"]
        assert finding
        assert finding[0].data["taken"] is True
        assert finding[0].location.node == 1

    def test_unbounded_table_noted(self):
        built = build_network(
            [dict(name="t", trigger=["GO"], body=[
                loop(event_value("GO"), [
                    if_(gt(event_value("GO"), const(0)),
                        [emit("OUT", const(1))], []),
                ]),
            ])],
        )
        assert "SG204" in codes(check_paths(built))

    def test_blowup_noted(self):
        depth = 10  # 2^10 = 1024 > BLOWUP_THRESHOLD
        assert 2 ** depth > BLOWUP_THRESHOLD
        built = build_network(
            [dict(name="t", trigger=["GO"], body=[
                loop(const(depth), [
                    if_(gt(event_value("GO"), const(0)),
                        [emit("OUT", const(1))], []),
                ]),
            ])],
        )
        finding = [d for d in check_paths(built) if d.code == "SG205"]
        assert finding and finding[0].data["paths"] == 2 ** depth


class TestCacheabilityReport:
    def build(self):
        return build_network(
            [
                # Statically-false guard: never fires, and (being
                # guarded) does not shadow the transitions below.
                dict(name="dead", trigger=["GO"],
                     guard=gt(var("z"), const(9)),
                     body=[
                         if_(gt(event_value("GO"), const(5)),
                             [emit("OUT", const(2))], []),
                     ]),
                dict(name="plain", trigger=["GO"], body=[
                    emit("OUT", const(1)),
                ]),
                dict(name="branchy", trigger=["GO2"], body=[
                    if_(gt(event_value("GO2"), const(0)),
                        [emit("OUT", const(1))], []),
                ]),
            ],
            variables=[("z", 0)],
            inputs=("GO", "GO2"),
        )

    def test_rows_and_sizes(self):
        report = cacheability_report(self.build())
        assert report.row_for("p", "plain").path_count == 1
        assert report.row_for("p", "branchy").path_count == 2
        assert report.row_for("p", "dead").dead
        assert report.predicted_table_size("path") == 3
        assert report.predicted_table_size("transition") == 2

    def test_unknown_granularity_rejected(self):
        with pytest.raises(ValueError):
            cacheability_report(self.build()).predicted_table_size("bogus")

    def test_missing_row_rejected(self):
        with pytest.raises(KeyError):
            cacheability_report(self.build()).row_for("p", "absent")


class TestMacroCoverage:
    def build(self):
        return build_network(
            [dict(name="t", trigger=["GO"], body=[
                assign("x", event_value("GO")),
                if_(gt(var("x"), const(0)), [emit("OUT", var("x"))], []),
            ])],
            variables=[("x", 0)],
        )

    def test_static_ops_mirror_interpreter(self):
        transition = self.build().cfsms["p"].transitions[0]
        ops = static_macro_ops(transition)
        assert {MacroOpKind.AVV, MacroOpKind.ADETECT,
                MacroOpKind.TIVART, MacroOpKind.TIVARF,
                MacroOpKind.AEMIT} <= ops
        assert "GT" in ops  # the comparison itself is priced

    def test_full_table_is_clean(self):
        table = ParameterFile(
            {name: MacroCost() for name in all_macro_op_names()}
        )
        assert check_macro_coverage(self.build(), table) == []

    def test_missing_op_reported(self):
        names = set(all_macro_op_names()) - {MacroOpKind.ADETECT}
        table = ParameterFile({name: MacroCost() for name in names})
        findings = check_macro_coverage(self.build(), table)
        assert codes(findings) == {"MM401"}
        assert findings[0].data["op"] == MacroOpKind.ADETECT
        assert findings[0].data["transitions"] == ["t"]

    def test_hardware_processes_exempt(self):
        built = self.build()
        built.remap("p", Implementation.HW)
        assert check_macro_coverage(built, ParameterFile({})) == []

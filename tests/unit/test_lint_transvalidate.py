"""Translation validation (TV6xx): the optimizer registry is proven.

Two directions:

* every rule actually registered in
  :data:`repro.cfsm.optimize.REWRITE_RULES` is sound and exercised
  over the full vector budget, and
* a deliberately-unsound fixture rule — the historical
  ``SHR(x, 0) -> x`` identity, which breaks for negative operands
  because the interpreter wraps SHR operands to 32-bit unsigned — is
  caught as TV601 with a concrete counterexample, a dead rule as
  TV602, and a crashing rule as TV603.
"""

from repro.cfsm.expr import BinaryOp, Const, Var
from repro.cfsm.optimize import REWRITE_RULES, RewriteRule, rewrite_rule_names
from repro.lint.transvalidate import (
    Counterexample,
    check_rewrite_rules,
    validate_rule,
    validate_rules,
)
from repro.telemetry.metrics import MetricsRegistry


def _shr_zero_rule():
    """The bug class the validator exists for: SHR by zero is *not* the
    identity (SHR wraps its operand to unsigned 32-bit first)."""

    def rewrite(op, left, right):
        if op == "SHR" and isinstance(right, Const) and right.value == 0:
            return left
        return None

    return RewriteRule(
        name="shr-zero-right-unsound",
        category="identity",
        description="fixture: the unsound SHR(x, 0) -> x identity",
        rewrite=rewrite,
        templates=(BinaryOp("SHR", Var("a"), Const(0)),),
    )


def _dead_rule():
    return RewriteRule(
        name="never-fires",
        category="identity",
        description="fixture: rewrite that declines every template",
        rewrite=lambda op, left, right: None,
        templates=(BinaryOp("ADD", Var("a"), Const(0)),),
    )


def _crashing_rule():
    def rewrite(op, left, right):
        raise RuntimeError("boom")

    return RewriteRule(
        name="crashes",
        category="identity",
        description="fixture: rewrite that raises",
        rewrite=rewrite,
        templates=(BinaryOp("ADD", Var("a"), Const(0)),),
    )


class TestRegistryIsProven:
    def test_every_registered_rule_sound_and_exercised(self):
        report = validate_rules()
        assert len(report.results) == len(REWRITE_RULES)
        for result in report.results:
            assert result.sound, (
                "%s: %s" % (result.rule,
                            [c.render() for c in result.counterexamples]
                            + result.crashes)
            )
            assert result.exercised, "%s never fired" % result.rule
        assert report.all_sound
        assert report.all_exercised

    def test_vector_budget_is_substantial_and_deterministic(self):
        first = validate_rules()
        second = validate_rules()
        assert first.total_vectors == second.total_vectors
        # Exhaustive 8-bit sweeps + corners + random vectors over 13
        # rules: the budget must stay in the thousands, or the
        # exhaustive layer has silently stopped running.
        assert first.total_vectors >= 5000
        assert first.to_payload() == second.to_payload()

    def test_registry_yields_no_diagnostics(self):
        assert check_rewrite_rules() == []

    def test_rule_names_are_stable_and_unique(self):
        names = rewrite_rule_names()
        assert len(names) == len(set(names))
        assert [r.rule for r in validate_rules().results] == list(names)

    def test_payload_shape(self):
        payload = validate_rules().to_payload()
        assert payload["rules"] == len(REWRITE_RULES)
        assert payload["all_sound"] is True
        assert payload["all_exercised"] is True
        for entry in payload["results"]:
            assert entry["counterexamples"] == []
            assert entry["crashes"] == []
            assert entry["fired"] >= 1


class TestUnsoundFixtureIsCaught:
    def test_shr_zero_identity_refuted_with_negative_operand(self):
        validation = validate_rule(_shr_zero_rule())
        assert not validation.sound
        assert validation.fired == 1
        assert validation.counterexamples
        cex = validation.counterexamples[0]
        assert isinstance(cex, Counterexample)
        # Non-negative operands are fixed points of the 32-bit wrap, so
        # any refutation must come from a negative input.
        assert all(c.env["a"] < 0 for c in validation.counterexamples)
        assert cex.expected == cex.env["a"] % (1 << 32)
        assert cex.actual == cex.env["a"]
        assert "differs at" in cex.render()

    def test_shr_zero_identity_is_tv601(self):
        diagnostics = check_rewrite_rules([_shr_zero_rule()])
        assert [d.code for d in diagnostics] == ["TV601"]
        diagnostic = diagnostics[0]
        assert diagnostic.severity == "error"
        assert diagnostic.location.system == "optimizer"
        assert diagnostic.location.cfsm == "shr-zero-right-unsound"
        assert diagnostic.location.expr is not None
        assert diagnostic.data["counterexamples"]
        assert len(diagnostic.data["counterexamples"]) <= 3

    def test_unsound_rule_hides_nothing_in_a_mixed_registry(self):
        rules = list(REWRITE_RULES) + [_shr_zero_rule()]
        diagnostics = check_rewrite_rules(rules)
        assert [d.code for d in diagnostics] == ["TV601"]
        assert diagnostics[0].data["rule"] == "shr-zero-right-unsound"

    def test_dead_rule_is_tv602(self):
        diagnostics = check_rewrite_rules([_dead_rule()])
        assert [d.code for d in diagnostics] == ["TV602"]
        assert diagnostics[0].severity == "warning"

    def test_crashing_rule_is_tv603(self):
        diagnostics = check_rewrite_rules([_crashing_rule()])
        assert [d.code for d in diagnostics] == ["TV603"]
        assert "boom" not in diagnostics[0].message  # class name, not str
        assert "RuntimeError" in diagnostics[0].message


class TestTelemetry:
    def test_counters_incremented_per_code(self):
        registry = MetricsRegistry()
        check_rewrite_rules(
            [_shr_zero_rule(), _dead_rule(), _crashing_rule()],
            metrics=registry,
        )
        assert registry.counter("lint.rule.TV601").value == 1
        assert registry.counter("lint.rule.TV602").value == 1
        assert registry.counter("lint.rule.TV603").value == 1

    def test_clean_registry_touches_no_counters(self):
        registry = MetricsRegistry()
        check_rewrite_rules(metrics=registry)
        assert registry.counter("lint.rule.TV601").value == 0

"""Unit tests: the compiled gate-level simulator."""

import pytest

from hypothesis import given
from hypothesis import strategies as st

from repro.hw.logicsim import CompiledSimulator
from repro.hw.netlist import NetlistBuilder


def adder_netlist(width=4):
    builder = NetlistBuilder("adder")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_add(a, b)
    builder.output_bus("sum", total)
    builder.output_bus("carry", [carry])
    return builder.build()


class TestCombinational:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_adder_truth(self, a, b):
        simulator = CompiledSimulator(adder_netlist())
        simulator.step({"a": a, "b": b})
        assert simulator.peek("sum") == (a + b) & 0xF
        assert simulator.peek("carry") == (a + b) >> 4

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_subtractor_and_compare(self, a, b):
        builder = NetlistBuilder("sub")
        bus_a = builder.input_bus("a", 8)
        bus_b = builder.input_bus("b", 8)
        diff, no_borrow = builder.ripple_sub(bus_a, bus_b)
        builder.output_bus("diff", diff)
        builder.output_bus("ge", [no_borrow])
        builder.output_bus("eq", [builder.bus_eq(bus_a, bus_b)])
        simulator = CompiledSimulator(builder.build())
        simulator.step({"a": a, "b": b})
        assert simulator.peek("diff") == (a - b) & 0xFF
        assert simulator.peek("ge") == int(a >= b)
        assert simulator.peek("eq") == int(a == b)

    @given(st.integers(0, 255), st.integers(0, 7), st.booleans())
    def test_barrel_shifter(self, value, amount, left):
        builder = NetlistBuilder("shift")
        bus = builder.input_bus("v", 8)
        amt = builder.input_bus("n", 3)
        shifted = builder.barrel_shift(bus, amt, left=left)
        builder.output_bus("out", shifted)
        simulator = CompiledSimulator(builder.build())
        simulator.step({"v": value, "n": amount})
        expected = (value << amount) & 0xFF if left else value >> amount
        assert simulator.peek("out") == expected


class TestSequential:
    def counter_netlist(self, width=4):
        builder = NetlistBuilder("counter")
        enable = builder.input_bus("en", 1)[0]
        count_q = [builder.new_net("q%d" % i) for i in range(width)]
        plus_one, _ = builder.ripple_add(count_q, builder.const_bus(1, width))
        for index in range(width):
            d = builder.mux(enable, count_q[index], plus_one[index])
            builder.add_dff(d, count_q[index], 0)
        builder.output_bus("count", count_q)
        return builder.build()

    def test_counter_counts(self):
        # Inputs take effect at the *next* clock edge (standard
        # synchronous semantics), so the count lags the enable by one.
        simulator = CompiledSimulator(self.counter_netlist())
        simulator.step({"en": 1})  # enable seen; Q still at reset value
        for expected in range(10):
            assert simulator.peek("count") == expected & 0xF
            simulator.step({"en": 1})

    def test_counter_holds_when_disabled(self):
        simulator = CompiledSimulator(self.counter_netlist())
        simulator.step({"en": 1})
        simulator.step({"en": 1})
        simulator.step({"en": 0})  # last enabled increment lands here
        frozen = simulator.peek("count")
        simulator.step({"en": 0})
        simulator.step({"en": 0})
        assert simulator.peek("count") == frozen

    def test_reset_restores_initial_state(self):
        simulator = CompiledSimulator(self.counter_netlist())
        simulator.step({"en": 1})
        simulator.step({"en": 1})
        simulator.reset()
        assert simulator.peek("count") == 0
        assert simulator.cycle == 0
        assert simulator.total_energy == 0.0


class TestEnergyAccounting:
    def test_energy_positive_when_switching(self):
        simulator = CompiledSimulator(adder_netlist())
        idle = simulator.step({"a": 0, "b": 0})
        active = simulator.step({"a": 15, "b": 15})
        assert active > idle
        assert simulator.total_energy >= active

    def test_quiet_cycle_costs_only_clock(self):
        netlist = adder_netlist()
        simulator = CompiledSimulator(netlist)
        simulator.step({"a": 3, "b": 4})
        quiet = simulator.step({"a": 3, "b": 4})
        # No DFFs in the adder: a quiet cycle is free.
        assert quiet == 0.0

    def test_toggle_counting(self):
        simulator = CompiledSimulator(adder_netlist())
        simulator.step({"a": 0, "b": 0})
        before = simulator.total_toggles
        simulator.step({"a": 15, "b": 0})
        assert simulator.total_toggles > before

    def test_unknown_port_rejected(self):
        simulator = CompiledSimulator(adder_netlist())
        with pytest.raises(KeyError):
            simulator.step({"nope": 1})
        with pytest.raises(KeyError):
            simulator.peek("nope")


class TestDeterminism:
    def test_same_stimulus_same_energy(self):
        first = CompiledSimulator(adder_netlist())
        second = CompiledSimulator(adder_netlist())
        stimulus = [(3, 9), (15, 1), (0, 0), (7, 7)]
        energy_first = [first.step({"a": a, "b": b}) for a, b in stimulus]
        energy_second = [second.step({"a": a, "b": b}) for a, b in stimulus]
        assert energy_first == energy_second

"""Unit tests: macro-model characterization and the parameter file."""

import math

import pytest

from repro.cfsm.actions import MacroOpKind, all_macro_op_names
from repro.core.macromodel import (
    HW_MACRO_CYCLES,
    MacroCost,
    MacroModelCharacterizer,
    ParameterFile,
    characterize_hw,
)


@pytest.fixture(scope="module")
def parameter_file():
    return MacroModelCharacterizer().characterize()


class TestCharacterization:
    def test_covers_every_macro_op(self, parameter_file):
        for name in all_macro_op_names():
            assert name in parameter_file.costs, name

    def test_costs_non_negative(self, parameter_file):
        for name, cost in parameter_file.costs.items():
            assert cost.time_cycles >= 0, name
            assert cost.energy_j >= 0, name
            assert cost.size_bytes >= 0, name

    def test_expensive_ops_cost_more(self, parameter_file):
        """Costs are *marginal* (peeled): a multiply's marginal cost
        exceeds an add's, and divide exceeds multiply (12- vs 4-cycle
        units on the target)."""
        assert (parameter_file.cost("MUL").time_cycles
                > parameter_file.cost("ADD").time_cycles)
        assert (parameter_file.cost("DIV").time_cycles
                > parameter_file.cost("MUL").time_cycles)

    def test_emission_is_characterized(self, parameter_file):
        cost = parameter_file.cost(MacroOpKind.AEMIT)
        assert cost.time_cycles > 0
        assert cost.energy_j > 0

    def test_estimate_ops_sums_costs(self, parameter_file):
        ops = ["ADD", "AVV", "AEMIT"]
        cycles, energy = parameter_file.estimate_ops(ops)
        expected_cycles = sum(parameter_file.cost(op).time_cycles for op in ops)
        assert cycles == pytest.approx(expected_cycles)
        assert energy > 0

    def test_macromodel_reproduces_its_own_templates(self, parameter_file):
        """The peeled costs reconstruct the template measurements: the
        estimate of [ADD, AVV] equals the measured assign(a, b + c)."""
        characterizer = MacroModelCharacterizer()
        from repro.cfsm.expr import BinaryOp, Var
        from repro.cfsm.sgraph import assign

        ops, measured = characterizer._measure(
            characterizer._template_cfsm(
                [assign("a", BinaryOp("ADD", Var("b"), Var("c")))]
            )
        )
        cycles, energy = parameter_file.estimate_ops(ops)
        assert cycles == pytest.approx(measured.time_cycles, rel=0.01)
        assert energy == pytest.approx(measured.energy_j, rel=0.01)


class TestParameterFile:
    def test_serialize_has_paper_format(self, parameter_file):
        text = parameter_file.serialize()
        assert ".unit_time cycle" in text
        assert ".unit_energy nJ" in text
        assert ".time AVV" in text
        assert ".energy AEMIT" in text

    def test_round_trip(self, parameter_file):
        text = parameter_file.serialize()
        parsed = ParameterFile.parse(text)
        for name, cost in parameter_file.costs.items():
            assert parsed.cost(name).time_cycles == pytest.approx(
                cost.time_cycles, rel=1e-4
            )
            assert parsed.cost(name).energy_j == pytest.approx(
                cost.energy_j, rel=1e-4, abs=1e-15
            )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ParameterFile.parse("bogus line here")
        with pytest.raises(ValueError):
            ParameterFile.parse(".weird AVV 2")

    def test_unknown_op_costs_zero(self):
        empty = ParameterFile()
        cycles, energy = empty.estimate_ops(["NOPE"])
        assert cycles == 0
        assert energy == 0


class TestHwMacroModel:
    def test_cycle_table_covers_all_ops(self):
        for name in all_macro_op_names():
            assert name in HW_MACRO_CYCLES

    def test_characterize_hw_profile(self):
        from repro.cfsm.builder import CfsmBuilder
        from repro.cfsm.expr import add, const, var
        from repro.cfsm.sgraph import assign

        builder = CfsmBuilder("hwm", width=8)
        builder.input("GO", has_value=True)
        builder.var("a", 0)
        builder.transition("t", trigger=["GO"],
                           body=[assign("a", add(var("a"), const(1)))])
        profile = characterize_hw(builder.build())
        assert profile.energy_per_cycle_j > 0
        assert profile.clock_period_ns > 0

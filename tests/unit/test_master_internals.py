"""Unit tests: master internals, workloads, and report plumbing."""

import dataclasses

import pytest

from repro.cfsm.events import Event
from repro.master.master import (
    MasterConfig,
    SharedMemory,
    SimulationMaster,
    _contiguous_runs,
)
from repro.systems import producer_consumer, workloads


class TestContiguousRuns:
    def test_empty(self):
        assert _contiguous_runs([]) == []

    def test_single_run(self):
        runs = _contiguous_runs([(4, 10), (5, 11), (6, 12)])
        assert runs == [(4, [10, 11, 12])]

    def test_split_on_gap(self):
        runs = _contiguous_runs([(0, 1), (1, 2), (5, 3)])
        assert runs == [(0, [1, 2]), (5, [3])]

    def test_descending_addresses_split(self):
        runs = _contiguous_runs([(3, 1), (2, 2), (1, 3)])
        assert len(runs) == 3

    def test_repeated_address_splits(self):
        runs = _contiguous_runs([(7, 1), (7, 2)])
        assert runs == [(7, [1]), (7, [2])]


class TestSharedMemory:
    def test_read_write_and_counters(self):
        memory = SharedMemory()
        memory.write(5, 42)
        assert memory.read(5) == 42
        assert memory.read(99) == 0
        assert memory.writes == 1
        assert memory.reads == 2

    def test_load_is_not_counted(self):
        memory = SharedMemory()
        memory.load(10, [1, 2, 3])
        assert memory.words[11] == 2
        assert memory.reads == 0
        assert memory.writes == 0


class TestWorkloads:
    def test_periodic_spacing(self):
        events = workloads.periodic("T", 100.0, 5, start_ns=50.0)
        assert [event.time for event in events] == [50, 150, 250, 350, 450]

    def test_packet_arrivals_deterministic(self):
        first = workloads.packet_arrivals(5, 100.0, seed=1)
        second = workloads.packet_arrivals(5, 100.0, seed=1)
        assert [e.value for e in first] == [e.value for e in second]
        different = workloads.packet_arrivals(5, 100.0, seed=2)
        assert ([e.value for e in first] != [e.value for e in different])

    def test_packet_sizes_in_range(self):
        events = workloads.packet_arrivals(50, 10.0, size_range=(8, 16),
                                           seed=3)
        assert all(8 <= event.value <= 16 for event in events)

    def test_merge_sorts_by_time(self):
        merged = workloads.merge(
            [Event("A", time=30.0)],
            [Event("B", time=10.0), Event("C", time=20.0)],
        )
        assert [event.time for event in merged] == [10.0, 20.0, 30.0]

    def test_wheel_pulses_follow_profile(self):
        events = workloads.wheel_pulses(
            10_000.0, [(0.0, 1000.0), (0.5, 200.0)], seed=5
        )
        first_half = [e for e in events if e.time < 5000.0]
        second_half = [e for e in events if e.time >= 5000.0]
        assert len(second_half) > len(first_half)

    def test_fuel_samples_drain(self):
        events = workloads.fuel_samples(100_000.0, 1000.0, level_start=100,
                                        drain_per_sample=1, noise=0, seed=1)
        assert events[0].value > events[-1].value


class TestZeroDelayMode:
    def test_no_low_level_engines_built(self):
        network = producer_consumer.build_network(num_packets=1)
        config = MasterConfig(zero_delay=True, record_reactions=True)
        master = SimulationMaster(network, config=config)
        assert master.processes["producer"].iss is None
        assert master.processes["consumer"].hw is None

    def test_records_reactions_with_traces(self):
        network = producer_consumer.build_network(num_packets=1)
        config = MasterConfig(zero_delay=True, record_reactions=True)
        master = SimulationMaster(network, config=config)
        master.run([Event("START", time=10.0),
                    Event("TIMER_TICK", time=20.0)])
        assert master.reactions
        record = master.reactions[0]
        assert record.cfsm in network.cfsms
        assert record.trace.ops

    def test_zero_delay_attributes_no_energy(self):
        network = producer_consumer.build_network(num_packets=1)
        master = SimulationMaster(network,
                                  config=MasterConfig(zero_delay=True))
        master.run([Event("START", time=10.0)])
        assert master.total_energy() == 0.0


class TestConfigHandling:
    def test_config_replace_for_sweeps(self):
        base = MasterConfig()
        changed = dataclasses.replace(base, cpu_clock_period_ns=20.0)
        assert changed.cpu_clock_period_ns == 20.0
        assert base.cpu_clock_period_ns == 10.0
        # Mutable members are shared unless replaced — the explorer
        # always swaps bus_params wholesale, never mutates in place.
        assert changed.bus_params is base.bus_params

    def test_masters_are_single_use_but_isolated(self):
        bundle = producer_consumer.build_system(num_packets=1)
        first = SimulationMaster(bundle.network, config=bundle.config)
        second = SimulationMaster(bundle.network, config=bundle.config)
        first.run(bundle.stimuli())
        # The second master's state is untouched by the first's run.
        assert second.processes["producer"].state["pkts_left"] == 1
        assert second.total_energy() == 0.0

"""Unit tests: Monte-Carlo (statistical) hardware power estimation."""

import pytest

from repro.hw.netlist import NetlistBuilder
from repro.hw.power import monte_carlo_power, probabilistic_power


def adder_netlist(width=8):
    builder = NetlistBuilder("adder")
    a = builder.input_bus("a", width)
    b = builder.input_bus("b", width)
    total, carry = builder.ripple_add(a, b)
    builder.output_bus("sum", total)
    builder.output_bus("carry", [carry])
    return builder.build()


class TestMonteCarlo:
    def test_converges_on_simple_netlist(self):
        result = monte_carlo_power(adder_netlist(), 10e-9, seed=3)
        assert result.converged
        assert result.average_power_w > 0
        assert result.cycles >= 64
        assert result.relative_halfwidth <= 0.05 + 1e-9

    def test_deterministic_given_seed(self):
        first = monte_carlo_power(adder_netlist(), 10e-9, seed=7)
        second = monte_carlo_power(adder_netlist(), 10e-9, seed=7)
        assert first.average_power_w == second.average_power_w
        assert first.cycles == second.cycles

    def test_tighter_precision_needs_more_cycles(self):
        loose = monte_carlo_power(adder_netlist(), 10e-9,
                                  relative_precision=0.10, seed=5)
        tight = monte_carlo_power(adder_netlist(), 10e-9,
                                  relative_precision=0.02, seed=5)
        assert tight.cycles >= loose.cycles

    def test_agrees_with_probabilistic_within_factor(self):
        """Both estimators see the same netlist at p=0.5; the analytic
        estimate ignores spatial correlation so it may overshoot, but
        they must land within a small factor of each other."""
        netlist = adder_netlist()
        analytic = probabilistic_power(netlist, 10e-9)
        sampled = monte_carlo_power(netlist, 10e-9, seed=11,
                                    relative_precision=0.03)
        ratio = analytic / sampled.average_power_w
        assert 0.5 < ratio < 2.5, ratio

    def test_activity_scales_with_input_probability(self):
        quiet = monte_carlo_power(adder_netlist(), 10e-9,
                                  input_one_probability=0.05, seed=2,
                                  relative_precision=0.10)
        busy = monte_carlo_power(adder_netlist(), 10e-9,
                                 input_one_probability=0.5, seed=2,
                                 relative_precision=0.10)
        assert busy.average_power_w > quiet.average_power_w

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_power(adder_netlist(), 10e-9,
                              input_one_probability=1.5)
        with pytest.raises(ValueError):
            monte_carlo_power(adder_netlist(), 0.0)

    def test_max_cycles_cap(self):
        result = monte_carlo_power(
            adder_netlist(), 10e-9, relative_precision=1e-9,
            min_cycles=8, max_cycles=100, seed=1,
        )
        assert not result.converged
        assert result.cycles == 100

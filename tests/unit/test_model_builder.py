"""Unit tests: CFSM model, network, builder, and validation."""

import pytest

from repro.cfsm.builder import CfsmBuilder, NetworkBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import const, event_value, gt, var
from repro.cfsm.model import Implementation
from repro.cfsm.sgraph import assign, emit
from repro.cfsm.validate import NetworkValidationError, validate_network


def small_cfsm():
    builder = CfsmBuilder("proc")
    builder.input("GO", has_value=True)
    builder.output("DONE", has_value=True)
    builder.var("x", 0)
    builder.transition("t1", trigger=["GO"], body=[
        assign("x", event_value("GO")),
        emit("DONE", var("x")),
    ])
    return builder.build()


class TestCfsm:
    def test_enabled_transition_requires_trigger(self):
        cfsm = small_cfsm()
        buffer = cfsm.make_buffer()
        state = cfsm.initial_state()
        assert cfsm.enabled_transition(buffer, state) is None
        buffer.deliver(Event("GO", value=2, time=0.0))
        transition = cfsm.enabled_transition(buffer, state)
        assert transition is not None
        assert transition.name == "t1"

    def test_react_consumes_and_updates(self):
        cfsm = small_cfsm()
        buffer = cfsm.make_buffer()
        state = cfsm.initial_state()
        buffer.deliver(Event("GO", value=11, time=0.0))
        transition = cfsm.enabled_transition(buffer, state)
        trace = cfsm.react(transition, buffer, state)
        assert state["x"] == 11
        assert trace.emitted == [("DONE", 11)]
        assert not buffer.present("GO")

    def test_guard_blocks_transition(self):
        builder = CfsmBuilder("guarded")
        builder.input("GO", has_value=True)
        builder.var("count", 0)
        builder.transition(
            "t", trigger=["GO"], guard=gt(var("count"), const(0)), body=[]
        )
        cfsm = builder.build()
        buffer = cfsm.make_buffer()
        buffer.deliver(Event("GO", value=1, time=0.0))
        assert cfsm.enabled_transition(buffer, {"count": 0}) is None
        assert cfsm.enabled_transition(buffer, {"count": 1}) is not None

    def test_declaration_order_is_priority(self):
        builder = CfsmBuilder("prio")
        builder.input("A").input("B")
        builder.transition("first", trigger=["A"], body=[])
        builder.transition("second", trigger=["B"], body=[])
        cfsm = builder.build()
        buffer = cfsm.make_buffer()
        buffer.deliver(Event("A", time=0.0))
        buffer.deliver(Event("B", time=0.0))
        assert cfsm.enabled_transition(buffer, {}).name == "first"

    def test_transition_by_name(self):
        cfsm = small_cfsm()
        assert cfsm.transition_by_name("t1").name == "t1"
        with pytest.raises(KeyError):
            cfsm.transition_by_name("missing")

    def test_consumes_includes_value_reads(self):
        cfsm = small_cfsm()
        assert "GO" in cfsm.transitions[0].consumes


class TestNetwork:
    def build(self):
        net = NetworkBuilder("sys")
        a = net.cfsm("a", mapping=Implementation.SW)
        a.input("IN", has_value=True).output("MID", has_value=True)
        a.transition("t", trigger=["IN"], body=[emit("MID", event_value("IN"))])
        b = net.cfsm("b", mapping=Implementation.HW)
        b.input("MID", has_value=True).var("x", 0)
        b.transition("t", trigger=["MID"], body=[assign("x", event_value("MID"))])
        net.environment_input("IN")
        net.on_bus("MID")
        return net.build()

    def test_partition_queries(self):
        network = self.build()
        assert [c.name for c in network.software_cfsms()] == ["a"]
        assert [c.name for c in network.hardware_cfsms()] == ["b"]

    def test_consumers_and_producers(self):
        network = self.build()
        assert [c.name for c in network.consumers_of("MID")] == ["b"]
        assert [c.name for c in network.producers_of("MID")] == ["a"]

    def test_external_inputs(self):
        network = self.build()
        assert network.external_inputs() == {"IN"}

    def test_remap(self):
        network = self.build()
        network.remap("a", Implementation.HW)
        assert network.implementation("a") == Implementation.HW
        with pytest.raises(ValueError):
            network.remap("a", "fpga")

    def test_duplicate_name_rejected(self):
        net = NetworkBuilder("dup")
        net.cfsm("x", mapping=Implementation.SW)
        with pytest.raises(ValueError):
            net.cfsm("x", mapping=Implementation.SW)


class TestValidation:
    def test_undeclared_variable_flagged(self):
        builder = CfsmBuilder("bad")
        builder.input("GO")
        builder.transition("t", trigger=["GO"], body=[assign("ghost", const(1))])
        cfsm = builder.build()
        net = NetworkBuilder("n")
        wrapped = net.cfsm("ok", mapping=Implementation.SW)
        wrapped.input("GO")
        wrapped.transition("t", trigger=["GO"], body=[])
        network = net.build(validate=False)
        network.add(cfsm, Implementation.SW)
        issues = validate_network(network, strict=False)
        assert any("ghost" in issue for issue in issues)

    def test_dangling_input_flagged(self):
        net = NetworkBuilder("n")
        proc = net.cfsm("p", mapping=Implementation.SW)
        proc.input("NOWHERE")
        proc.transition("t", trigger=["NOWHERE"], body=[])
        with pytest.raises(NetworkValidationError) as info:
            net.build()
        assert "NOWHERE" in str(info.value)

    def test_emit_value_on_pure_event_flagged(self):
        builder = CfsmBuilder("bad")
        builder.input("GO")
        builder.output("PURE")  # no value
        builder.transition("t", trigger=["GO"], body=[emit("PURE", const(1))])
        cfsm = builder.build()
        from repro.cfsm.validate import validate_cfsm

        issues = validate_cfsm(cfsm)
        assert any("pure event" in issue for issue in issues)

    def test_undeclared_trigger_rejected_at_build(self):
        builder = CfsmBuilder("bad")
        with pytest.raises(ValueError):
            builder.transition("t", trigger=["MISSING"], body=[])

"""Unit tests: netlist construction and the gate library."""

import pytest

from repro.hw.library import Cell, GateLibrary
from repro.hw.netlist import CONST0, CONST1, NetlistBuilder, NetlistError


class TestGateLibrary:
    def test_default_cells_present(self):
        library = GateLibrary.default()
        for name in ("INV", "NAND2", "NOR2", "AND2", "OR2", "XOR2", "MUX2", "DFF"):
            assert name in library.cell_names()

    def test_cell_functions(self):
        library = GateLibrary.default()
        assert library.cell("INV").evaluate(0) == 1
        assert library.cell("NAND2").evaluate(1, 1) == 0
        assert library.cell("XOR2").evaluate(1, 0) == 1
        assert library.cell("MUX2").evaluate(0, 5, 9) == 5
        assert library.cell("MUX2").evaluate(1, 5, 9) == 9

    def test_switch_energy_scales_with_vdd(self):
        cell = GateLibrary.default().cell("INV")
        assert cell.switch_energy(3.3) > cell.switch_energy(1.8)

    def test_unknown_cell(self):
        with pytest.raises(KeyError):
            GateLibrary.default().cell("NAND9")


class TestConstantFolding:
    def test_and_with_constants(self):
        builder = NetlistBuilder("t")
        net = builder.input_bus("a", 1)[0]
        assert builder.and_(net, CONST0) == CONST0
        assert builder.and_(net, CONST1) == net
        assert builder.and_(net, net) == net

    def test_xor_with_constants(self):
        builder = NetlistBuilder("t")
        net = builder.input_bus("a", 1)[0]
        assert builder.xor_(net, CONST0) == net
        assert builder.xor_(net, net) == CONST0
        # XOR with 1 becomes an inverter gate.
        inverted = builder.xor_(net, CONST1)
        assert inverted not in (net, CONST0, CONST1)

    def test_not_of_constants(self):
        builder = NetlistBuilder("t")
        assert builder.not_(CONST0) == CONST1
        assert builder.not_(CONST1) == CONST0

    def test_mux_folding(self):
        builder = NetlistBuilder("t")
        a, b = builder.input_bus("ab", 2)
        assert builder.mux(CONST0, a, b) == a
        assert builder.mux(CONST1, a, b) == b
        assert builder.mux(a, b, b) == b


class TestTreesAndBuses:
    def test_or_tree_empty_and_single(self):
        builder = NetlistBuilder("t")
        assert builder.or_tree([]) == CONST0
        net = builder.input_bus("a", 1)[0]
        assert builder.or_tree([net]) == net

    def test_and_tree_empty(self):
        builder = NetlistBuilder("t")
        assert builder.and_tree([]) == CONST1

    def test_const_bus_encoding(self):
        builder = NetlistBuilder("t")
        bus = builder.const_bus(0b1010, 4)
        assert bus == [CONST0, CONST1, CONST0, CONST1]

    def test_adder_width_mismatch(self):
        builder = NetlistBuilder("t")
        a = builder.input_bus("a", 4)
        b = builder.input_bus("b", 3)
        with pytest.raises(NetlistError):
            builder.ripple_add(a, b)

    def test_duplicate_ports_rejected(self):
        builder = NetlistBuilder("t")
        builder.input_bus("a", 1)
        with pytest.raises(NetlistError):
            builder.input_bus("a", 1)


class TestStructuralChecks:
    def test_check_catches_undefined_reads(self):
        builder = NetlistBuilder("t")
        bad_net = 500  # never defined
        builder.netlist.num_nets = 501
        builder.gate("INV", bad_net)
        with pytest.raises(NetlistError):
            builder.build()

    def test_stats(self):
        builder = NetlistBuilder("t")
        a, b = builder.input_bus("ab", 2)
        out = builder.and_(a, b)
        builder.dff(out)
        builder.output_bus("q", [out])
        netlist = builder.build()
        stats = netlist.stats()
        assert stats["AND2"] == 1
        assert stats["DFF"] == 1
        assert stats["total"] == 2

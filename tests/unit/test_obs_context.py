"""Request-context propagation and the contextvar event sink."""

import os
import pickle
import threading

from repro.obs.context import (
    RequestContext,
    child_context,
    current_context,
    emit_event,
    new_span_id,
    new_trace_id,
    use_context,
    use_event_sink,
)


class TestIds:
    def test_trace_ids_unique_and_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 32
            int(trace_id, 16)  # hex or raise

    def test_span_ids_carry_the_pid(self):
        span_id = new_span_id()
        pid_part, _, counter_part = span_id.partition("-")
        assert int(pid_part, 16) == os.getpid()
        assert int(counter_part, 16) > 0

    def test_span_ids_unique_within_a_process(self):
        ids = {new_span_id() for _ in range(256)}
        assert len(ids) == 256


class TestRequestContext:
    def test_new_roots_a_trace(self):
        context = RequestContext.new("req-1")
        assert context.request_id == "req-1"
        assert context.parent_span_id == ""
        assert context.trace_id and context.span_id

    def test_child_keeps_trace_and_links_parent(self):
        root = RequestContext.new("req-1")
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        assert child.request_id == "req-1"

    def test_payload_round_trip(self):
        root = RequestContext.new("req-2").child()
        restored = RequestContext.from_payload(root.to_payload())
        assert restored == root

    def test_payload_is_picklable(self):
        payload = RequestContext.new("req-3").to_payload()
        assert pickle.loads(pickle.dumps(payload)) == payload

    def test_trace_args_omit_empty_fields(self):
        root = RequestContext(trace_id="t", span_id="s")
        assert root.trace_args() == {"trace_id": "t", "span_id": "s"}
        linked = RequestContext(trace_id="t", span_id="s",
                                parent_span_id="p", request_id="r")
        assert linked.trace_args()["parent_span_id"] == "p"
        assert linked.trace_args()["request_id"] == "r"


class TestPropagation:
    def test_bind_and_restore(self):
        assert current_context() is None
        context = RequestContext.new()
        with use_context(context):
            assert current_context() is context
            with use_context(None):
                assert current_context() is None
            assert current_context() is context
        assert current_context() is None

    def test_child_context_requires_a_binding(self):
        assert child_context() is None
        root = RequestContext.new()
        with use_context(root):
            child = child_context()
        assert child is not None
        assert child.parent_span_id == root.span_id

    def test_threads_do_not_inherit_by_default(self):
        seen = []
        with use_context(RequestContext.new()):
            thread = threading.Thread(
                target=lambda: seen.append(current_context())
            )
            thread.start()
            thread.join()
        assert seen == [None]


class TestEventSink:
    def test_emit_is_a_noop_without_a_sink(self):
        emit_event("anything", detail=1)  # must not raise

    def test_emit_reaches_the_bound_sink(self):
        events = []
        with use_event_sink(lambda name, fields: events.append((name, fields))):
            emit_event("estimator.fallback", level="cached")
        assert events == [("estimator.fallback", {"level": "cached"})]

    def test_emit_merges_trace_fields(self):
        events = []
        context = RequestContext.new("req-9")
        with use_context(context), use_event_sink(
            lambda name, fields: events.append(fields)
        ):
            emit_event("x", trace_id="explicit-wins")
        (fields,) = events
        assert fields["trace_id"] == "explicit-wins"
        assert fields["span_id"] == context.span_id
        assert fields["request_id"] == "req-9"

    def test_sink_unbinds_on_exit(self):
        events = []
        with use_event_sink(lambda name, fields: events.append(name)):
            pass
        emit_event("after")
        assert events == []

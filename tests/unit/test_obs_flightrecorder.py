"""Flight recorder: ring bounds, trace correlation, atomic dumps."""

import json
import os

import pytest

from repro.obs.context import RequestContext, use_context
from repro.obs.flightrecorder import DUMP_PREFIX, FlightRecorder


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_keep_order_and_fields(self):
        recorder = FlightRecorder(capacity=8, clock=lambda: 42.0)
        recorder.record("request.admitted", system="fig1")
        recorder.record("request.completed", status=200)
        events = recorder.events()
        assert [event["event"] for event in events] == [
            "request.admitted", "request.completed",
        ]
        assert events[0]["system"] == "fig1"
        assert events[0]["ts"] == 42.0
        assert events[0]["seq"] == 1
        assert events[1]["seq"] == 2

    def test_ring_drops_oldest_and_counts(self):
        recorder = FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("e%d" % index)
        events = recorder.events()
        assert [event["event"] for event in events] == ["e2", "e3", "e4"]
        assert recorder.recorded == 5
        assert recorder.dropped == 2

    def test_bound_context_correlates_events(self):
        recorder = FlightRecorder()
        context = RequestContext.new("req-7")
        with use_context(context):
            recorder.record("request.failed", error="boom")
        (event,) = recorder.events()
        assert event["trace_id"] == context.trace_id
        assert event["request_id"] == "req-7"
        assert event["error"] == "boom"

    def test_snapshot_counts(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record("a")
        snapshot = recorder.snapshot()
        assert snapshot["capacity"] == 2
        assert snapshot["recorded"] == 1
        assert snapshot["dropped"] == 0
        assert snapshot["dumps"] == 0
        assert len(snapshot["events"]) == 1


class TestDump:
    def test_dump_writes_self_describing_json(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        recorder.record("request.deadline_expired", detail="queue")
        path = recorder.dump(str(tmp_path), "504", keep=8)
        assert os.path.basename(path) == DUMP_PREFIX + "504-000001.json"
        with open(path) as handle:
            document = json.load(handle)
        assert document["reason"] == "504"
        assert document["recorded"] == 1
        assert document["events"][0]["event"] == "request.deadline_expired"
        assert recorder.dumps == 1

    def test_reason_is_sanitized_in_filename(self, tmp_path):
        recorder = FlightRecorder()
        path = recorder.dump(str(tmp_path), "bad/../reason !", keep=8)
        name = os.path.basename(path)
        assert name == DUMP_PREFIX + "bad____reason__-000001.json"

    def test_keep_prunes_oldest_dumps(self, tmp_path):
        recorder = FlightRecorder()
        for _ in range(5):
            recorder.dump(str(tmp_path), "drain", keep=2)
        names = sorted(
            name for name in os.listdir(str(tmp_path))
            if name.startswith(DUMP_PREFIX)
        )
        assert names == [
            DUMP_PREFIX + "drain-000004.json",
            DUMP_PREFIX + "drain-000005.json",
        ]

    def test_dump_creates_directory(self, tmp_path):
        target = os.path.join(str(tmp_path), "dumps", "nested")
        recorder = FlightRecorder()
        path = recorder.dump(target, "drain")
        assert os.path.exists(path)

"""Structured JSON logging: line shape and trace correlation."""

import io
import json

from repro.obs.context import RequestContext, use_context
from repro.obs.logging import NULL_LOGGER, JsonLogger, NullLogger


def logged_lines(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream, clock=lambda: 1000.0)
        logger.event("request.admitted", system="fig1", depth=1)
        logger.event("request.completed", status=200)
        first, second = logged_lines(stream)
        assert first["event"] == "request.admitted"
        assert first["system"] == "fig1"
        assert first["depth"] == 1
        assert first["ts"] == 1000.0
        assert first["component"] == "service"
        assert second["status"] == 200

    def test_trace_fields_from_bound_context(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        context = RequestContext.new("req-5")
        with use_context(context):
            logger.event("request.dispatched")
        (record,) = logged_lines(stream)
        assert record["trace_id"] == context.trace_id
        assert record["span_id"] == context.span_id
        assert record["request_id"] == "req-5"

    def test_unbound_events_carry_empty_trace_id(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.event("drain.step", step="requested")
        (record,) = logged_lines(stream)
        assert record["trace_id"] == ""

    def test_explicit_fields_beat_context(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        with use_context(RequestContext.new("ctx")):
            logger.event("x", request_id="explicit")
        (record,) = logged_lines(stream)
        assert record["request_id"] == "explicit"

    def test_non_serializable_fields_stringified(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        logger.event("x", error=ValueError("boom"))
        (record,) = logged_lines(stream)
        assert record["error"] == "boom"

    def test_enabled_flag(self):
        assert JsonLogger(stream=io.StringIO()).enabled is True
        assert NullLogger().enabled is False


class TestNullLogger:
    def test_event_is_a_noop(self):
        NULL_LOGGER.event("anything", detail=1)  # must not raise or write

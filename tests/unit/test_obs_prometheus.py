"""Prometheus exposition: label encoding, rendering, validation."""

import pytest

from repro.obs.prometheus import (
    labeled,
    parse_labeled,
    prometheus_name,
    render_prometheus,
    validate_exposition,
)
from repro.telemetry.metrics import MetricsRegistry


class TestLabeled:
    def test_no_labels_is_identity(self):
        assert labeled("service.queue_depth") == "service.queue_depth"

    def test_canonical_ordering(self):
        a = labeled("m", provenance="exact", system="fig1")
        b = labeled("m", system="fig1", provenance="exact")
        assert a == b == 'm{provenance="exact",system="fig1"}'

    def test_values_are_escaped(self):
        encoded = labeled("m", path='a"b\\c\nd')
        base, labels = parse_labeled(encoded)
        assert base == "m"
        assert labels == {"path": 'a"b\\c\nd'}

    def test_round_trip(self):
        encoded = labeled("service.breaker_state", site="iss", state="open")
        assert parse_labeled(encoded) == (
            "service.breaker_state",
            {"site": "iss", "state": "open"},
        )

    def test_double_labeling_rejected(self):
        with pytest.raises(ValueError):
            labeled(labeled("m", a="1"), b="2")

    def test_malformed_name_rejected(self):
        with pytest.raises(ValueError):
            parse_labeled('m{a="1"')


class TestPrometheusName:
    def test_dots_become_underscores_with_prefix(self):
        assert prometheus_name("service.queue_depth") == "repro_service_queue_depth"

    def test_leading_digit_guarded(self):
        assert prometheus_name("9lives") == "repro__9lives"

    def test_hostile_chars_sanitized(self):
        name = prometheus_name("a-b c/d")
        assert name == "repro_a_b_c_d"


class TestRender:
    def test_counter_gets_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("http.requests").inc(3)
        text = render_prometheus(registry)
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_http_requests_total 3" in text
        assert validate_exposition(text) == []

    def test_labeled_counter_rows(self):
        registry = MetricsRegistry()
        registry.counter(
            labeled("service.energy_answers", provenance="exact", system="fig1")
        ).inc(5)
        registry.counter(
            labeled("service.energy_answers", provenance="cached", system="fig1")
        ).inc(2)
        text = render_prometheus(registry)
        assert (
            'repro_service_energy_answers_total'
            '{provenance="cached",system="fig1"} 2' in text
        )
        assert (
            'repro_service_energy_answers_total'
            '{provenance="exact",system="fig1"} 5' in text
        )
        # One family header, two sample rows.
        assert text.count("# TYPE repro_service_energy_answers_total") == 1
        assert validate_exposition(text) == []

    def test_gauge_renders_plain(self):
        registry = MetricsRegistry()
        registry.gauge("service.queue_depth").set(4)
        text = render_prometheus(registry)
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "repro_service_queue_depth 4" in text

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("run.seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)  # overflow
        text = render_prometheus(registry)
        assert 'repro_run_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_run_seconds_bucket{le="1"} 2' in text
        assert 'repro_run_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_run_seconds_count 3" in text
        assert "repro_run_seconds_sum 5.55" in text
        assert validate_exposition(text) == []

    def test_help_text_is_used(self):
        registry = MetricsRegistry()
        registry.counter("http.requests").inc()
        text = render_prometheus(
            registry, {"http.requests": "HTTP requests by path/status."}
        )
        assert (
            "# HELP repro_http_requests_total HTTP requests by path/status."
            in text
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestValidateExposition:
    def test_flags_sample_without_type(self):
        errors = validate_exposition("repro_x_total 1\n")
        assert any("without a # TYPE" in error for error in errors)

    def test_flags_counter_without_total_suffix(self):
        text = "# TYPE repro_x counter\nrepro_x 1\n"
        errors = validate_exposition(text)
        assert any("_total suffix" in error for error in errors)

    def test_flags_malformed_sample(self):
        text = "# TYPE repro_x gauge\nrepro_x one\n"
        errors = validate_exposition(text)
        assert any("malformed sample" in error for error in errors)

    def test_flags_incomplete_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 1\n'
            "repro_h_count 1\n"
        )
        errors = validate_exposition(text)
        assert any("lacks _sum" in error for error in errors)

    def test_accepts_special_values_and_timestamps(self):
        text = (
            "# TYPE repro_g gauge\n"
            "repro_g +Inf\n"
            "repro_g NaN 1700000000\n"
        )
        assert validate_exposition(text) == []

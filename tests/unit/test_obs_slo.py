"""SLO burn-rate math over a controllable clock."""

import pytest

from repro.obs.names import METRIC_SLO_ERROR_BURN, METRIC_SLO_LATENCY_BURN
from repro.obs.slo import SLOConfig, SLOTracker
from repro.telemetry.metrics import MetricsRegistry


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_tracker(**overrides):
    clock = FakeClock()
    defaults = dict(
        latency_threshold_s=1.0,
        latency_objective=0.9,       # 10% latency budget
        availability_objective=0.95,  # 5% error budget
        window_s=100.0,
    )
    defaults.update(overrides)
    return SLOTracker(SLOConfig(**defaults), clock=clock), clock


class TestConfig:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("latency_threshold_s", 0.0),
            ("latency_objective", 1.0),
            ("latency_objective", 0.0),
            ("availability_objective", 1.5),
            ("window_s", -1.0),
            ("max_samples", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            SLOConfig(**{field: value})


class TestBurnRates:
    def test_idle_window_burns_nothing(self):
        tracker, _ = make_tracker()
        assert tracker.burn_rates() == (0.0, 0.0)

    def test_all_good_requests_burn_nothing(self):
        tracker, _ = make_tracker()
        for _ in range(10):
            tracker.record(200, 0.1)
        assert tracker.burn_rates() == (0.0, 0.0)

    def test_latency_burn_is_bad_fraction_over_budget(self):
        tracker, _ = make_tracker()
        # 2 slow of 10 = 20% bad over a 10% budget -> burn 2.0.
        for _ in range(8):
            tracker.record(200, 0.1)
        for _ in range(2):
            tracker.record(200, 5.0)
        latency_burn, error_burn = tracker.burn_rates()
        assert latency_burn == pytest.approx(2.0)
        assert error_burn == 0.0

    def test_error_burn_counts_only_5xx(self):
        tracker, _ = make_tracker()
        # 1 error of 20 = 5% bad over a 5% budget -> burn 1.0.
        for _ in range(18):
            tracker.record(200, 0.1)
        tracker.record(404, 0.1)  # client error: not our budget
        tracker.record(500, 0.1)
        latency_burn, error_burn = tracker.burn_rates()
        assert latency_burn == 0.0
        assert error_burn == pytest.approx(1.0)

    def test_latency_exactly_at_threshold_is_good(self):
        tracker, _ = make_tracker()
        tracker.record(200, 1.0)
        assert tracker.burn_rates() == (0.0, 0.0)

    def test_window_pruning_forgets_old_badness(self):
        tracker, clock = make_tracker(window_s=100.0)
        tracker.record(500, 9.0)
        assert tracker.burn_rates()[1] > 0
        clock.advance(101.0)
        assert tracker.burn_rates() == (0.0, 0.0)
        # A new good request after the bad one aged out: still clean.
        tracker.record(200, 0.1)
        assert tracker.burn_rates() == (0.0, 0.0)

    def test_max_samples_bounds_memory(self):
        tracker, _ = make_tracker(max_samples=4)
        for _ in range(10):
            tracker.record(500, 0.1)
        assert len(tracker._samples) == 4
        assert tracker.total_recorded == 10


class TestSnapshotAndPublish:
    def test_snapshot_shape(self):
        tracker, _ = make_tracker()
        tracker.record(200, 0.1)
        tracker.record(504, 9.0)
        snapshot = tracker.snapshot()
        assert snapshot["window_requests"] == 2.0
        assert snapshot["window_slow"] == 1.0
        assert snapshot["window_errors"] == 1.0
        assert snapshot["latency_burn_rate"] == pytest.approx(5.0)
        assert snapshot["error_burn_rate"] == pytest.approx(10.0)
        assert snapshot["total_recorded"] == 2.0
        assert snapshot["window_s"] == 100.0

    def test_publish_sets_gauges(self):
        tracker, _ = make_tracker()
        tracker.record(500, 9.0)
        metrics = MetricsRegistry()
        tracker.publish(metrics)
        flat = metrics.flat()
        assert flat[METRIC_SLO_LATENCY_BURN] == pytest.approx(10.0)
        assert flat[METRIC_SLO_ERROR_BURN] == pytest.approx(20.0)

"""Unit tests for the process-pool execution engine."""

import os
import time

import pytest

from repro.parallel import (
    JobError,
    JobResult,
    JobSpec,
    PoolStats,
    job_seed,
    merge_metrics_snapshots,
    merged_chrome_trace_events,
    resolve_callable,
    run_jobs,
)


# -- worker entry points (module-level so they pickle by reference) ----------

def _add(a, b):
    return a + b


def _rng():
    import random

    return random.random()


def _boom():
    raise RuntimeError("intentional job failure")


def _crash_once(marker):
    """Hard-kill the worker on the first attempt, succeed on the second."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(13)
    return "recovered"


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _fail_once(marker):
    """Raise (a clean exception, not a crash) on the first attempt."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise RuntimeError("first attempt fails")
    return "ok"


# -- jobs --------------------------------------------------------------------

class TestJobPrimitives:
    def test_resolve_callable_passthrough(self):
        assert resolve_callable(_add) is _add

    def test_resolve_callable_by_name(self):
        fn = resolve_callable("os.path:join")
        assert fn("a", "b") == os.path.join("a", "b")

    def test_resolve_callable_rejects_garbage(self):
        with pytest.raises(JobError):
            resolve_callable("no-colon-here")
        with pytest.raises(JobError):
            resolve_callable("not_a_module_xyz:fn")
        with pytest.raises(JobError):
            resolve_callable("os.path:no_such_attr")

    def test_job_seed_is_stable_and_label_dependent(self):
        assert job_seed(7, "a") == job_seed(7, "a")
        assert job_seed(7, "a") != job_seed(7, "b")
        assert job_seed(7, "a") != job_seed(8, "a")
        assert 0 <= job_seed(123456789, "x") <= 0x7FFFFFFF


# -- inline (jobs=1) ---------------------------------------------------------

class TestInline:
    def test_values_in_spec_order(self):
        specs = [JobSpec(fn=_add, payload={"a": i, "b": 1}, label="j%d" % i)
                 for i in range(5)]
        results = run_jobs(specs, jobs=1)
        assert [r.value for r in results] == [1, 2, 3, 4, 5]
        assert all(r.ok for r in results)
        assert all(r.worker_pid == os.getpid() for r in results)

    def test_failure_is_reported_not_raised(self):
        results = run_jobs([JobSpec(fn=_boom, label="bad", max_retries=0)])
        assert not results[0].ok
        assert "intentional job failure" in results[0].error

    def test_inline_retry(self, tmp_path):
        marker = str(tmp_path / "fail_once")
        stats = PoolStats()
        results = run_jobs(
            [JobSpec(fn=_fail_once, payload={"marker": marker},
                     label="flaky", max_retries=1)],
            stats=stats,
        )
        assert results[0].value == "ok"
        assert results[0].attempts == 2
        assert stats.retries == 1


# -- pooled (jobs>1) ---------------------------------------------------------

class TestPool:
    def test_values_in_spec_order_across_workers(self):
        specs = [JobSpec(fn=_add, payload={"a": i, "b": 10}, label="j%d" % i)
                 for i in range(8)]
        stats = PoolStats()
        results = run_jobs(specs, jobs=3, stats=stats)
        assert [r.value for r in results] == [10 + i for i in range(8)]
        assert stats.completed == 8
        assert stats.workers == 3
        assert len({r.worker_pid for r in results}) > 1

    def test_seeded_rng_independent_of_jobs(self):
        specs = [JobSpec(fn=_rng, label="r%d" % i, seed=job_seed(42, "r%d" % i))
                 for i in range(4)]
        sequential = [r.value for r in run_jobs(specs, jobs=1)]
        pooled = [r.value for r in run_jobs(specs, jobs=4)]
        assert sequential == pooled

    def test_worker_crash_is_retried_on_fresh_worker(self, tmp_path):
        marker = str(tmp_path / "crash_marker")
        stats = PoolStats()
        specs = [JobSpec(fn=_crash_once, payload={"marker": marker},
                         label="crashy", max_retries=2)]
        specs += [JobSpec(fn=_add, payload={"a": i, "b": 0}, label="n%d" % i)
                  for i in range(3)]
        results = run_jobs(specs, jobs=2, stats=stats)
        assert results[0].value == "recovered"
        assert results[0].attempts == 2
        assert stats.crashes == 1
        assert [r.value for r in results[1:]] == [0, 1, 2]

    def test_timeout_kills_and_fails_after_retries(self):
        stats = PoolStats()
        specs = [
            JobSpec(fn=_sleep, payload={"seconds": 30.0}, label="stuck",
                    timeout_s=0.3, max_retries=1),
            JobSpec(fn=_add, payload={"a": 1, "b": 1}, label="fine"),
        ]
        started = time.perf_counter()
        results = run_jobs(specs, jobs=2, stats=stats)
        wall = time.perf_counter() - started
        assert not results[0].ok
        assert "timeout" in results[0].error
        assert results[0].attempts == 2
        assert results[1].value == 2
        assert stats.timeouts == 2  # initial attempt + retry
        assert wall < 10.0  # nowhere near the 30s sleep

    def test_job_exception_does_not_kill_worker(self):
        stats = PoolStats()
        specs = [JobSpec(fn=_boom, label="bad", max_retries=0)]
        specs += [JobSpec(fn=_add, payload={"a": i, "b": 0}, label="n%d" % i)
                  for i in range(4)]
        results = run_jobs(specs, jobs=2, stats=stats)
        assert not results[0].ok
        assert [r.value for r in results[1:]] == [0, 1, 2, 3]
        assert stats.crashes == 0

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_jobs([], jobs=0)


# -- telemetry merge ---------------------------------------------------------

class TestMerge:
    def test_merge_metrics_counters_add_gauges_max(self):
        a = {"counters": {"x": 2.0}, "gauges": {"depth": 3.0},
             "histograms": {}}
        b = {"counters": {"x": 5.0, "y": 1.0}, "gauges": {"depth": 7.0},
             "histograms": {}}
        merged = merge_metrics_snapshots([a, None, b])
        assert merged["counters"] == {"x": 7.0, "y": 1.0}
        assert merged["gauges"] == {"depth": 7.0}

    def test_merge_histogram_summaries(self):
        h1 = {"count": 2.0, "sum": 2.0, "mean": 1.0, "min": 0.5, "max": 1.5,
              "p50": 1.0, "p90": 1.4, "p99": 1.5}
        h2 = {"count": 2.0, "sum": 6.0, "mean": 3.0, "min": 2.0, "max": 4.0,
              "p50": 3.0, "p90": 3.8, "p99": 4.0}
        merged = merge_metrics_snapshots(
            [{"counters": {}, "gauges": {}, "histograms": {"t": h1}},
             {"counters": {}, "gauges": {}, "histograms": {"t": h2}}]
        )
        t = merged["histograms"]["t"]
        assert t["count"] == 4.0
        assert t["sum"] == 8.0
        assert t["mean"] == 2.0
        assert t["min"] == 0.5 and t["max"] == 4.0
        assert t["p50"] == 2.0  # count-weighted average
        assert t["approximate"] is True

    def test_merged_trace_groups_by_worker_pid(self):
        spans = [("run", "main", 0, 100, 0, {})]
        results = [
            JobResult(label="a", index=0, worker_pid=111, spans=spans,
                      started_offset_s=0.0),
            JobResult(label="b", index=1, worker_pid=222, spans=spans,
                      started_offset_s=0.5),
            JobResult(label="c", index=2, worker_pid=111, spans=None),
        ]
        events = merged_chrome_trace_events(results)
        pids = {e["pid"] for e in events}
        assert pids == {111, 222}
        names = [e for e in events if e["ph"] == "M"
                 and e["name"] == "process_name"]
        assert {e["args"]["name"] for e in names} == {"worker 111",
                                                      "worker 222"}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 2
        # Span timestamps are shifted by the job's start offset.
        by_pid = {e["pid"]: e for e in slices}
        assert by_pid[111]["ts"] == 0
        assert by_pid[222]["ts"] == 500000
        assert by_pid[222]["args"]["job"] == "b"

    def test_merged_span_ids_namespaced_per_worker(self):
        # Workers share seeded RNG state, so two jobs can mint the SAME
        # span ids; the merge must keep their trees from aliasing.
        spans = [
            ("parent", "main", 0, 100, 0, {"span_id": "12ab"}),
            ("child", "main", 10, 50, 1,
             {"span_id": "99ff", "parent_span_id": "12ab"}),
        ]
        results = [
            JobResult(label="a", index=0, worker_pid=111, spans=spans,
                      started_offset_s=0.0),
            JobResult(label="b", index=1, worker_pid=222, spans=spans,
                      started_offset_s=0.0),
        ]
        slices = [e for e in merged_chrome_trace_events(results)
                  if e["ph"] == "X"]
        ids = {e["args"]["span_id"] for e in slices}
        assert ids == {"w111/12ab", "w111/99ff", "w222/12ab", "w222/99ff"}
        # Parent links stay inside the owning worker's namespace.
        children = [e for e in slices if e["name"] == "child"]
        for event in children:
            assert event["args"]["parent_span_id"].startswith(
                "w%d/" % event["pid"]
            )

    def test_merged_obs_span_ids_pass_through(self):
        # Ids minted by repro.obs.context already carry the producing
        # process's pid (<pid-hex>-<counter-hex>): globally unique, and
        # parent links may legitimately cross processes (service thread
        # -> pool worker).  Those must survive the merge untouched.
        spans = [
            ("run", "main", 0, 100, 0,
             {"span_id": "1a2b-3", "parent_span_id": "ffee-1"}),
        ]
        results = [
            JobResult(label="a", index=0, worker_pid=111, spans=spans,
                      started_offset_s=0.0),
        ]
        (event,) = [e for e in merged_chrome_trace_events(results)
                    if e["ph"] == "X"]
        assert event["args"]["span_id"] == "1a2b-3"
        assert event["args"]["parent_span_id"] == "ffee-1"

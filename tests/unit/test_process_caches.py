"""Unit tests for the process-wide hot-path caches.

Five caches accelerate repeated co-estimation: compiled-simulator,
synthesis, codegen, ISS decode, and the exact-state hardware run memo.
Each keeps ``Stats`` hit/miss accounting and (when telemetry is on)
mirrors it into the metrics registry.  Caching must never change a
single reported number — warm runs replay losslessly.
"""

import dataclasses

from repro.core import PowerCoEstimator
from repro.core.caching import WarmStartCache
from repro.hw.estimator import HW_RUN_MEMO_STATS, clear_hw_run_memo
from repro.hw.logicsim import COMPILE_CACHE_STATS, clear_compile_cache
from repro.hw.synth import SYNTH_CACHE_STATS, clear_synth_cache
from repro.sw.codegen import CODEGEN_CACHE_STATS, clear_codegen_cache
from repro.sw.iss import DECODE_CACHE_STATS, clear_decode_cache
from repro.systems import tcpip
from repro.telemetry import Telemetry

ALL_STATS = {
    "compile": COMPILE_CACHE_STATS,
    "synth": SYNTH_CACHE_STATS,
    "codegen": CODEGEN_CACHE_STATS,
    "iss_decode": DECODE_CACHE_STATS,
    "hw_run_memo": HW_RUN_MEMO_STATS,
}

#: Metrics-registry counters each cache maintains when telemetry is on.
COUNTER_NAMES = {
    "compile": "hw.compile_cache",
    "iss_decode": "iss.decode_cache",
    "hw_run_memo": "hw.run_memo",
}


def _clear_all():
    clear_compile_cache()
    clear_synth_cache()
    clear_codegen_cache()
    clear_decode_cache()
    clear_hw_run_memo()


def _run(telemetry=None):
    bundle = tcpip.build_system(
        dma_block_words=8, num_packets=1, packet_period_ns=30_000.0
    )
    estimator = PowerCoEstimator(bundle.network, bundle.config)
    result = estimator.estimate(
        bundle.stimuli(), strategy="caching", telemetry=telemetry
    )
    return result.report


def _canonical(report):
    """Report as a dict, wall-clock fields (nondeterministic) dropped."""
    payload = dataclasses.asdict(report)
    return {
        key: value
        for key, value in payload.items()
        if not key.endswith("_seconds")
    }


class TestColdWarm:
    def test_warm_run_hits_every_cache_and_replays_exactly(self):
        _clear_all()
        cold_report = _run()
        cold = {name: s.snapshot() for name, s in ALL_STATS.items()}
        for name, snapshot in cold.items():
            assert snapshot["misses"] > 0, name

        telemetry = Telemetry.metrics_only()
        warm_report = _run(telemetry=telemetry)
        warm = {name: s.snapshot() for name, s in ALL_STATS.items()}
        for name in ALL_STATS:
            assert warm[name]["hits"] > cold[name]["hits"], name

        # Exact replay: not a single reported number moves.
        assert _canonical(warm_report) == _canonical(cold_report)

        # The same accounting is visible through the metrics registry.
        counters = telemetry.metrics.snapshot()["counters"]
        for name, prefix in COUNTER_NAMES.items():
            assert counters.get(prefix + ".hits", 0) > 0, name

    def test_clear_resets_stats_and_forces_misses(self):
        _clear_all()
        _run()
        _clear_all()
        for name, stats in ALL_STATS.items():
            snapshot = stats.snapshot()
            assert snapshot["hits"] == 0, name
            assert snapshot["misses"] == 0, name
        _run()
        assert COMPILE_CACHE_STATS.misses > 0
        assert DECODE_CACHE_STATS.misses > 0


class TestWarmStartCache:
    def _build(self, dma, priorities=None):
        return tcpip.build_system(
            dma_block_words=dma,
            num_packets=1,
            packet_period_ns=30_000.0,
            priorities=priorities,
        )

    def test_same_system_adopts_cache(self):
        warm = WarmStartCache()
        bundle = self._build(8)
        first = warm.strategy_for(bundle.network, bundle.config)
        assert warm.cache is not None
        again = warm.strategy_for(bundle.network, bundle.config)
        assert again.cache is first.cache
        assert warm.adoptions >= 1
        assert warm.invalidations == 0

    def test_priority_change_keeps_cache_valid(self):
        # Bus priorities live outside the per-CFSM fingerprints: the
        # converged energy statistics stay adoptable.
        warm = WarmStartCache()
        a = self._build(8, priorities={"create_pack": 0, "ip_check": 1,
                                       "checksum": 2})
        warm.strategy_for(a.network, a.config)
        b = self._build(8, priorities={"checksum": 0, "ip_check": 1,
                                       "create_pack": 2})
        warm.strategy_for(b.network, b.config)
        assert warm.invalidations == 0
        assert warm.adoptions >= 1

    def test_dma_change_invalidates_stale_processes_only(self):
        warm = WarmStartCache()
        a = self._build(4)
        strategy = warm.strategy_for(a.network, a.config)
        # Converge some entries by actually running.
        estimator = PowerCoEstimator(a.network, a.config)
        estimator.estimate(a.stimuli(), strategy=strategy)
        fingerprints_before = warm.fingerprints

        b = self._build(16)
        warm.strategy_for(b.network, b.config)
        assert warm.invalidations == 1
        # The DMA block size is baked into the coordination logic, so at
        # least one CFSM fingerprint must differ — but not all of them.
        changed = {
            name
            for name in fingerprints_before
            if warm.fingerprints.get(name) != fingerprints_before[name]
        }
        assert changed
        assert changed != set(fingerprints_before)


class TestRunMemoExactness:
    def test_memoized_reruns_are_bit_identical(self):
        _clear_all()
        first = _run()
        replayed = _run()
        assert HW_RUN_MEMO_STATS.hits > 0
        assert _canonical(replayed) == _canonical(first)
        # Energy totals compare exactly (floats, no tolerance).
        assert replayed.total_energy_j == first.total_energy_j

"""Unit tests of the deterministic retry backoff (satellite of the
cluster PR — the same schedule spaces supervisor retries, worker
registration attempts, and coordinator re-dispatches)."""

import zlib

import pytest

from repro.resilience.supervisor import retry_backoff_s


def test_backoff_is_deterministic():
    for attempt in range(1, 6):
        a = retry_backoff_s("fig1:hw", attempt, 0.01, 0.25)
        b = retry_backoff_s("fig1:hw", attempt, 0.01, 0.25)
        assert a == b


def test_backoff_grows_exponentially_until_the_cap():
    delays = [retry_backoff_s("site", attempt, 0.01, 1e9)
              for attempt in range(1, 10)]
    # Raw schedule doubles; equal-jitter keeps each delay within
    # [0.5, 1.0) of its raw value, so the doubling dominates from two
    # attempts apart.
    for earlier, later in zip(delays, delays[2:]):
        assert later > earlier
    raw = [0.01 * 2 ** (attempt - 1) for attempt in range(1, 10)]
    for delay, ceiling in zip(delays, raw):
        assert 0.5 * ceiling <= delay < ceiling


def test_backoff_respects_the_cap():
    assert retry_backoff_s("site", 30, 0.01, 0.25) == 0.25


def test_jitter_decorrelates_sites():
    """Different sites retrying the same attempt must not thundering-herd."""
    delays = {retry_backoff_s("site-%d" % index, 3, 0.01, 10.0)
              for index in range(16)}
    assert len(delays) > 8  # most sites land on distinct delays


def test_jitter_matches_the_documented_derivation():
    site, attempt, base = "fig1:iss", 4, 0.02
    unit = zlib.crc32(("%s:%d" % (site, attempt)).encode()) / 2 ** 32
    expected = base * 2 ** (attempt - 1) * (0.5 + unit / 2.0)
    assert retry_backoff_s(site, attempt, base, 10.0) == \
        pytest.approx(expected)


def test_zero_base_disables_backoff():
    assert retry_backoff_s("site", 3, 0.0, 1.0) == 0.0


def test_invalid_attempt_yields_zero():
    assert retry_backoff_s("site", 0, 0.01, 1.0) == 0.0


def test_supervisor_accounts_backoff_deterministically():
    """A faulted, retried run records the same backoff_seconds every
    time — wall clock changes, the report does not."""
    from repro.resilience.faults import FaultPlan
    from repro.resilience.supervisor import (
        EstimatorUnavailable,
        ResilienceConfig,
        ResilientEstimator,
    )
    from repro.sw.power_model import InstructionPowerModel

    def run_once():
        config = ResilienceConfig(
            fault_plan=FaultPlan.uniform(["hw"], 1.0, seed=3),
            max_retries=2,
            backoff_base_s=0.001,
            backoff_cap_s=0.002,
        )
        supervisor = ResilientEstimator(
            config, power_model=InstructionPowerModel()
        )
        wrapped = supervisor.supervise("hw", "dma", lambda: None)
        with pytest.raises(EstimatorUnavailable):
            wrapped()
        return supervisor.backoff_seconds

    first, second = run_once(), run_once()
    assert first == second
    assert first > 0.0

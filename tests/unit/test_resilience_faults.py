"""Fault-injection determinism and plan semantics."""

import pytest

from repro.errors import ReproError
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


def _schedule(plan, site, invocations):
    """Which invocation numbers of ``site`` fault under ``plan``."""
    injector = FaultInjector(plan)
    fired = []
    for invocation in range(1, invocations + 1):
        if injector.draw(site) is not None:
            fired.append(invocation)
    return fired


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan.uniform(["iss"], 0.3, seed=42)
        assert _schedule(plan, "iss", 200) == _schedule(plan, "iss", 200)

    def test_different_seed_different_schedule(self):
        a = _schedule(FaultPlan.uniform(["iss"], 0.3, seed=1), "iss", 200)
        b = _schedule(FaultPlan.uniform(["iss"], 0.3, seed=2), "iss", 200)
        assert a != b

    def test_sites_draw_independent_streams(self):
        """A site's schedule must not depend on other sites' draws."""
        plan = FaultPlan.uniform(["iss", "hw"], 0.3, seed=7)
        solo = _schedule(plan, "iss", 100)

        interleaved = FaultInjector(plan)
        fired = []
        for invocation in range(1, 101):
            interleaved.draw("hw")  # interleave another site's draws
            interleaved.draw("hw")
            if interleaved.draw("iss") is not None:
                fired.append(invocation)
        assert fired == solo

    def test_rate_roughly_honored(self):
        plan = FaultPlan.uniform(["hw"], 0.2, seed=3)
        fired = _schedule(plan, "hw", 2000)
        assert 0.15 < len(fired) / 2000 < 0.25


class TestSchedulesAndSpecs:
    def test_explicit_schedule_fires_exactly(self):
        plan = FaultPlan(specs=[FaultSpec(site="iss", schedule=(2, 5))])
        assert _schedule(plan, "iss", 8) == [2, 5]

    def test_unknown_site_never_faults(self):
        plan = FaultPlan.uniform(["iss"], 1.0)
        injector = FaultInjector(plan)
        assert injector.draw("hw") is None

    def test_counters(self):
        plan = FaultPlan(specs=[FaultSpec(site="hw", schedule=(1, 2, 3))])
        injector = FaultInjector(plan)
        for _ in range(5):
            injector.draw("hw")
        assert injector.counters.invocations["hw"] == 5
        assert injector.counters.injected[("hw", "exception")] == 3
        assert injector.counters.total_injected == 3
        snapshot = injector.counters.snapshot()
        assert snapshot["invocations.hw"] == 5.0
        assert snapshot["injected.hw.exception"] == 3.0

    def test_make_fault_carries_context(self):
        plan = FaultPlan(specs=[FaultSpec(site="iss", schedule=(1,))])
        injector = FaultInjector(plan)
        spec = injector.draw("iss")
        fault = injector.make_fault(spec, component="producer", sim_time_ns=12.5)
        assert isinstance(fault, InjectedFault)
        assert isinstance(fault, ReproError)
        assert fault.component == "producer"
        assert fault.sim_time_ns == 12.5
        assert "iss" in str(fault)

    def test_corruption_modes(self):
        nan = FaultSpec(site="hw", kind="corrupt", corruption="nan")
        neg = FaultSpec(site="hw", kind="corrupt", corruption="negative")
        scale = FaultSpec(site="hw", kind="corrupt", corruption="scale",
                          scale_factor=1e6)
        assert nan.corrupt_energy(1e-9) != nan.corrupt_energy(1e-9)  # NaN
        assert neg.corrupt_energy(1e-9) < 0
        assert scale.corrupt_energy(1e-9) == pytest.approx(1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="gpu")
        with pytest.raises(ValueError):
            FaultSpec(site="hw", kind="meltdown")
        with pytest.raises(ValueError):
            FaultSpec(site="hw", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="hw", kind="corrupt", corruption="zero")

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.uniform(["hw", "iss"], 0.1, seed=9)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert _schedule(clone, "hw", 50) == _schedule(plan, "hw", 50)

    def test_plan_sites(self):
        plan = FaultPlan(specs=[
            FaultSpec(site="hw"), FaultSpec(site="iss"), FaultSpec(site="hw"),
        ])
        assert plan.sites() == ("hw", "iss")

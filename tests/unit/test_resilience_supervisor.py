"""Supervised estimator calls: watchdog, retry, validation, ladder."""

import time
from types import SimpleNamespace

import pytest

from repro.estimation import Estimate
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.supervisor import (
    CorruptedEstimate,
    EstimatorUnavailable,
    ResilienceConfig,
    ResilientEstimator,
    WatchdogTimeout,
    call_with_watchdog,
)
from repro.sw.power_model import InstructionPowerModel
from repro.telemetry import Telemetry


def _estimator(**config_kwargs):
    return ResilientEstimator(
        ResilienceConfig(**config_kwargs), power_model=InstructionPowerModel()
    )


def _job(path_key=("cfsm", "t", ("s0", "s1")), op_names=("add", "load")):
    return SimpleNamespace(
        path_key=path_key,
        cfsm=SimpleNamespace(name=path_key[0]),
        transition=SimpleNamespace(name=path_key[1]),
        op_names=tuple(op_names),
    )


class TestWatchdog:
    def test_none_budget_calls_directly(self):
        assert call_with_watchdog(lambda: 41 + 1, None) == 42

    def test_fast_call_succeeds(self):
        assert call_with_watchdog(lambda: "ok", 5.0) == "ok"

    def test_exception_propagates(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError):
            call_with_watchdog(boom, 5.0)

    def test_slow_call_times_out(self):
        with pytest.raises(WatchdogTimeout):
            call_with_watchdog(lambda: time.sleep(5.0), 0.05)


class TestSupervision:
    def test_retry_then_success(self):
        estimator = _estimator(max_retries=2)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return Estimate(cycles=4, energy=1e-9, ran_low_level=True)

        supervised = estimator.supervise(
            "hw", "dma", flaky, path_key=("dma", "t", ())
        )
        estimate = supervised()
        assert estimate.energy == 1e-9
        assert estimator.retries == 2
        assert estimator.failures == 0

    def test_persistent_failure_raises_unavailable(self):
        estimator = _estimator(max_retries=1)

        def broken():
            raise RuntimeError("dead estimator")

        supervised = estimator.supervise(
            "iss", "producer", broken, path_key=("producer", "t", ()),
            sim_time_ns=100.0,
        )
        with pytest.raises(EstimatorUnavailable) as excinfo:
            supervised()
        assert excinfo.value.component == "producer"
        assert excinfo.value.sim_time_ns == 100.0
        assert estimator.retries == 1
        assert estimator.failures == 1

    def test_injected_exception_fault(self):
        plan = FaultPlan(specs=[FaultSpec(site="hw", schedule=(1,))])
        estimator = ResilientEstimator(
            ResilienceConfig(fault_plan=plan, max_retries=0),
            power_model=InstructionPowerModel(),
        )
        supervised = estimator.supervise(
            "hw", "dma", lambda: Estimate(1, 1e-9, True)
        )
        with pytest.raises(EstimatorUnavailable) as excinfo:
            supervised()
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        # Invocation 2 is past the schedule: succeeds.
        assert supervised().energy == 1e-9

    def test_corrupted_estimate_rejected(self):
        plan = FaultPlan(specs=[
            FaultSpec(site="hw", kind="corrupt", corruption="negative",
                      schedule=(1,)),
        ])
        estimator = ResilientEstimator(
            ResilienceConfig(fault_plan=plan, max_retries=1),
            power_model=InstructionPowerModel(),
        )
        supervised = estimator.supervise(
            "hw", "dma", lambda: Estimate(1, 1e-9, True)
        )
        # Attempt 1 corrupts (negative energy -> CorruptedEstimate),
        # retry succeeds.
        assert supervised().energy == 1e-9
        assert estimator.corrupted == 1
        assert estimator.retries == 1

    def test_validator_bounds(self):
        estimator = _estimator(max_retries=0, max_energy_j=1e-6)

        def huge():
            return Estimate(cycles=1, energy=1.0, ran_low_level=True)

        with pytest.raises(EstimatorUnavailable):
            estimator.supervise("hw", "dma", huge)()
        assert estimator.corrupted == 1

    def test_watchdog_timeout_counted(self):
        estimator = _estimator(max_retries=0, watchdog_s=0.05)
        supervised = estimator.supervise(
            "iss", "producer", lambda: time.sleep(5.0)
        )
        with pytest.raises(EstimatorUnavailable):
            supervised()
        assert estimator.watchdog_timeouts == 1


class TestDegradationLadder:
    def test_cached_rung_uses_shadow_mean(self):
        estimator = _estimator()
        key = ("cfsm", "t", ("s0", "s1"))
        supervised = estimator.supervise(
            "iss", "cfsm", lambda: Estimate(10, 2e-9, True), path_key=key
        )
        supervised()
        supervised = estimator.supervise(
            "iss", "cfsm", lambda: Estimate(14, 4e-9, True), path_key=key
        )
        supervised()

        estimate = estimator.fallback(_job(path_key=key))
        assert estimate.provenance == "cached"
        assert estimate.energy == pytest.approx(3e-9)
        assert estimate.cycles == 12
        assert not estimate.ran_low_level

    def test_cached_rung_falls_back_to_transition_mean(self):
        estimator = _estimator()
        seen_key = ("cfsm", "t", ("s0",))
        estimator.supervise(
            "iss", "cfsm", lambda: Estimate(8, 5e-9, True), path_key=seen_key
        )()
        # Same (cfsm, transition) but an unseen path: transition-level
        # shadow mean answers.
        estimate = estimator.fallback(_job(path_key=("cfsm", "t", ("s9",))))
        assert estimate.provenance == "cached"
        assert estimate.energy == pytest.approx(5e-9)

    def test_macromodel_rung(self):
        fake = SimpleNamespace(
            estimate=lambda job: Estimate(cycles=7, energy=6e-10,
                                          ran_low_level=False)
        )
        estimator = ResilientEstimator(
            ResilienceConfig(),
            power_model=InstructionPowerModel(),
            macromodel_factory=lambda: fake,
        )
        estimate = estimator.fallback(_job())
        assert estimate.provenance == "macromodel"
        assert estimate.energy == 6e-10
        assert estimator.fallbacks == {"macromodel": 1}

    def test_degraded_rung_when_macromodel_build_fails(self):
        def broken_factory():
            raise RuntimeError("no characterization data")

        estimator = ResilientEstimator(
            ResilienceConfig(),
            power_model=InstructionPowerModel(),
            macromodel_factory=broken_factory,
        )
        job = _job(op_names=("add", "load", "store"))
        estimate = estimator.fallback(job)
        assert estimate.provenance == "degraded"
        assert estimate.cycles == 2 + 3
        assert 0 < estimate.energy <= estimator.config.max_energy_j
        # The failed build is permanent; no second factory call.
        estimator.fallback(job)
        assert estimator.fallbacks == {"degraded": 2}

    def test_per_job_macromodel_failure_keeps_rung_armed(self):
        calls = {"n": 0}

        def sometimes(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("this job only")
            return Estimate(cycles=3, energy=1e-10, ran_low_level=False)

        estimator = ResilientEstimator(
            ResilienceConfig(),
            power_model=InstructionPowerModel(),
            macromodel_factory=lambda: SimpleNamespace(estimate=sometimes),
        )
        assert estimator.fallback(_job()).provenance == "degraded"
        assert estimator.fallback(_job()).provenance == "macromodel"

    def test_full_ladder_order(self):
        """cached beats macromodel beats degraded."""
        fake = SimpleNamespace(
            estimate=lambda job: Estimate(3, 1e-10, False)
        )
        estimator = ResilientEstimator(
            ResilienceConfig(),
            power_model=InstructionPowerModel(),
            macromodel_factory=lambda: fake,
        )
        key = ("cfsm", "t", ("s0",))
        # No shadow data yet: macromodel answers.
        assert estimator.fallback(_job(path_key=key)).provenance == "macromodel"
        # After one exact run the cached rung takes precedence.
        estimator.supervise(
            "iss", "cfsm", lambda: Estimate(5, 2e-9, True), path_key=key
        )()
        assert estimator.fallback(_job(path_key=key)).provenance == "cached"


class TestBypassAndAccounting:
    def test_component_ok_without_plan(self):
        estimator = _estimator()
        assert estimator.component_ok("cache")
        assert estimator.bypasses == {}

    def test_component_ok_counts_bypasses(self):
        plan = FaultPlan(specs=[FaultSpec(site="bus", schedule=(1, 3))])
        estimator = ResilientEstimator(
            ResilienceConfig(fault_plan=plan),
            power_model=InstructionPowerModel(),
        )
        results = [estimator.component_ok("bus") for _ in range(4)]
        assert results == [False, True, False, True]
        assert estimator.bypasses == {"bus": 2}

    def test_statistics_and_metrics(self):
        plan = FaultPlan(specs=[FaultSpec(site="hw", schedule=(1,))])
        telemetry = Telemetry.metrics_only()
        estimator = ResilientEstimator(
            ResilienceConfig(fault_plan=plan, max_retries=1),
            power_model=InstructionPowerModel(),
            telemetry=telemetry,
        )
        supervised = estimator.supervise(
            "hw", "dma", lambda: Estimate(1, 1e-9, True)
        )
        supervised()  # attempt 1 faults, retry succeeds
        stats = estimator.statistics()
        assert stats["retries"] == 1.0
        # Each attempt draws the schedule once: two invocations total.
        assert stats["fault.invocations.hw"] == 2.0
        assert stats["fault.injected.hw.exception"] == 1.0
        estimator.publish_metrics()
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["gauges"]["resilience.stats.retries"] == 1.0
        assert snapshot["counters"]["resilience.retries"] == 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(watchdog_s=0.0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_energy_j=-1.0)

"""Request validation and the idempotency fingerprint."""

import pytest

from repro.errors import ReproError
from repro.service.api import (
    BadRequest,
    EstimateRequest,
    parse_request,
    request_fingerprint,
    workload_signature,
)
from repro.systems import build_bundle, system_names

KNOWN = system_names()


class TestParseRequest:
    def test_minimal_request(self):
        request = parse_request({"system": "fig1"}, known_systems=KNOWN)
        assert request.system == "fig1"
        assert request.strategy == "caching"
        assert request.priority == 1
        assert request.fault_plan is None
        assert request.request_id.startswith("req-")

    def test_full_request(self):
        request = parse_request(
            {
                "system": "tcpip",
                "strategy": "full",
                "priority": "high",
                "deadline_s": 12.5,
                "request_id": "client-7",
                "fault": {"rate": 0.5, "sites": ["hw"], "seed": 9,
                          "retries": 2},
            },
            known_systems=KNOWN,
        )
        assert request.priority == 2
        assert request.deadline_s == 12.5
        assert request.request_id == "client-7"
        assert request.fault_plan is not None
        assert request.fault_plan.seed == 9
        assert request.fault_retries == 2
        assert all(s.site == "hw" for s in request.fault_plan.specs)

    def test_default_deadline_honored(self):
        request = parse_request({"system": "fig1"}, known_systems=KNOWN,
                                default_deadline_s=7.0)
        assert request.deadline_s == 7.0

    def test_zero_rate_means_no_plan(self):
        request = parse_request(
            {"system": "fig1", "fault": {"rate": 0.0}}, known_systems=KNOWN
        )
        assert request.fault_plan is None

    def test_hang_fault_kind(self):
        request = parse_request(
            {"system": "fig1",
             "fault": {"rate": 1.0, "sites": ["hw"], "kind": "hang",
                       "hang_s": 2.5}},
            known_systems=KNOWN,
        )
        (spec,) = request.fault_plan.specs
        assert spec.kind == "hang"
        assert spec.hang_s == 2.5

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ("not a dict", "JSON object"),
            ({}, "'system'"),
            ({"system": 3}, "'system'"),
            ({"system": "nope"}, "unknown system"),
            ({"system": "fig1", "strategy": "psychic"}, "unknown strategy"),
            ({"system": "fig1", "priority": "urgent"}, "unknown priority"),
            ({"system": "fig1", "priority": 1.5}, "'priority'"),
            ({"system": "fig1", "deadline_s": "soon"}, "'deadline_s'"),
            ({"system": "fig1", "deadline_s": 0}, "positive"),
            ({"system": "fig1", "deadline_s": -3}, "positive"),
            ({"system": "fig1", "fault": "all"}, "'fault'"),
            ({"system": "fig1", "fault": {"rate": 2.0}}, "[0, 1]"),
            ({"system": "fig1", "fault": {"rate": "x"}}, "'fault.rate'"),
            ({"system": "fig1", "fault": {"rate": 0.5, "sites": ["gpu"]}},
             "unknown fault sites"),
            ({"system": "fig1", "fault": {"rate": 0.5, "seed": "x"}},
             "'fault.seed'"),
            ({"system": "fig1", "fault": {"rate": 0.5, "retries": -1}},
             "'fault.retries'"),
            ({"system": "fig1", "fault": {"rate": 0.5, "kind": "gremlin"}},
             "unknown fault kind"),
            ({"system": "fig1", "fault": {"rate": 0.5, "kind": "hang",
                                          "hang_s": -1}},
             "'fault.hang_s'"),
            ({"system": "fig1", "request_id": 7}, "'request_id'"),
        ],
    )
    def test_named_validation_errors(self, body, fragment):
        with pytest.raises(BadRequest) as excinfo:
            parse_request(body, known_systems=KNOWN)
        assert fragment in str(excinfo.value)

    def test_bad_request_is_repro_error(self):
        with pytest.raises(ReproError):
            parse_request({}, known_systems=KNOWN)


class TestPayloadRoundTrip:
    def test_plain_request(self):
        original = parse_request(
            {"system": "fig1", "strategy": "full", "priority": "low",
             "deadline_s": 9.0, "request_id": "r1"},
            known_systems=KNOWN,
        )
        rebuilt = EstimateRequest.from_payload(original.to_payload(),
                                               known_systems=KNOWN)
        assert rebuilt == original

    def test_fault_request(self):
        original = parse_request(
            {"system": "tcpip", "fault": {"rate": 0.25, "sites": ["hw",
             "iss"], "seed": 3, "retries": 2}},
            known_systems=KNOWN,
        )
        rebuilt = EstimateRequest.from_payload(original.to_payload(),
                                               known_systems=KNOWN)
        assert rebuilt.fault_plan == original.fault_plan
        assert rebuilt.fault_retries == original.fault_retries

    def test_hang_fault_request(self):
        original = parse_request(
            {"system": "tcpip",
             "fault": {"rate": 1.0, "sites": ["hw"], "kind": "hang",
                       "hang_s": 4.0}},
            known_systems=KNOWN,
        )
        rebuilt = EstimateRequest.from_payload(original.to_payload(),
                                               known_systems=KNOWN)
        assert rebuilt.fault_plan == original.fault_plan


class TestFingerprint:
    def test_same_computation_same_fingerprint(self):
        bundle_a = build_bundle("fig1")
        bundle_b = build_bundle("fig1")  # a fresh, identical build
        req = parse_request({"system": "fig1"}, known_systems=KNOWN)
        assert (request_fingerprint(bundle_a, req)
                == request_fingerprint(bundle_b, req))

    def test_scheduling_fields_excluded(self):
        bundle = build_bundle("fig1")
        base = parse_request({"system": "fig1"}, known_systems=KNOWN)
        rescheduled = parse_request(
            {"system": "fig1", "priority": "high", "deadline_s": 1.0,
             "request_id": "other"},
            known_systems=KNOWN,
        )
        assert (request_fingerprint(bundle, base)
                == request_fingerprint(bundle, rescheduled))

    def test_strategy_changes_fingerprint(self):
        bundle = build_bundle("fig1")
        a = parse_request({"system": "fig1", "strategy": "full"},
                          known_systems=KNOWN)
        b = parse_request({"system": "fig1", "strategy": "caching"},
                          known_systems=KNOWN)
        assert (request_fingerprint(bundle, a)
                != request_fingerprint(bundle, b))

    def test_fault_plan_changes_fingerprint(self):
        """A chaos request must never coalesce with a clean one."""
        bundle = build_bundle("fig1")
        clean = parse_request({"system": "fig1"}, known_systems=KNOWN)
        chaos = parse_request(
            {"system": "fig1", "fault": {"rate": 1.0, "sites": ["hw"]}},
            known_systems=KNOWN,
        )
        reseeded = parse_request(
            {"system": "fig1", "fault": {"rate": 1.0, "sites": ["hw"],
                                         "seed": 5}},
            known_systems=KNOWN,
        )
        prints = {request_fingerprint(bundle, r)
                  for r in (clean, chaos, reseeded)}
        assert len(prints) == 3

    def test_different_systems_differ(self):
        req_a = parse_request({"system": "fig1"}, known_systems=KNOWN)
        req_b = parse_request({"system": "tcpip"}, known_systems=KNOWN)
        assert (request_fingerprint(build_bundle("fig1"), req_a)
                != request_fingerprint(build_bundle("tcpip"), req_b))

    def test_workload_signature_tracks_stimuli(self):
        stimuli_a = build_bundle("fig1").stimuli()
        stimuli_b = build_bundle("fig1").stimuli()
        assert workload_signature(stimuli_a) == workload_signature(stimuli_b)
        assert (workload_signature(stimuli_a[:-1])
                != workload_signature(stimuli_a))

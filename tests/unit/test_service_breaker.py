"""Circuit breaker state machine: closed -> open -> half-open -> ..."""

import pytest

from repro.service.breaker import (
    BREAKER_STATES,
    BreakerRegistry,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_breaker(threshold=3, recovery_s=30.0):
    clock = FakeClock()
    return CircuitBreaker("hw", failure_threshold=threshold,
                          recovery_s=recovery_s, clock=clock), clock


class TestClosedToOpen:
    def test_stays_closed_below_threshold(self):
        breaker, _ = make_breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_threshold(self):
        breaker, _ = make_breaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.snapshot()["opens"] == 1

    def test_success_resets_consecutive_count(self):
        breaker, _ = make_breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # never two *consecutive*

    def test_short_circuits_counted(self):
        breaker, _ = make_breaker(threshold=1)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.snapshot()["short_circuits"] == 2


class TestHalfOpen:
    def test_probe_admitted_after_recovery(self):
        breaker, clock = make_breaker(threshold=1, recovery_s=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert breaker.snapshot()["probes"] == 1

    def test_single_probe_at_a_time(self):
        breaker, clock = make_breaker(threshold=1, recovery_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        assert not breaker.allow()  # concurrent caller short-circuits

    def test_probe_success_closes(self):
        breaker, clock = make_breaker(threshold=1, recovery_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        breaker, clock = make_breaker(threshold=1, recovery_s=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        # ... and recovery starts over from the re-open time.
        clock.advance(9.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_reopen_needs_single_failure_not_threshold(self):
        breaker, clock = make_breaker(threshold=3, recovery_s=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # one probe failure suffices
        assert breaker.state == "open"


class TestValidationAndStates:
    def test_states_are_the_documented_set(self):
        assert set(BREAKER_STATES) == {"closed", "half_open", "open"}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker("hw", failure_threshold=0)

    def test_invalid_recovery(self):
        with pytest.raises(ValueError):
            CircuitBreaker("hw", recovery_s=-1.0)


class TestRegistry:
    def test_get_is_idempotent(self):
        registry = BreakerRegistry()
        assert registry.get("hw") is registry.get("hw")
        assert registry.get("hw") is not registry.get("iss")

    def test_peek_does_not_create(self):
        registry = BreakerRegistry()
        assert registry.peek("hw") is None
        registry.get("hw")
        assert registry.peek("hw") is not None

    def test_scoped_view_prefixes_site_names(self):
        registry = BreakerRegistry(failure_threshold=1)
        scoped = registry.scoped("tcpip")
        breaker = scoped.get("hw")
        assert breaker is registry.get("tcpip:hw")
        # A different system's view never touches this breaker.
        assert scoped.get("hw") is not registry.scoped("fig1").get("hw")

    def test_snapshot_and_open_count(self):
        clock = FakeClock()
        registry = BreakerRegistry(failure_threshold=1, clock=clock)
        registry.get("a:hw").record_failure()
        registry.get("b:iss")
        snap = registry.snapshot()
        assert snap["a:hw"]["state"] == "open"
        assert snap["b:iss"]["state"] == "closed"
        assert registry.open_count() == 1

    def test_registry_settings_reach_breakers(self):
        clock = FakeClock()
        registry = BreakerRegistry(failure_threshold=1, recovery_s=7.0,
                                   clock=clock)
        breaker = registry.get("hw")
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(6.9)
        assert not breaker.allow()
        clock.advance(0.1)
        assert breaker.allow()

"""In-flight request coalescing (idempotent dedup)."""

from repro.service.dedup import InflightTable


class TestInflightTable:
    def test_first_submission_is_primary(self):
        table = InflightTable()
        assert table.admit("fp", "entry-a") == "entry-a"
        assert table.depth == 1

    def test_identical_inflight_coalesces(self):
        table = InflightTable()
        table.admit("fp", "primary")
        assert table.admit("fp", "follower") == "primary"
        assert table.snapshot() == {
            "inflight": 1, "primaries": 1, "coalesced": 1,
        }

    def test_different_fingerprints_do_not_coalesce(self):
        table = InflightTable()
        table.admit("fp-a", "a")
        assert table.admit("fp-b", "b") == "b"
        assert table.depth == 2

    def test_complete_reports_follower_count(self):
        table = InflightTable()
        table.admit("fp", "primary")
        table.admit("fp", "f1")
        table.admit("fp", "f2")
        assert table.complete("fp") == 2
        assert table.depth == 0

    def test_completed_fingerprint_computes_afresh(self):
        """Coalescing is not a response cache: release means re-run."""
        table = InflightTable()
        table.admit("fp", "first")
        table.complete("fp")
        assert table.admit("fp", "second") == "second"
        assert table.snapshot()["primaries"] == 2

    def test_complete_unknown_is_harmless(self):
        table = InflightTable()
        assert table.complete("never-admitted") == 0

    def test_get(self):
        table = InflightTable()
        assert table.get("fp") is None
        table.admit("fp", "primary")
        assert table.get("fp") == "primary"

"""The stdlib HTTP front end over a fake-executor service."""

import json
import http.client
import threading

import pytest

from repro.service import CoEstimationService, ServiceConfig, ServiceHTTPServer

from tests.unit.test_service_server import FakeExecutor


@pytest.fixture
def http_service(monkeypatch):
    fake = FakeExecutor()
    monkeypatch.setattr("repro.parallel.pool.execute_spec", fake)
    service = CoEstimationService(
        ServiceConfig(workers=1, queue_depth=4, default_deadline_s=10.0,
                      drain_timeout_s=2.0)
    )
    service.start()
    httpd = ServiceHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield service, httpd.server_address[1], fake
    httpd.shutdown()
    httpd.server_close()
    fake.release.set()
    service.drain(timeout_s=2.0)


def call(port, method, path, body=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        payload = None if body is None else json.dumps(body)
        connection.request(method, path, body=payload,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        data = response.read()
        return response.status, dict(response.getheaders()), \
            json.loads(data) if data else {}
    finally:
        connection.close()


class TestRoutes:
    def test_healthz(self, http_service):
        _, port, _ = http_service
        status, _, body = call(port, "GET", "/healthz")
        assert status == 200
        assert body == {"status": "alive", "draining": False}

    def test_readyz_ready_then_draining(self, http_service):
        service, port, _ = http_service
        status, _, body = call(port, "GET", "/readyz")
        assert (status, body["status"]) == (200, "ready")
        service.drain_controller.request_drain("test")
        status, _, body = call(port, "GET", "/readyz")
        assert (status, body["status"]) == (503, "draining")

    def test_stats_document(self, http_service):
        _, port, _ = http_service
        status, _, body = call(port, "GET", "/stats")
        assert status == 200
        assert set(body) >= {"service", "queue", "dedup", "breakers",
                             "provenance", "metrics"}
        assert body["queue"]["max_depth"] == 4

    def test_unknown_path_404(self, http_service):
        _, port, _ = http_service
        assert call(port, "GET", "/nope")[0] == 404
        assert call(port, "POST", "/nope")[0] == 404


class TestEstimateEndpoint:
    def test_estimate_ok(self, http_service):
        _, port, _ = http_service
        status, _, body = call(port, "POST", "/estimate",
                               {"system": "fig1", "strategy": "full"})
        assert status == 200
        assert body["status"] == "ok"
        assert body["system"] == "fig1"
        assert body["provenance"] == {"exact": 4}
        assert "fingerprint" in body

    def test_malformed_json_400(self, http_service):
        _, port, _ = http_service
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
        try:
            connection.request("POST", "/estimate", body="{not json")
            response = connection.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert "JSON" in body["reason"]
        finally:
            connection.close()

    def test_unknown_system_400(self, http_service):
        _, port, _ = http_service
        status, _, body = call(port, "POST", "/estimate",
                               {"system": "warp-core"})
        assert status == 400
        assert "unknown system" in body["reason"]

    def test_draining_503(self, http_service):
        service, port, _ = http_service
        service.drain_controller.request_drain("test")
        status, _, body = call(port, "POST", "/estimate",
                               {"system": "fig1"})
        assert status == 503
        assert body["reason"] == "draining"

    def test_coalesced_flag_surfaces(self, http_service):
        _, port, fake = http_service
        fake.release.clear()  # hold the primary in the worker
        results = []

        def post():
            results.append(call(port, "POST", "/estimate",
                                {"system": "fig1"}))

        threads = [threading.Thread(target=post) for _ in range(2)]
        for thread in threads:
            thread.start()
        assert fake.wait_for_calls(1)
        fake.release.set()
        for thread in threads:
            thread.join(15.0)
        statuses = sorted(r[0] for r in results)
        assert statuses == [200, 200]
        assert len(fake.calls) == 1  # one run answered both clients
        assert sum(1 for r in results if r[2].get("coalesced")) == 1

"""Observability semantics of the service core, with a fake executor.

Covers the per-request correlation contract (every terminal response
carries ``X-Trace-Id``), the SLO tracker and flight recorder wiring,
the new ``/stats`` sections, the Prometheus exposition, structured log
lines, and the flight-recorder dump on a queue-expired deadline.
"""

import io
import json
import os
import threading
import time

import pytest

from repro.core.report import EnergyReport
from repro.obs import BREAKER_STATE_VALUES
from repro.obs.flightrecorder import DUMP_PREFIX
from repro.obs.logging import JsonLogger
from repro.obs.names import (
    EVENT_ADMITTED,
    EVENT_BREAKER_TRANSITION,
    EVENT_COALESCED,
    EVENT_COMPLETED,
    EVENT_DEADLINE_EXPIRED,
    EVENT_DISPATCHED,
    EVENT_DRAIN_STEP,
)
from repro.obs.prometheus import validate_exposition
from repro.obs.slo import SLOConfig
from repro.service import CoEstimationService, ServiceConfig
from repro.service.api import parse_request
from repro.systems import system_names

KNOWN = system_names()


def make_report(provenance=None):
    return EnergyReport(
        label="fake",
        total_energy_j=1.25e-6,
        by_component={"proc": 1.25e-6},
        by_category={"hw": 1.25e-6},
        end_time_ns=1000.0,
        wall_seconds=0.01,
        low_level_seconds=0.0,
        transitions={"proc": 4},
        iss_invocations=0,
        hw_invocations=4,
        strategy_name="full",
        strategy_stats={},
        provenance=dict(provenance or {"exact": 4}),
        by_provenance={"exact": 1.25e-6},
    )


class FakeExecutor:
    def __init__(self, provenance=None, hold=False):
        self.release = threading.Event()
        if not hold:
            self.release.set()
        self.calls = []
        self.provenance = provenance

    def __call__(self, spec):
        self.calls.append(spec)
        assert self.release.wait(10.0), "test never released the executor"
        return make_report(self.provenance), 0.01, None, None

    def wait_for_calls(self, count, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.calls) >= count:
                return True
            time.sleep(0.005)
        return False


@pytest.fixture
def service_factory(monkeypatch):
    services = []
    fakes = []

    def factory(config=None, provenance=None, hold=False, logger=None):
        fake = FakeExecutor(provenance=provenance, hold=hold)
        monkeypatch.setattr("repro.parallel.pool.execute_spec", fake)
        service = CoEstimationService(
            config or ServiceConfig(workers=1, queue_depth=2,
                                    default_deadline_s=10.0,
                                    drain_timeout_s=2.0),
            logger=logger,
        )
        service.start()
        services.append(service)
        fakes.append(fake)
        return service, fake

    yield factory
    for fake in fakes:
        fake.release.set()
    for service in services:
        service.drain(timeout_s=2.0)


def req(body, **overrides):
    payload = dict(body)
    payload.update(overrides)
    return parse_request(payload, known_systems=KNOWN)


def recorded_events(service, name):
    return [event for event in service.obs.recorder.events()
            if event["event"] == name]


def wait_for_dumps(directory, count=1, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while True:
        dumps = [name for name in os.listdir(directory)
                 if name.startswith(DUMP_PREFIX)
                 and name.endswith(".json")]
        if len(dumps) >= count or time.monotonic() >= deadline:
            return dumps
        time.sleep(0.01)


class TestTraceCorrelation:
    def test_response_carries_trace_id_header(self, service_factory):
        service, _ = service_factory()
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        assert pending.trace_id
        assert pending.headers["X-Trace-Id"] == pending.trace_id

    def test_job_spec_carries_the_trace_payload(self, service_factory):
        service, fake = service_factory()
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        (spec,) = fake.calls
        assert spec.trace is not None
        assert spec.trace["trace_id"] == pending.trace_id
        assert spec.trace["span_id"]

    def test_lifecycle_events_share_the_trace_id(self, service_factory):
        service, _ = service_factory()
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        for name in (EVENT_ADMITTED, EVENT_DISPATCHED, EVENT_COMPLETED):
            events = recorded_events(service, name)
            assert events, "missing %s in flight recorder" % name
            assert events[-1]["trace_id"] == pending.trace_id
        completed = recorded_events(service, EVENT_COMPLETED)[-1]
        assert completed["status"] == 200
        assert completed["system"] == "fig1"

    def test_coalesced_request_records_primary_trace(self, service_factory):
        service, fake = service_factory(hold=True)
        primary, coalesced_a = service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        follower, coalesced_b = service.submit(req({"system": "fig1"}))
        assert not coalesced_a and coalesced_b
        fake.release.set()
        assert follower.wait(5.0)
        (event,) = recorded_events(service, EVENT_COALESCED)
        assert event["primary_trace_id"] == primary.trace_id
        # The follower's own trace id differs from the primary's.
        assert event["trace_id"] != primary.trace_id


class TestSLOAndStats:
    def test_outcomes_feed_the_slo_tracker(self, service_factory):
        service, _ = service_factory()
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        snapshot = service.obs.slo.snapshot()
        assert snapshot["total_recorded"] == 1.0
        assert snapshot["window_errors"] == 0.0

    def test_stats_document_gains_obs_sections(self, service_factory):
        service, _ = service_factory()
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        stats = service.stats_snapshot()
        assert stats["slo"]["window_requests"] == 1.0
        assert stats["breaker_states"] == {}
        flight = stats["flight_recorder"]
        assert flight["recorded"] > 0
        assert flight["dropped"] == 0
        history = stats["queue"]["depth_history"]
        assert history, "queue depth history must not be empty"
        assert all(len(point) == 2 for point in history)

    def test_breaker_transition_reaches_obs(self, service_factory):
        service, _ = service_factory()
        breaker = service.breakers.get("fig1:hw")
        for _ in range(service.config.breaker_threshold):
            breaker.record_failure()
        assert service.stats_snapshot()["breaker_states"] == {
            "fig1:hw": "open"
        }
        (event,) = recorded_events(service, EVENT_BREAKER_TRANSITION)
        assert event["site"] == "fig1:hw"
        assert event["old"] == "closed"
        assert event["new"] == "open"
        exposition = service.metrics_exposition()
        assert (
            'repro_service_breaker_state{site="fig1:hw"} %d'
            % int(BREAKER_STATE_VALUES["open"]) in exposition
        )
        assert (
            'repro_service_breaker_transitions_total'
            '{site="fig1:hw",to="open"} 1' in exposition
        )


class TestMetricsExposition:
    def test_exposition_is_valid_and_covers_the_request(
        self, service_factory
    ):
        service, _ = service_factory(
            provenance={"exact": 3, "macromodel": 2}
        )
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        text = service.metrics_exposition()
        assert validate_exposition(text) == []
        assert (
            'repro_service_energy_answers_total'
            '{provenance="exact",system="fig1"} 3' in text
        )
        assert (
            'repro_service_energy_answers_total'
            '{provenance="macromodel",system="fig1"} 2' in text
        )
        assert "repro_service_queue_depth 0" in text
        assert "repro_slo_latency_burn_rate" in text
        assert "repro_slo_error_burn_rate" in text
        assert "repro_flightrecorder_recorded" in text
        assert "# TYPE repro_service_request_latency_seconds histogram" in text
        assert "repro_service_request_latency_seconds_count 1" in text


class TestStructuredLogs:
    def test_log_lines_are_json_with_trace_ids(self, service_factory):
        stream = io.StringIO()
        service, _ = service_factory(logger=JsonLogger(stream=stream))
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        records = [json.loads(line)
                   for line in stream.getvalue().splitlines()]
        assert records, "no structured log lines emitted"
        by_event = {record["event"] for record in records}
        assert EVENT_ADMITTED in by_event
        assert EVENT_COMPLETED in by_event
        for record in records:
            assert "trace_id" in record
            assert "ts" in record
        completed = [record for record in records
                     if record["event"] == EVENT_COMPLETED]
        assert completed[-1]["trace_id"] == pending.trace_id


class TestFlightDumps:
    def test_queue_expired_deadline_dumps_the_ring(
        self, service_factory, tmp_path
    ):
        config = ServiceConfig(
            workers=1, queue_depth=2, default_deadline_s=10.0,
            drain_timeout_s=2.0, flight_dump_dir=str(tmp_path),
        )
        service, fake = service_factory(config, hold=True)
        blocker, _ = service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)  # worker busy
        doomed, _ = service.submit(req({"system": "tcpip",
                                        "deadline_s": 0.05}))
        time.sleep(0.1)  # let the queued deadline lapse
        fake.release.set()
        assert doomed.wait(5.0)
        assert doomed.status == 504
        assert doomed.headers["X-Trace-Id"] == doomed.trace_id
        (event,) = recorded_events(service, EVENT_DEADLINE_EXPIRED)
        assert event["trace_id"] == doomed.trace_id
        # The response resolves before the worker thread writes the
        # postmortem, so poll for a *complete* dump (the atomic-write
        # temp file shares the prefix but not the .json suffix).
        dumps = wait_for_dumps(str(tmp_path))
        assert len(dumps) == 1
        with open(os.path.join(str(tmp_path), dumps[0])) as handle:
            document = json.load(handle)
        assert any(
            entry["event"] == EVENT_DEADLINE_EXPIRED
            and entry["trace_id"] == doomed.trace_id
            for entry in document["events"]
        )
        assert blocker.wait(5.0)

    def test_drain_writes_one_dump(self, service_factory, tmp_path):
        config = ServiceConfig(
            workers=1, queue_depth=2, default_deadline_s=10.0,
            drain_timeout_s=2.0, flight_dump_dir=str(tmp_path),
        )
        service, _ = service_factory(config)
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        service.drain(timeout_s=2.0)
        dumps = [name for name in os.listdir(str(tmp_path))
                 if name.startswith(DUMP_PREFIX)]
        assert dumps == [DUMP_PREFIX + "drain-000001.json"]
        steps = [event["step"] for event
                 in recorded_events(service, EVENT_DRAIN_STEP)]
        assert "requested" in steps
        assert "finished" in steps

    def test_no_dump_dir_means_no_dump(self, service_factory):
        service, _ = service_factory()
        assert service.obs.dump_flight("whatever") is None


class TestSLOConfigPlumbing:
    def test_custom_slo_reaches_the_tracker(self, service_factory):
        config = ServiceConfig(
            workers=1, queue_depth=2, default_deadline_s=10.0,
            drain_timeout_s=2.0,
            slo=SLOConfig(latency_threshold_s=0.001),
        )
        service, fake = service_factory(config, hold=True)
        pending, _ = service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        time.sleep(0.01)  # exceed the 1ms threshold before releasing
        fake.release.set()
        assert pending.wait(5.0)
        snapshot = service.obs.slo.snapshot()
        assert snapshot["latency_threshold_s"] == 0.001
        assert snapshot["window_slow"] == 1.0
        assert snapshot["latency_burn_rate"] > 0

"""Bounded admission queue: backpressure, priorities, load shedding."""

import threading

import pytest

from repro.errors import ReproError
from repro.service.queue import AdmissionQueue, QueueClosed, QueueFull


class TestOrdering:
    def test_fifo_within_priority(self):
        q = AdmissionQueue(max_depth=4)
        for name in ("a", "b", "c"):
            q.submit(name, priority=1)
        assert [q.take(0), q.take(0), q.take(0)] == ["a", "b", "c"]

    def test_priority_major(self):
        q = AdmissionQueue(max_depth=4)
        q.submit("low", priority=0)
        q.submit("high", priority=2)
        q.submit("normal", priority=1)
        assert [q.take(0), q.take(0), q.take(0)] == ["high", "normal", "low"]

    def test_take_empty_times_out(self):
        q = AdmissionQueue(max_depth=2)
        assert q.take(timeout=0.01) is None


class TestBackpressure:
    def test_full_rejects_equal_priority(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("a", priority=1)
        q.submit("b", priority=1)
        with pytest.raises(QueueFull):
            q.submit("c", priority=1)
        assert q.snapshot()["rejected"] == 1
        assert q.depth == 2  # never grew past the bound

    def test_full_rejects_lower_priority(self):
        q = AdmissionQueue(max_depth=1)
        q.submit("queued", priority=1)
        with pytest.raises(QueueFull):
            q.submit("newcomer", priority=0)

    def test_queue_full_is_repro_error(self):
        q = AdmissionQueue(max_depth=1)
        q.submit("a", priority=1)
        with pytest.raises(ReproError):
            q.submit("b", priority=1)

    def test_depth_never_exceeds_bound(self):
        q = AdmissionQueue(max_depth=3)
        for index in range(10):
            try:
                q.submit("item-%d" % index, priority=index % 3)
            except QueueFull:
                pass
        assert q.depth <= 3
        assert q.snapshot()["peak_depth"] <= 3


class TestLoadShedding:
    def test_higher_priority_sheds_lowest(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("low", priority=0)
        q.submit("normal", priority=1)
        victim = q.submit("high", priority=2)
        assert victim == "low"
        assert q.snapshot()["shed"] == 1
        assert [q.take(0), q.take(0)] == ["high", "normal"]

    def test_sheds_newest_among_equals(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("old-low", priority=0)
        q.submit("new-low", priority=0)
        victim = q.submit("high", priority=2)
        assert victim == "new-low"

    def test_not_full_never_sheds(self):
        q = AdmissionQueue(max_depth=3)
        q.submit("low", priority=0)
        assert q.submit("high", priority=2) is None


class TestCostAccounting:
    def test_queued_cost_tracks_submissions_and_takes(self):
        q = AdmissionQueue(max_depth=4)
        q.submit("light", priority=1, cost=1.25)
        q.submit("heavy", priority=1, cost=35.0)
        assert q.queued_cost == pytest.approx(36.25)
        assert q.admitted_cost == pytest.approx(36.25)
        q.take(0)
        assert q.queued_cost == pytest.approx(35.0)
        q.take(0)
        assert q.queued_cost == pytest.approx(0.0)
        # admitted_cost is a lifetime counter, not a level.
        assert q.admitted_cost == pytest.approx(36.25)

    def test_default_cost_is_one_unit(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("a", priority=1)
        assert q.queued_cost == pytest.approx(1.0)

    def test_shedding_refunds_the_victim_cost(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("low", priority=0, cost=19.0)
        q.submit("normal", priority=1, cost=1.0)
        victim = q.submit("high", priority=2, cost=2.5)
        assert victim == "low"
        # 19 left with the victim; the shedder's 2.5 arrived.
        assert q.queued_cost == pytest.approx(3.5)
        assert q.admitted_cost == pytest.approx(22.5)

    def test_rejected_submission_costs_nothing(self):
        q = AdmissionQueue(max_depth=1)
        q.submit("queued", priority=1, cost=4.0)
        with pytest.raises(QueueFull):
            q.submit("newcomer", priority=1, cost=100.0)
        assert q.queued_cost == pytest.approx(4.0)
        assert q.admitted_cost == pytest.approx(4.0)

    def test_drain_remaining_zeroes_the_level(self):
        q = AdmissionQueue(max_depth=4)
        q.submit("a", priority=1, cost=2.0)
        q.submit("b", priority=0, cost=3.0)
        q.close()
        assert q.drain_remaining() == ["a", "b"]
        assert q.queued_cost == pytest.approx(0.0)

    def test_snapshot_reports_cost_levels(self):
        q = AdmissionQueue(max_depth=4)
        q.submit("a", priority=1, cost=1.2446)
        q.submit("b", priority=1, cost=35.0081)
        snap = q.snapshot()
        assert snap["queued_cost"] == pytest.approx(36.2527)
        assert snap["admitted_cost"] == pytest.approx(36.2527)


class TestLifecycle:
    def test_closed_refuses_submissions(self):
        q = AdmissionQueue(max_depth=2)
        q.close()
        with pytest.raises(QueueClosed):
            q.submit("late", priority=1)

    def test_close_wakes_blocked_take(self):
        q = AdmissionQueue(max_depth=2)
        seen = []

        def consumer():
            seen.append(q.take(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        q.close()
        thread.join(2.0)
        assert not thread.is_alive()
        assert seen == [None]

    def test_take_drains_backlog_after_close(self):
        q = AdmissionQueue(max_depth=2)
        q.submit("pending", priority=1)
        q.close()
        assert q.take(0) == "pending"
        assert q.take(0) is None

    def test_drain_remaining_best_first(self):
        q = AdmissionQueue(max_depth=4)
        q.submit("low", priority=0)
        q.submit("high", priority=2)
        q.submit("normal", priority=1)
        q.close()
        assert q.drain_remaining() == ["high", "normal", "low"]
        assert q.depth == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_depth=0)

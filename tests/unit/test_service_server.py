"""Service core semantics with a controllable fake executor.

These tests exercise admission, backpressure, shedding, coalescing,
deadlines, and drain deterministically: the real co-estimation run is
replaced by a fake ``execute_spec`` the test releases explicitly, so
"the worker is busy" and "the queue is saturated" are facts the test
establishes, not races it hopes for.  The real execution path is
covered by the integration tests.
"""

import threading
import time

import pytest

from repro.core.report import EnergyReport
from repro.service import (
    CoEstimationService,
    ServiceConfig,
    ServiceRejected,
    load_drain_checkpoint,
)
from repro.service.api import parse_request
from repro.systems import system_names

KNOWN = system_names()


def make_report(provenance=None):
    return EnergyReport(
        label="fake",
        total_energy_j=1.25e-6,
        by_component={"proc": 1.25e-6},
        by_category={"hw": 1.25e-6},
        end_time_ns=1000.0,
        wall_seconds=0.01,
        low_level_seconds=0.0,
        transitions={"proc": 4},
        iss_invocations=0,
        hw_invocations=4,
        strategy_name="full",
        strategy_stats={},
        provenance=dict(provenance or {"exact": 4}),
        by_provenance={"exact": 1.25e-6},
    )


class FakeExecutor:
    """Stands in for ``repro.parallel.pool.execute_spec``.

    Every call blocks until the test sets ``release`` (pre-set for
    tests that don't care), then returns a canned report.
    """

    def __init__(self, provenance=None, hold=False):
        self.release = threading.Event()
        if not hold:
            self.release.set()
        self.calls = []
        self.provenance = provenance

    def __call__(self, spec):
        self.calls.append(spec)
        assert self.release.wait(10.0), "test never released the executor"
        return make_report(self.provenance), 0.01, None, None

    def wait_for_calls(self, count, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(self.calls) >= count:
                return True
            time.sleep(0.005)
        return False


@pytest.fixture
def service_factory(monkeypatch):
    services = []
    fakes = []

    def factory(config=None, provenance=None, hold=False):
        fake = FakeExecutor(provenance=provenance, hold=hold)
        monkeypatch.setattr("repro.parallel.pool.execute_spec", fake)
        service = CoEstimationService(
            config or ServiceConfig(workers=1, queue_depth=2,
                                    default_deadline_s=10.0,
                                    drain_timeout_s=2.0)
        )
        service.start()
        services.append(service)
        fakes.append(fake)
        return service, fake

    yield factory
    for fake in fakes:
        fake.release.set()
    for service in services:
        service.drain(timeout_s=2.0)


def req(body, **overrides):
    payload = dict(body)
    payload.update(overrides)
    return parse_request(payload, known_systems=KNOWN)


class TestHappyPath:
    def test_submit_execute_resolve(self, service_factory):
        service, fake = service_factory()
        pending, coalesced = service.submit(req({"system": "fig1"}))
        assert not coalesced
        assert pending.wait(5.0)
        assert pending.status == 200
        body = pending.body
        assert body["status"] == "ok"
        assert body["system"] == "fig1"
        assert body["degraded"] is False
        assert body["provenance"] == {"exact": 4}
        assert body["total_energy_j"] == pytest.approx(1.25e-6)
        assert body["report"]["strategy_name"] == "full"

    def test_spec_carries_deadline_and_breakers(self, service_factory):
        service, fake = service_factory()
        pending, _ = service.submit(req({"system": "fig1",
                                         "deadline_s": 8.0}))
        assert pending.wait(5.0)
        (spec,) = fake.calls
        resilience = spec.payload["resilience"]
        assert resilience.watchdog_s is not None
        assert resilience.watchdog_s <= 8.0
        assert resilience.breaker_registry is not None
        assert resilience.breaker_registry.prefix == "fig1"

    def test_degraded_flag_follows_provenance(self, service_factory):
        service, _ = service_factory(
            provenance={"exact": 2, "macromodel": 7}
        )
        pending, _ = service.submit(req({"system": "fig1"}))
        assert pending.wait(5.0)
        assert pending.body["degraded"] is True
        snap = service.stats_snapshot()
        assert snap["service"]["degraded_responses"] == 1
        assert snap["provenance"]["macromodel"] == 7


class TestBackpressure:
    def test_saturated_queue_rejects_429(self, service_factory):
        service, fake = service_factory(
            ServiceConfig(workers=1, queue_depth=1,
                          default_deadline_s=10.0), hold=True
        )
        service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)  # worker busy
        service.submit(req({"system": "tcpip"}))  # fills the queue
        with pytest.raises(ServiceRejected) as excinfo:
            service.submit(req({"system": "automotive"}))
        assert excinfo.value.status == 429
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.retry_after_s >= 1
        fake.release.set()

    def test_high_priority_sheds_queued_low(self, service_factory):
        service, fake = service_factory(
            ServiceConfig(workers=1, queue_depth=1,
                          default_deadline_s=10.0), hold=True
        )
        service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        victim_pending, _ = service.submit(
            req({"system": "tcpip", "priority": "low"})
        )
        survivor_pending, _ = service.submit(
            req({"system": "automotive", "priority": "high"})
        )
        # The victim is answered immediately with an explicit 503.
        assert victim_pending.wait(2.0)
        assert victim_pending.status == 503
        assert victim_pending.body["reason"] == "load_shed"
        assert "Retry-After" in victim_pending.headers
        fake.release.set()
        assert survivor_pending.wait(5.0)
        assert survivor_pending.status == 200
        assert service.stats_snapshot()["service"]["shed"] == 1


class TestCoalescing:
    def test_identical_requests_share_one_run(self, service_factory):
        service, fake = service_factory(hold=True)
        first, coalesced_a = service.submit(req({"system": "fig1"}))
        second, coalesced_b = service.submit(
            req({"system": "fig1", "request_id": "another-client"})
        )
        assert (coalesced_a, coalesced_b) == (False, True)
        assert second is first  # same pending handle, no queue slot
        fake.release.set()
        assert first.wait(5.0)
        assert len(fake.calls) == 1
        assert service.stats_snapshot()["dedup"]["coalesced"] == 1

    def test_different_fault_seeds_do_not_coalesce(self, service_factory):
        service, fake = service_factory(hold=True)
        a, _ = service.submit(req(
            {"system": "fig1",
             "fault": {"rate": 0.5, "sites": ["hw"], "seed": 1}}
        ))
        b, _ = service.submit(req(
            {"system": "fig1",
             "fault": {"rate": 0.5, "sites": ["hw"], "seed": 2}}
        ))
        assert b is not a
        fake.release.set()
        assert a.wait(5.0) and b.wait(5.0)
        assert len(fake.calls) == 2

    def test_fingerprint_released_after_completion(self, service_factory):
        service, fake = service_factory()
        first, _ = service.submit(req({"system": "fig1"}))
        assert first.wait(5.0)
        second, coalesced = service.submit(req({"system": "fig1"}))
        assert not coalesced  # completed runs don't serve as a cache
        assert second.wait(5.0)
        assert len(fake.calls) == 2


class TestDeadlines:
    def test_deadline_expired_in_queue_is_504(self, service_factory):
        service, fake = service_factory(hold=True)
        service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        late, _ = service.submit(req({"system": "tcpip",
                                      "deadline_s": 0.02}))
        time.sleep(0.1)  # deadline passes while queued behind the hold
        fake.release.set()
        assert late.wait(5.0)
        assert late.status == 504
        assert late.body["reason"] == "deadline_exceeded"
        assert service.stats_snapshot()["service"]["deadline_expired"] == 1


class TestDrain:
    def test_drain_finishes_backlog_when_it_can(self, service_factory):
        service, _ = service_factory()
        pendings = [service.submit(req({"system": name}))[0]
                    for name in ("fig1", "tcpip")]
        report = service.drain()
        assert report.drained_clean
        assert all(p.wait(1.0) and p.status == 200 for p in pendings)
        assert report.completed == 2

    def test_drain_checkpoints_unstarted_requests(self, service_factory,
                                                  tmp_path):
        path = str(tmp_path / "drain.ckpt")
        service, fake = service_factory(
            ServiceConfig(workers=1, queue_depth=4,
                          default_deadline_s=10.0, drain_timeout_s=0.0,
                          checkpoint_path=path),
            hold=True,
        )
        service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        queued = [
            service.submit(req({"system": "tcpip"}))[0],
            service.submit(req({"system": "automotive"}))[0],
        ]
        report = service.drain(reason="test")
        assert report.checkpointed == 2
        assert not report.drained_clean
        for pending in queued:
            assert pending.wait(1.0)
            assert pending.status == 503
            assert pending.body["checkpointed"] is True
        payloads = load_drain_checkpoint(path)
        assert sorted(p["system"] for p in payloads) == [
            "automotive", "tcpip",
        ]
        fake.release.set()

    def test_resume_re_enqueues_checkpointed_requests(self, service_factory,
                                                      tmp_path):
        path = str(tmp_path / "drain.ckpt")
        service, fake = service_factory(
            ServiceConfig(workers=1, queue_depth=4,
                          default_deadline_s=10.0, drain_timeout_s=0.0,
                          checkpoint_path=path),
            hold=True,
        )
        service.submit(req({"system": "fig1"}))
        assert fake.wait_for_calls(1)
        service.submit(req({"system": "tcpip"}))
        service.drain()
        fake.release.set()

        fresh, fake2 = service_factory()
        assert fresh.resume_from_checkpoint(path) == 1
        assert fake2.wait_for_calls(1)
        assert fake2.calls[0].payload["builder"].startswith(
            "repro.systems.tcpip"
        )

    def test_submissions_refused_while_draining(self, service_factory):
        service, _ = service_factory()
        service.drain()
        with pytest.raises(ServiceRejected) as excinfo:
            service.submit(req({"system": "fig1"}))
        assert excinfo.value.status == 503
        assert excinfo.value.reason == "draining"

    def test_readyz_flips_on_drain(self, service_factory):
        service, _ = service_factory()
        assert service.ready
        service.drain_controller.request_drain("test")
        assert not service.ready


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": 0},
            {"default_deadline_s": 0.0},
            {"drain_timeout_s": -1.0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)

"""Unit tests: s-graph statements, interpretation, and traces."""

import pytest

from repro.cfsm.actions import MacroOpKind
from repro.cfsm.expr import add, const, eq, event_value, gt, var
from repro.cfsm.sgraph import (
    SGraph,
    SGraphError,
    assign,
    emit,
    if_,
    loop,
    shared_read,
    shared_write,
)


class DictShared:
    def __init__(self):
        self.words = {}

    def read(self, address):
        return self.words.get(address, 0)

    def write(self, address, value):
        self.words[address] = value


class TestNodeNumbering:
    def test_depth_first_ids(self):
        graph = SGraph([
            assign("a", const(1)),                   # node 1
            if_(gt(var("a"), const(0)), [            # node 2
                assign("b", const(2)),               # node 3
            ], [
                assign("b", const(3)),               # node 4
            ]),
            loop(const(2), [assign("c", const(4))]),  # nodes 5, 6
        ])
        ids = [node.node_id for node in graph.nodes()]
        assert ids == [1, 2, 3, 4, 5, 6]
        assert graph.node_count == 6


class TestExecution:
    def test_assign_and_macro_ops(self):
        graph = SGraph([assign("a", add(var("b"), const(1)))])
        env = {"a": 0, "b": 4}
        trace = graph.execute(env)
        assert env["a"] == 5
        assert trace.op_names == ["ADD", "AVV"]
        assert trace.var_updates == {"a": 5}

    def test_constant_assign_is_aivc(self):
        graph = SGraph([assign("a", const(9))])
        trace = graph.execute({"a": 0})
        assert trace.op_names == [MacroOpKind.AIVC]

    def test_branch_outcomes_recorded_in_path(self):
        graph = SGraph([
            if_(eq(var("a"), const(1)), [emit("T")], [emit("F")]),
        ])
        taken = graph.execute({"a": 1})
        untaken = graph.execute({"a": 0})
        assert taken.path != untaken.path
        assert taken.emitted == [("T", 0)]
        assert untaken.emitted == [("F", 0)]
        assert MacroOpKind.TIVART in taken.op_names
        assert MacroOpKind.TIVARF in untaken.op_names

    def test_loop_count_not_in_path(self):
        """The cache key ignores loop trip counts (Section 4.2)."""
        graph = SGraph([loop(var("n"), [assign("a", add(var("a"), const(1)))])])
        short = graph.execute({"n": 1, "a": 0})
        long = graph.execute({"n": 5, "a": 0})
        assert short.path == long.path
        assert short.loop_iterations == 1
        assert long.loop_iterations == 5

    def test_negative_loop_count_runs_zero_times(self):
        graph = SGraph([loop(var("n"), [assign("a", const(1))])])
        env = {"n": -3, "a": 0}
        graph.execute(env)
        assert env["a"] == 0

    def test_loop_bound_guard(self):
        graph = SGraph([loop(var("n"), [assign("a", const(1))])],
                       max_iterations=10)
        with pytest.raises(SGraphError):
            graph.execute({"n": 11, "a": 0})

    def test_event_value_reads_tagged_env(self):
        graph = SGraph([assign("a", event_value("E"))])
        env = {"a": 0, "@E": 42}
        trace = graph.execute(env)
        assert env["a"] == 42
        assert MacroOpKind.ADETECT in trace.op_names

    def test_memory_refs_order(self):
        graph = SGraph([assign("a", add(var("b"), var("c")))])
        trace = graph.execute({"a": 0, "b": 1, "c": 2})
        names = [(ref.name, ref.is_write) for ref in trace.memory_refs]
        assert names == [("b", False), ("c", False), ("a", True)]


class TestSharedMemory:
    def test_read_write_roundtrip(self):
        shared = DictShared()
        graph = SGraph([
            shared_write(const(4), const(77)),
            shared_read("a", const(4)),
        ])
        env = {"a": 0}
        trace = graph.execute(env, shared=shared)
        assert env["a"] == 77
        assert trace.shared_writes == [(4, 77)]
        assert trace.shared_reads == [(4, 77)]

    def test_shared_without_memory_raises(self):
        graph = SGraph([shared_read("a", const(0))])
        with pytest.raises(SGraphError):
            graph.execute({"a": 0})

    def test_uses_shared_memory_detection(self):
        assert SGraph([shared_write(const(0), const(1))]).uses_shared_memory()
        assert not SGraph([assign("a", const(1))]).uses_shared_memory()


class TestIntrospection:
    def test_variable_sets(self):
        graph = SGraph([
            assign("a", var("b")),
            shared_read("c", var("d")),
        ])
        assert graph.variables_read() == ["b", "d"]
        assert graph.variables_written() == ["a", "c"]

    def test_events_emitted(self):
        graph = SGraph([emit("X"), emit("Y", const(1))])
        assert graph.events_emitted() == ["X", "Y"]

    def test_event_values_read(self):
        graph = SGraph([assign("a", event_value("E"))])
        assert graph.event_values_read() == ["E"]

"""Unit + property tests: static sequence compaction."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sampling import StaticCompactor


class TestBasics:
    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            StaticCompactor(0.0)
        with pytest.raises(ValueError):
            StaticCompactor(1.5)

    def test_full_ratio_keeps_everything(self):
        signatures = ["a", "b", "a", "a", "b"]
        picks = StaticCompactor(1.0).compact(signatures)
        assert [pick.index for pick in picks] == list(range(len(signatures)))
        assert all(pick.weight == 1.0 for pick in picks)

    def test_weights_sum_to_length(self):
        signatures = ["a"] * 10 + ["b"] * 5 + ["a"] * 7
        picks = StaticCompactor(0.25).compact(signatures)
        assert sum(pick.weight for pick in picks) == pytest.approx(
            len(signatures)
        )

    def test_every_bigram_represented(self):
        signatures = ["a", "b", "c", "a", "b", "c", "a"]
        picks = StaticCompactor(0.01).compact(signatures)
        picked = {pick.index for pick in picks}
        seen = set()
        previous = None
        for index, signature in enumerate(signatures):
            if index in picked:
                seen.add((previous, signature))
            previous = signature
        all_bigrams = set()
        previous = None
        for signature in signatures:
            all_bigrams.add((previous, signature))
            previous = signature
        assert seen == all_bigrams


class TestEstimation:
    def test_exact_for_bigram_constant_values(self):
        """If the value depends only on the bigram, the weighted total
        is exact regardless of the ratio."""
        rng = random.Random(3)
        signatures = [rng.choice("abc") for _ in range(200)]
        cost = {}
        values = []
        previous = None
        for signature in signatures:
            key = (previous, signature)
            cost.setdefault(key, 1.0 + len(cost))
            values.append(cost[key])
            previous = signature
        exact = sum(values)
        estimate = StaticCompactor(0.1).estimate_total(signatures, values)
        assert estimate == pytest.approx(exact, rel=1e-9)

    def test_bounded_error_for_noisy_values(self):
        rng = random.Random(9)
        signatures = [rng.choice("ab") for _ in range(400)]
        values = [10.0 + rng.uniform(-1, 1) for _ in signatures]
        exact = sum(values)
        estimate = StaticCompactor(0.2).estimate_total(signatures, values)
        assert abs(estimate - exact) / exact < 0.05

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            StaticCompactor(0.5).estimate_total(["a"], [1.0, 2.0])


@given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=200),
       st.floats(min_value=0.05, max_value=1.0))
def test_property_weights_and_indices(signatures, ratio):
    picks = StaticCompactor(ratio).compact(signatures)
    indices = [pick.index for pick in picks]
    # Picks are sorted, unique, and in range.
    assert indices == sorted(set(indices))
    assert all(0 <= i < len(signatures) for i in indices)
    # Weighted count is unbiased.
    assert sum(pick.weight for pick in picks) == pytest.approx(
        len(signatures)
    )
    # Compaction really compacts (up to the one-per-bigram floor).
    distinct_bigrams = len({
        (signatures[i - 1] if i else None, signatures[i])
        for i in range(len(signatures))
    })
    assert len(picks) <= max(distinct_bigrams,
                             int(len(signatures) * ratio) + distinct_bigrams)

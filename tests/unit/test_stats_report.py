"""Unit tests: analysis statistics and energy reports."""

import pytest

from repro.analysis.stats import (
    Histogram,
    linear_fit,
    mean,
    ranking_preserved,
    spearman_rank_correlation,
    variance,
)
from repro.core.report import EnergyReport


class TestMoments:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_variance(self):
        assert variance([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(4.571, rel=1e-3)
        assert variance([5.0]) == 0.0


class TestHistogram:
    def test_binning(self):
        histogram = Histogram.of([0.0, 0.1, 0.9, 1.0], bins=2)
        assert sum(histogram.counts) == 4
        assert histogram.counts == [2, 2]

    def test_concentrated_vs_spread(self):
        concentrated = Histogram.of([5.0] * 50 + [5.1], bins=10)
        spread = Histogram.of(list(range(50)), bins=10)
        assert concentrated.spread_score() < spread.spread_score()

    def test_render_has_rows(self):
        text = Histogram.of([1, 2, 3], bins=3).render()
        assert len(text.splitlines()) == 3

    def test_empty_and_constant(self):
        assert Histogram.of([], bins=4).counts == [0, 0, 0, 0]
        constant = Histogram.of([7.0, 7.0], bins=4)
        assert sum(constant.counts) == 2


class TestRankStatistics:
    def test_spearman_perfect(self):
        assert spearman_rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
        assert spearman_rank_correlation([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)

    def test_spearman_with_ties(self):
        rho = spearman_rank_correlation([1, 1, 2], [5, 5, 9])
        assert rho == pytest.approx(1.0)

    def test_ranking_preserved(self):
        assert ranking_preserved([1, 5, 3], [10, 50, 30])
        assert not ranking_preserved([1, 5, 3], [10, 20, 30])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [1, 2])
        with pytest.raises(ValueError):
            ranking_preserved([1], [1, 2])


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept, r = linear_fit([0, 1, 2], [1, 3, 5])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r == pytest.approx(1.0)

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])


def make_report(label, energy, wall, components=None):
    return EnergyReport(
        label=label,
        total_energy_j=energy,
        by_component=dict(components or {"p": energy}),
        by_category={"sw": energy},
        end_time_ns=1000.0,
        wall_seconds=wall,
        low_level_seconds=wall * 0.8,
        transitions={"p": 3},
        iss_invocations=3,
        hw_invocations=0,
        strategy_name="full",
        strategy_stats={},
    )


class TestEnergyReport:
    def test_speedup(self):
        baseline = make_report("base", 1e-6, 10.0)
        fast = make_report("fast", 1e-6, 2.0)
        assert fast.speedup_over(baseline) == pytest.approx(5.0)

    def test_energy_error(self):
        baseline = make_report("base", 1.0e-6, 1.0)
        estimate = make_report("est", 1.2e-6, 1.0)
        assert estimate.energy_error_vs(baseline) == pytest.approx(20.0)

    def test_average_power(self):
        report = make_report("r", 1e-6, 1.0)
        assert report.average_power_w() == pytest.approx(1e-6 / 1e-6)

    def test_pretty_contains_components(self):
        report = make_report("r", 1e-6, 1.0, components={"alpha": 1e-6})
        assert "alpha" in report.pretty()
        assert "strategy" in report.pretty()

    def test_total_transitions(self):
        assert make_report("r", 1e-6, 1.0).total_transitions == 3

    def test_json_round_trip(self):
        report = make_report("r", 1e-6, 1.0, components={"p": 1e-6})
        restored = EnergyReport.from_json(report.to_json())
        assert restored.total_energy_j == report.total_energy_j
        assert restored.by_component == report.by_component
        assert restored.transitions == report.transitions
        assert restored.label == report.label

"""Unit tests: estimation strategies in isolation (no master)."""

import pytest

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.events import Event
from repro.cfsm.expr import add, const, var
from repro.cfsm.sgraph import assign, loop
from repro.core.caching import CachingStrategy, EnergyCacheConfig
from repro.core.sampling import SamplingStrategy
from repro.estimation import Estimate, EstimationJob, FullStrategy


def make_job(path_marker=0, energy=1e-9, cycles=10, calls=None):
    builder = CfsmBuilder("s")
    builder.input("GO", has_value=True)
    builder.var("a", 0)
    builder.transition("t", trigger=["GO"], body=[
        loop(const(2), [assign("a", add(var("a"), const(1)))]),
    ])
    cfsm = builder.build()
    buffer = cfsm.make_buffer()
    state = cfsm.initial_state()
    buffer.deliver(Event("GO", value=1, time=0.0))
    transition = cfsm.enabled_transition(buffer, state)
    trace = cfsm.react(transition, buffer, state)
    trace.path = ((path_marker, "T"),)  # distinguish jobs artificially

    def run_low_level():
        if calls is not None:
            calls.append(1)
        return Estimate(cycles=cycles, energy=energy, ran_low_level=True)

    return EstimationJob(cfsm, transition, trace, "sw", run_low_level)


class TestFullStrategy:
    def test_always_runs_low_level(self):
        calls = []
        strategy = FullStrategy()
        for _ in range(5):
            estimate = strategy.estimate(make_job(calls=calls))
            assert estimate.ran_low_level
        assert len(calls) == 5
        assert strategy.statistics()["low_level_calls"] == 5.0

    def test_reset(self):
        strategy = FullStrategy()
        strategy.estimate(make_job())
        strategy.reset()
        assert strategy.statistics()["low_level_calls"] == 0.0


class TestCachingStrategy:
    def test_caches_after_threshold(self):
        calls = []
        strategy = CachingStrategy(EnergyCacheConfig(thresh_iss_calls=3))
        for index in range(10):
            estimate = strategy.estimate(make_job(calls=calls))
        assert len(calls) == 3
        assert not estimate.ran_low_level
        assert estimate.energy == pytest.approx(1e-9)
        assert estimate.cycles == 10

    def test_distinct_paths_not_mixed(self):
        calls = []
        strategy = CachingStrategy(EnergyCacheConfig(thresh_iss_calls=1))
        strategy.estimate(make_job(path_marker=1, energy=1e-9, calls=calls))
        strategy.estimate(make_job(path_marker=2, energy=5e-9, calls=calls))
        cached_one = strategy.estimate(make_job(path_marker=1, calls=calls))
        cached_two = strategy.estimate(make_job(path_marker=2, calls=calls))
        assert len(calls) == 2
        assert cached_one.energy == pytest.approx(1e-9)
        assert cached_two.energy == pytest.approx(5e-9)

    def test_variance_threshold_blocks_caching(self):
        calls = []
        strategy = CachingStrategy(
            EnergyCacheConfig(thresh_variance=1e-12, thresh_iss_calls=2)
        )
        energies = [1e-9, 5e-9, 1e-9, 5e-9, 3e-9]
        for energy in energies:
            strategy.estimate(make_job(energy=energy, calls=calls))
        # High-variance path: every execution hits the low-level sim.
        assert len(calls) == len(energies)

    def test_statistics_and_reset(self):
        strategy = CachingStrategy(EnergyCacheConfig(thresh_iss_calls=1))
        strategy.estimate(make_job())
        strategy.estimate(make_job())
        stats = strategy.statistics()
        assert stats["cache_hits"] == 1.0
        assert stats["low_level_calls"] == 1.0
        strategy.reset()
        assert strategy.statistics()["cache_hits"] == 0.0


class TestSamplingStrategy:
    def test_subsamples_hot_stream(self):
        calls = []
        strategy = SamplingStrategy(period=4, warmup=1)
        for _ in range(40):
            strategy.estimate(make_job(calls=calls))
        assert 2 <= len(calls) <= 14  # roughly 40/4 plus warmup

    def test_reused_estimates_match_last_measurement(self):
        strategy = SamplingStrategy(period=100, warmup=1)
        first = strategy.estimate(make_job(energy=3e-9))
        second = strategy.estimate(make_job(energy=9e-9))  # new bigram
        third = strategy.estimate(make_job(energy=1e-9))   # reused
        assert first.ran_low_level
        assert second.ran_low_level
        assert not third.ran_low_level
        assert third.energy == pytest.approx(9e-9)

    def test_statistics(self):
        strategy = SamplingStrategy(period=2, warmup=1)
        for _ in range(10):
            strategy.estimate(make_job())
        stats = strategy.statistics()
        assert stats["dispatched"] + stats["reused"] == 10
        assert 0 < stats["compaction_ratio"] <= 1

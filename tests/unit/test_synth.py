"""Unit tests: RTL lowering and structural synthesis."""

import pytest

from repro.cfsm.builder import CfsmBuilder
from repro.cfsm.expr import add, const, event_value, lt, mul, var
from repro.cfsm.sgraph import assign, emit, if_, loop, shared_read
from repro.hw.estimator import HardwarePowerSimulator, HwEstimatorError
from repro.hw.power import probabilistic_power, propagate_probabilities
from repro.hw.synth import (
    AluOp,
    DoneOp,
    EmitOp,
    RtlCompiler,
    SynthesisError,
    TestOp,
    synthesize_cfsm,
)


def make_cfsm(body, width=16):
    builder = CfsmBuilder("synth", width=width)
    builder.input("GO", has_value=True)
    builder.output("OUT", has_value=True)
    builder.var("a", 0).var("b", 3)
    builder.transition("t", trigger=["GO"], body=body)
    return builder.build()


class TestRtlCompiler:
    def test_assignment_lowered_to_single_alu_op(self):
        program = RtlCompiler(make_cfsm([assign("a", add(var("b"), const(1)))])).compile()
        alu_ops = [op for op in program.ops if isinstance(op, AluOp)]
        assert len(alu_ops) == 1
        assert alu_ops[0].dest == "a"
        assert alu_ops[0].op == "ADD"

    def test_every_transition_ends_with_done(self):
        program = RtlCompiler(make_cfsm([assign("a", const(1))])).compile()
        assert isinstance(program.ops[-1], DoneOp)

    def test_if_produces_test_with_two_targets(self):
        body = [if_(lt(var("a"), const(5)), [assign("a", const(1))],
                    [assign("a", const(2))])]
        program = RtlCompiler(make_cfsm(body)).compile()
        tests = [op for op in program.ops if isinstance(op, TestOp)]
        assert len(tests) == 1
        assert tests[0].next != tests[0].next_taken

    def test_loop_back_edge(self):
        body = [loop(const(3), [assign("a", add(var("a"), const(1)))])]
        program = RtlCompiler(make_cfsm(body)).compile()
        # The decrement op jumps backwards to the loop test.
        back_edges = [
            op for op in program.ops
            if isinstance(op, AluOp) and op.next < program.ops.index(op)
        ]
        assert back_edges

    def test_mul_rejected(self):
        with pytest.raises(SynthesisError):
            RtlCompiler(make_cfsm([assign("a", mul(var("a"), const(2)))])).compile()

    def test_reference_executor(self):
        body = [
            assign("a", const(0)),
            loop(const(4), [assign("a", add(var("a"), const(2)))]),
            emit("OUT", var("a")),
        ]
        program = RtlCompiler(make_cfsm(body)).compile()
        state = {"a": 0, "b": 3}
        cycles, emitted = program.execute("t", state, {"GO": 0})
        assert state["a"] == 8
        assert emitted == [("OUT", 8)]
        assert cycles > 4  # loop iterations each cost test + body + dec


class TestStructuralSynthesis:
    def test_ports_exposed(self):
        block = synthesize_cfsm(make_cfsm([emit("OUT", event_value("GO"))]))
        assert "t" in block.go_ports
        assert "GO" in block.input_ports
        assert "OUT" in block.value_ports
        assert "OUT" in block.strobe_ports
        assert "a" in block.register_ports

    def test_gate_counts_scale_with_width(self):
        narrow = synthesize_cfsm(make_cfsm([assign("a", add(var("a"), const(1)))],
                                           width=8))
        wide = synthesize_cfsm(make_cfsm([assign("a", add(var("a"), const(1)))],
                                         width=24))
        assert wide.netlist.gate_count > narrow.netlist.gate_count

    def test_netlist_passes_structural_check(self):
        block = synthesize_cfsm(make_cfsm([
            if_(lt(var("a"), const(3)), [emit("OUT", var("a"))]),
        ]))
        block.netlist.check()  # must not raise


class TestHardwareEstimator:
    def test_unknown_transition_rejected(self):
        simulator = HardwarePowerSimulator(make_cfsm([assign("a", const(1))]))
        with pytest.raises(KeyError):
            simulator.run_transition("nope")

    def test_missing_read_script_detected(self):
        cfsm = make_cfsm([shared_read("a", const(0))])
        simulator = HardwarePowerSimulator(cfsm)
        with pytest.raises(HwEstimatorError):
            simulator.run_transition("t", {"GO": 0}, read_values=[])

    def test_idle_energy_positive(self):
        simulator = HardwarePowerSimulator(make_cfsm([assign("a", const(1))]))
        assert simulator.idle_energy_per_cycle() > 0

    def test_invocation_statistics(self):
        simulator = HardwarePowerSimulator(make_cfsm([assign("a", const(7))]))
        simulator.run_transition("t", {"GO": 0})
        simulator.run_transition("t", {"GO": 0})
        assert simulator.invocations == 2
        assert simulator.total_cycles > 0
        assert simulator.total_energy > 0

    def test_poke_then_read_roundtrip(self):
        simulator = HardwarePowerSimulator(make_cfsm([assign("a", const(1))]))
        simulator.poke_variable("b", 123)
        assert simulator.read_variable("b") == 123


class TestProbabilisticPower:
    def test_probabilities_bounded(self):
        block = synthesize_cfsm(make_cfsm([
            assign("a", add(var("a"), var("b"))),
            emit("OUT", var("a")),
        ]))
        probabilities = propagate_probabilities(block.netlist)
        assert all(0.0 <= p <= 1.0 for p in probabilities)
        assert probabilities[0] == 0.0
        assert probabilities[1] == 1.0

    def test_power_positive_and_scales_with_frequency(self):
        block = synthesize_cfsm(make_cfsm([assign("a", add(var("a"), const(1)))]))
        slow = probabilistic_power(block.netlist, 20e-9)
        fast = probabilistic_power(block.netlist, 10e-9)
        assert 0 < slow < fast

"""Unit tests: span tracer, Chrome trace export, and telemetry report."""

import json

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    NULL_TRACER,
    Telemetry,
    Tracer,
    aggregate_spans,
    chrome_trace_events,
    render_chrome_trace,
    render_jsonl,
    render_report,
    write_chrome_trace,
)
from repro.telemetry.tracer import _NULL_SPAN


class FakeClock:
    """Deterministic clock: advances by ``step`` seconds per call."""

    def __init__(self, step=0.001):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_span_records_name_track_and_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("reaction:producer", track="master") as span:
            span.set("cycles", 42)
        assert len(tracer.spans) == 1
        record = tracer.spans[0]
        assert record.name == "reaction:producer"
        assert record.track == "master"
        assert record.dur_us > 0
        assert record.args == {"cycles": 42}

    def test_nested_spans_record_depth_and_close_inner_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [record.name for record in tracer.spans]
        assert names == ["inner", "outer"]
        depths = {record.name: record.depth for record in tracer.spans}
        assert depths == {"outer": 0, "inner": 1}

    def test_explicit_close(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("manual", track="iss")
        span.close()
        assert tracer.spans[0].name == "manual"

    def test_instants_and_counters(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("cache.hit", track="strategy", args={"k": 1})
        tracer.counter("energy_uJ", {"sw": 1.5, "hw": 0.5})
        assert len(tracer.instants) == 1
        assert len(tracer.counters) == 1
        assert tracer.event_count == 2
        # Counter samples are copied, not aliased.
        _, _, series = tracer.counters[0]
        assert series == {"sw": 1.5, "hw": 0.5}

    def test_timestamps_are_monotonic_microseconds(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        tracer.instant("first")
        tracer.instant("second")
        assert tracer.instants[1][0] > tracer.instants[0][0]
        # 0.5 s per clock tick -> timestamps in the 1e5 us range.
        assert tracer.instants[0][0] >= 5e5


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("ignored", args={"x": 1}) as span:
            span.set("y", 2)
        NULL_TRACER.instant("ignored")
        NULL_TRACER.counter("ignored", {"a": 1})
        assert NULL_TRACER.event_count == 0
        assert NULL_TRACER.enabled is False

    def test_null_span_is_shared_singleton(self):
        first = NULL_TRACER.span("a")
        second = NULL_TRACER.span("b")
        assert first is second is _NULL_SPAN

    def test_null_telemetry_bundle_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.tracer is NULL_TRACER
        assert NULL_TELEMETRY.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_enabled_bundle_defaults(self):
        telemetry = Telemetry()
        assert telemetry.enabled is True
        assert telemetry.tracer.enabled is True
        metrics_only = Telemetry.metrics_only()
        assert metrics_only.tracer is NULL_TRACER
        assert metrics_only.metrics.enabled is True


def _sample_tracer():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("reaction:producer", track="master", args={"t_ns": 0.0}):
        with tracer.span("iss.run", track="iss"):
            pass
    tracer.instant("cache.hit", track="strategy")
    tracer.counter("energy_uJ", {"sw": 2.0})
    tracer.counter("energy_uJ", {"sw": 3.0, "hw": 1.0})
    return tracer


class TestChromeExport:
    def test_every_event_has_required_keys(self):
        events = chrome_trace_events(_sample_tracer())
        assert events, "expected a non-empty event list"
        for event in events:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in event, (key, event)

    def test_render_is_valid_json_array(self):
        text = render_chrome_trace(_sample_tracer())
        events = json.loads(text)
        assert isinstance(events, list)

    def test_thread_metadata_names_tracks(self):
        events = chrome_trace_events(_sample_tracer())
        metadata = [e for e in events if e["ph"] == "M"]
        named = {e["args"]["name"] for e in metadata}
        assert {"master", "iss", "strategy"} <= named

    def test_spans_become_complete_events_with_durations(self):
        events = chrome_trace_events(_sample_tracer())
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert "reaction:producer" in complete
        assert "iss.run" in complete
        assert complete["iss.run"]["dur"] > 0
        # Distinct tracks land on distinct tids.
        assert complete["iss.run"]["tid"] != complete["reaction:producer"]["tid"]

    def test_counter_track_present_on_tid_zero(self):
        events = chrome_trace_events(_sample_tracer())
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        assert all(e["tid"] == 0 for e in counters)
        assert counters[-1]["args"] == {"sw": 3.0, "hw": 1.0}

    def test_write_chrome_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_sample_tracer(), path)
        with open(path) as handle:
            events = json.load(handle)
        assert any(e["ph"] == "C" for e in events)

    def test_jsonl_lines_parse_and_are_time_sorted(self):
        lines = render_jsonl(_sample_tracer()).splitlines()
        records = [json.loads(line) for line in lines]
        assert records
        stamps = [record["ts_us"] for record in records]
        assert stamps == sorted(stamps)
        kinds = {record["kind"] for record in records}
        assert {"span", "instant", "counter"} <= kinds


class TestReport:
    def test_aggregate_spans_totals_and_order(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("iss.run", track="iss"):
                pass
        with tracer.span("hw.run_transition", track="hw"):
            pass
        rows = aggregate_spans(tracer)
        by_key = {key: (count, total, mean) for key, count, total, mean in rows}
        assert by_key["iss/iss.run"][0] == 3
        assert by_key["hw/hw.run_transition"][0] == 1
        # Sorted by total time, descending.
        totals = [total for _, _, total, _ in rows]
        assert totals == sorted(totals, reverse=True)

    def test_render_report_sections(self):
        telemetry = Telemetry(tracer=_sample_tracer())
        telemetry.metrics.gauge("strategy.cache.lookups").set(10)
        telemetry.metrics.gauge("strategy.cache.hits").set(4)
        telemetry.metrics.gauge("strategy.cache.misses").set(6)
        telemetry.metrics.gauge("strategy.cache_hit_rate").set(0.4)
        telemetry.metrics.gauge("iss_calls").set(6)
        telemetry.metrics.histogram("master.reaction_seconds").observe(0.01)
        text = render_report(telemetry)
        assert "Hottest spans" in text
        assert "energy cache" in text
        assert "hit_rate=0.400" in text
        assert "ISS invocations" in text
        assert "master.reaction_seconds" in text

    def test_render_report_empty_bundle(self):
        text = render_report(Telemetry(tracer=Tracer(clock=FakeClock())))
        assert text.startswith("Telemetry report")

"""Unit tests: the metrics registry and its instruments."""

import json
import threading

import pytest

from repro.obs.prometheus import labeled, parse_labeled
from repro.telemetry import (
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("iss.invocations")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(7)
        gauge.add(-3)
        assert gauge.value == 4.0


class TestHistogramBuckets:
    def test_rejects_empty_and_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
        Histogram("h")  # must not raise

    def test_observations_land_in_correct_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]
        assert histogram.overflow == 1
        assert histogram.count == 5
        assert histogram.min == 0.5
        assert histogram.max == 500.0


class TestHistogramPercentiles:
    def test_empty_histogram(self):
        histogram = Histogram("h", buckets=(1.0,))
        assert histogram.percentile(50) == 0.0
        assert histogram.mean == 0.0

    def test_empty_histogram_every_percentile_and_snapshot(self):
        histogram = Histogram("h", buckets=(1.0, 2.0))
        for p in (0, 50, 99, 100):
            assert histogram.percentile(p) == 0.0
        snapshot = histogram.snapshot()
        assert snapshot["min"] == 0.0
        assert snapshot["max"] == 0.0
        assert snapshot["p50"] == 0.0

    def test_nan_observation_rejected(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.observe(float("nan"))
        # The refused observation must not have mutated anything.
        assert histogram.count == 0
        assert histogram.sum == 0.0
        assert histogram.counts == [0]
        assert histogram.overflow == 0

    def test_single_sample_in_first_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.25)
        for p in (0, 50, 100):
            assert histogram.percentile(p) == pytest.approx(0.25)

    def test_single_sample_in_overflow(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(99.0)
        assert histogram.percentile(50) == pytest.approx(99.0)
        assert histogram.percentile(99) == pytest.approx(99.0)

    def test_rejects_out_of_range_percentile(self):
        histogram = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            histogram.percentile(101)
        with pytest.raises(ValueError):
            histogram.percentile(-1)

    def test_single_value_reports_itself(self):
        histogram = Histogram("h", buckets=(1.0, 10.0, 100.0))
        histogram.observe(7.0)
        # min == max == 7 clamps the interpolation to the exact value.
        for p in (0, 50, 90, 99, 100):
            assert histogram.percentile(p) == pytest.approx(7.0)

    def test_uniform_bucket_interpolation(self):
        histogram = Histogram("h", buckets=(10.0, 20.0))
        # Ten values spread over (10, 20]; min=11, max=20.
        for value in range(11, 21):
            histogram.observe(float(value))
        p50 = histogram.percentile(50)
        assert 11.0 <= p50 <= 20.0
        assert p50 == pytest.approx(15.5, abs=1.0)
        assert histogram.percentile(100) == pytest.approx(20.0)

    def test_percentiles_monotonic_in_p(self):
        histogram = Histogram("h", buckets=(1.0, 3.0, 10.0, 30.0))
        for value in (0.5, 0.7, 2.0, 2.5, 4.0, 9.0, 25.0, 29.0):
            histogram.observe(value)
        percentiles = [histogram.percentile(p) for p in (10, 25, 50, 75, 90, 99)]
        assert percentiles == sorted(percentiles)
        assert all(0.5 <= value <= 29.0 for value in percentiles)

    def test_overflow_rank_reports_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.5)
        for _ in range(9):
            histogram.observe(1000.0)
        assert histogram.percentile(99) == 1000.0

    def test_snapshot_fields(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(4.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 2.0
        assert snapshot["sum"] == pytest.approx(4.5)
        assert snapshot["mean"] == pytest.approx(2.25)
        assert snapshot["min"] == 0.5
        assert snapshot["max"] == 4.0
        assert set(snapshot) == {
            "count", "sum", "mean", "min", "max", "p50", "p90", "p99"
        }


class TestRegistry:
    def test_type_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError):
            registry.gauge("name")
        with pytest.raises(ValueError):
            registry.histogram("name")

    def test_snapshot_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("iss_calls").inc(3)
        registry.gauge("cache_hit_rate").set(0.75)
        registry.histogram("latency", buckets=(1.0, 10.0)).observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"iss_calls": 3.0}
        assert snapshot["gauges"] == {"cache_hit_rate": 0.75}
        assert snapshot["histograms"]["latency"]["count"] == 1.0
        assert json.loads(registry.to_json()) == json.loads(
            json.dumps(snapshot)
        )

    def test_flat_merges_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b").set(2)
        assert registry.flat() == {"a": 1.0, "b": 2.0}


class TestLabeledNames:
    """Labels ride inside registry names (see repro.obs.prometheus)."""

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        exact = registry.counter(
            labeled("service.energy_answers", provenance="exact")
        )
        cached = registry.counter(
            labeled("service.energy_answers", provenance="cached")
        )
        assert exact is not cached
        exact.inc(3)
        cached.inc(1)
        snapshot = registry.snapshot()["counters"]
        assert snapshot['service.energy_answers{provenance="exact"}'] == 3.0
        assert snapshot['service.energy_answers{provenance="cached"}'] == 1.0

    def test_label_order_maps_to_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter(labeled("m", x="1", y="2"))
        b = registry.counter(labeled("m", y="2", x="1"))
        assert a is b

    def test_snapshot_names_parse_back(self):
        registry = MetricsRegistry()
        registry.gauge(labeled("service.breaker_state", site="iss")).set(2)
        (encoded,) = registry.snapshot()["gauges"]
        assert parse_labeled(encoded) == (
            "service.breaker_state", {"site": "iss"}
        )

    def test_labeled_histograms_are_exported_live(self):
        registry = MetricsRegistry()
        name = labeled("run.seconds", system="fig1")
        registry.histogram(name, buckets=(1.0,)).observe(0.5)
        instruments = registry.histogram_instruments()
        assert list(instruments) == [name]
        assert instruments[name].count == 1


class TestConcurrency:
    def test_concurrent_increments_on_one_counter(self):
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 2500
        barrier = threading.Barrier(threads_n)

        def work():
            counter = registry.counter("stress")
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("stress").value == threads_n * per_thread

    def test_concurrent_first_use_yields_one_instrument(self):
        registry = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def work():
            barrier.wait()
            results.append(registry.counter("racy"))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is results[0] for instrument in results)


class TestNullRegistry:
    def test_null_instruments_discard_everything(self):
        NULL_METRICS.counter("x").inc(10)
        NULL_METRICS.gauge("y").set(3)
        NULL_METRICS.histogram("z").observe(1.0)
        assert NULL_METRICS.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert NULL_METRICS.flat() == {}
        assert NULL_METRICS.enabled is False

    def test_null_instruments_are_shared(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        assert NULL_METRICS.gauge("a") is NULL_METRICS.gauge("b")
        assert NULL_METRICS.histogram("a") is NULL_METRICS.histogram("b")
